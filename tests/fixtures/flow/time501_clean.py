"""Clean twin of time501_bad: convert through the clock factors first."""

from repro.sim import clock


def total_latency(delay_us, gap_ns):
    return delay_us + gap_ns * clock.NS


def remaining_budget():
    window_ms = 5.0
    slack_us = 250.0
    window_us = window_ms * clock.MS
    return window_us - slack_us
