"""Unit tests for measurement primitives."""

import pytest

from repro.sim.stats import (
    Counter,
    Histogram,
    LatencyRecorder,
    RateMeter,
    TimeWeightedValue,
    WelfordAccumulator,
)


class TestCounter:
    def test_add_and_get(self):
        counter = Counter()
        counter.add("x")
        counter.add("x", 4)
        assert counter.get("x") == 5
        assert counter.get("missing") == 0

    def test_diff_reports_only_changes(self):
        counter = Counter()
        counter.add("a", 2)
        snap = counter.snapshot()
        counter.add("a", 3)
        counter.add("b", 1)
        assert counter.diff(snap) == {"a": 3, "b": 1}

    def test_snapshot_is_isolated(self):
        counter = Counter()
        counter.add("a")
        snap = counter.snapshot()
        counter.add("a")
        assert snap["a"] == 1


class TestWelford:
    def test_mean_and_variance(self):
        acc = WelfordAccumulator()
        for value in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            acc.add(value)
        assert acc.mean == pytest.approx(5.0)
        assert acc.variance == pytest.approx(32.0 / 7.0)

    def test_empty(self):
        acc = WelfordAccumulator()
        assert acc.mean == 0.0
        assert acc.variance == 0.0


class TestLatencyRecorder:
    def test_percentiles_exact(self):
        rec = LatencyRecorder()
        for value in range(1, 101):
            rec.record(float(value))
        assert rec.percentile(50) == 50.0
        assert rec.percentile(90) == 90.0
        assert rec.percentile(99) == 99.0
        assert rec.percentile(100) == 100.0
        assert rec.percentile(0) == 1.0

    def test_mean(self):
        rec = LatencyRecorder()
        rec.record(10.0)
        rec.record(20.0)
        assert rec.mean == 15.0

    def test_empty_summary(self):
        rec = LatencyRecorder()
        assert rec.percentile(99) == 0.0
        assert rec.summary()["count"] == 0.0

    def test_out_of_range_percentile(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_summary_keys(self):
        rec = LatencyRecorder()
        rec.record(5.0)
        summary = rec.summary()
        for key in ("count", "avg", "p50", "p90", "p99", "p99.9", "max"):
            assert key in summary

    def test_record_after_percentile_query(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        assert rec.percentile(50) == 1.0
        rec.record(100.0)
        assert rec.percentile(100) == 100.0


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter()
        meter.open_window(1000.0)
        for _ in range(50):
            meter.record(100)
        meter.close_window(2000.0)  # 1000 us window
        assert meter.rate_per_sec() == pytest.approx(50 / 1e-3)
        assert meter.gbps() == pytest.approx(50 * 100 * 8 / 1e-3 / 1e9)

    def test_records_outside_window_ignored(self):
        meter = RateMeter()
        meter.record(1)  # before open
        meter.open_window(0.0)
        meter.record(1)
        meter.close_window(10.0)
        meter.record(1)  # after close
        assert meter.count == 1

    def test_zero_window(self):
        meter = RateMeter()
        assert meter.rate_per_sec() == 0.0
        assert meter.gbps() == 0.0


class TestTimeWeighted:
    def test_mean_of_step_signal(self):
        sig = TimeWeightedValue(now=0.0, value=0.0)
        start_integral = sig.integral_at(0.0)
        sig.update(10.0, 4.0)  # 0 until t=10
        sig.update(20.0, 0.0)  # 4 from 10..20
        assert sig.mean(0.0, 20.0, start_integral) == pytest.approx(2.0)

    def test_time_backwards_rejected(self):
        sig = TimeWeightedValue(now=5.0)
        with pytest.raises(ValueError):
            sig.update(4.0, 1.0)


class TestHistogram:
    def test_quantile_upper_bound(self):
        hist = Histogram(bounds=[1.0, 10.0, 100.0])
        for _ in range(90):
            hist.record(5.0)
        for _ in range(10):
            hist.record(50.0)
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(0.99) == 100.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[10.0, 1.0])

    def test_empty_quantile(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_quantile_range_checked(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.quantile(1.5)
