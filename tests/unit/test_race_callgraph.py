"""Call-graph resolution tests for the RACE301 race detector.

The detector's reachability walk is *name-level*: ``self.helper()``
resolves to any known function named ``helper``, and the
``Stage.exit.route`` indirection resolves because ``route`` is itself an
entry-point name. These tests pin both resolutions, the serialization
escape hatch, and — deliberately — the known blind spots, so a future
sharpening of the call graph shows up as an xfail flip rather than a
silent behaviour change.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import lint_paths, render_text
from repro.analysis.lint.core import FileContext, module_name_for
from repro.analysis.lint.rules_race import PerCpuRaceRule

REPO_ROOT = Path(__file__).resolve().parents[2]
STAGES = REPO_ROOT / "src" / "repro" / "kernel" / "stages.py"
SOFTIRQ = REPO_ROOT / "src" / "repro" / "kernel" / "softirq.py"

#: A class owning a per-CPU structure, in the SoftirqNet idiom.
PERCPU_OWNER = (
    "class Mesh:\n"
    "    def __init__(self, num_cpus):\n"
    "        self.data = [[] for _ in range(num_cpus)]\n"
)


def race_findings(paths):
    result = lint_paths([str(p) for p in paths])
    return result, [f for f in result.findings if f.rule == "RACE301"]


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


class TestSelfMethodResolution:
    """Entry point -> self.helper() -> violation in the helper."""

    def test_violation_reached_through_self_call(self, tmp_path):
        path = write(
            tmp_path,
            "self_call.py",
            PERCPU_OWNER
            + "\n"
            "class Router:\n"
            "    def route(self, skb, cpu, mesh):\n"
            "        self._steer(skb, cpu, cpu + 1, mesh)\n"
            "\n"
            "    def _steer(self, skb, src_cpu, dst_cpu, mesh):\n"
            "        mesh.data[dst_cpu].append(skb)\n",
        )
        _, race = race_findings([path])
        assert len(race) == 1
        assert "_steer" in race[0].message
        assert "'data'" in race[0].message

    def test_serialization_in_helper_silences(self, tmp_path):
        path = write(
            tmp_path,
            "serialized.py",
            PERCPU_OWNER
            + "\n"
            "class Router:\n"
            "    def route(self, skb, cpu, mesh):\n"
            "        self._steer(skb, cpu, cpu + 1, mesh)\n"
            "\n"
            "    def _steer(self, skb, src_cpu, dst_cpu, mesh):\n"
            "        mesh.data[dst_cpu].append(skb)\n"
            "        self.schedule(dst_cpu)\n",
        )
        result, race = race_findings([path])
        assert race == [], render_text(result)

    def test_single_cpu_param_is_core_local(self, tmp_path):
        # One CPU identity means the function runs *on* that core — the
        # dispatched-via-submit idiom — so its accesses are local.
        path = write(
            tmp_path,
            "local.py",
            PERCPU_OWNER
            + "\n"
            "class Router:\n"
            "    def route(self, skb, cpu, mesh):\n"
            "        mesh.data[cpu].append(skb)\n",
        )
        result, race = race_findings([path])
        assert race == [], render_text(result)


class TestTransitionIndirection:
    """EnqueueTransition.route -> stack.enqueue_backlog resolution on the
    real kernel sources (the cross-module hop the name-level graph
    exists for)."""

    def contexts(self):
        return [
            FileContext(str(p), p.read_text(), module_name_for(str(p)))
            for p in (STAGES, SOFTIRQ)
        ]

    def test_route_is_an_entry_point(self):
        funcs = PerCpuRaceRule._collect_functions(self.contexts())
        routes = [f for f in funcs if f.name == "route"]
        assert routes, "stages.py lost its Transition.route methods"
        assert all(f.is_entry() for f in routes)

    def test_enqueue_backlog_reachable_from_transitions(self):
        funcs = PerCpuRaceRule._collect_functions(self.contexts())
        reachable = PerCpuRaceRule._reachable_names(funcs)
        # route (stages.py) calls stack.enqueue_backlog; the name graph
        # must resolve that into softirq.py's definition.
        assert "enqueue_backlog" in reachable
        assert "raise_net_rx" in reachable

    def test_percpu_structures_collected_from_softirq(self):
        percpu = PerCpuRaceRule._collect_percpu_attrs(self.contexts())
        attrs = {attr for _owner, attr in percpu}
        assert "data" in attrs

    def test_mixed_module_pair_is_clean(self):
        result, race = race_findings([STAGES, SOFTIRQ])
        assert race == [], render_text(result)


class TestDispatchArguments:
    """Batch-dispatched callbacks are call-graph edges: the reachability
    walk follows the *arguments* of post/post_at/post_batch/push_many
    etc., so a handler handed to the scheduler is traced into per-CPU
    structures exactly like a direct call."""

    def test_post_batch_callback_is_reached(self, tmp_path):
        path = write(
            tmp_path,
            "batched.py",
            PERCPU_OWNER
            + "\n"
            "class Router:\n"
            "    def route(self, skb, cpu, sim, mesh):\n"
            "        sim.post_batch(0.0, self._drain, skb, cpu, mesh)\n"
            "\n"
            "    def _drain(self, skb, src_cpu, dst_cpu, mesh):\n"
            "        mesh.data[dst_cpu].append(skb)\n",
        )
        _, race = race_findings([path])
        assert len(race) == 1
        assert "_drain" in race[0].message

    def test_push_many_callback_is_reached(self, tmp_path):
        path = write(
            tmp_path,
            "pushed.py",
            PERCPU_OWNER
            + "\n"
            "class Router:\n"
            "    def route(self, skb, cpu, queue, mesh):\n"
            "        queue.push_many(self._spill, skb, cpu, mesh)\n"
            "\n"
            "    def _spill(self, skb, src_cpu, dst_cpu, mesh):\n"
            "        mesh.data[dst_cpu].append(skb)\n",
        )
        _, race = race_findings([path])
        assert len(race) == 1
        assert "_spill" in race[0].message

    def test_non_dispatch_call_args_stay_unfollowed(self, tmp_path):
        # Passing a bound method to an arbitrary (non-dispatch) call is
        # still a blind spot — only scheduler-shaped calls promote their
        # arguments to edges, which is what keeps the graph precise.
        path = write(
            tmp_path,
            "registry.py",
            PERCPU_OWNER
            + "\n"
            "class Router:\n"
            "    def route(self, skb, cpu, registry, mesh):\n"
            "        registry.register(self._spill)\n"
            "\n"
            "    def _spill(self, skb, src_cpu, dst_cpu, mesh):\n"
            "        mesh.data[dst_cpu].append(skb)\n",
        )
        _, race = race_findings([path])
        assert race == []


class TestKnownBlindSpots:
    """Documented limits of the name-level call graph. If one of these
    xfails starts passing, the detector got sharper — update the
    docstring in rules_race.py and flip the test."""

    @pytest.mark.xfail(
        reason="call through a stored bound method (fn = self._steer; "
        "fn(...)) carries no resolvable name",
        strict=True,
    )
    def test_bound_method_indirection_is_missed(self, tmp_path):
        path = write(
            tmp_path,
            "indirect.py",
            PERCPU_OWNER
            + "\n"
            "class Router:\n"
            "    def route(self, skb, cpu, mesh):\n"
            "        fn = self._steer\n"
            "        fn(skb, cpu, cpu + 1, mesh)\n"
            "\n"
            "    def _steer(self, skb, src_cpu, dst_cpu, mesh):\n"
            "        mesh.data[dst_cpu].append(skb)\n",
        )
        _, race = race_findings([path])
        assert race  # xfail: not reached today

    def test_unreachable_helper_is_not_checked(self, tmp_path):
        # Not an xfail but a design decision: code no entry point reaches
        # does not run per packet, so it is out of scope by construction.
        path = write(
            tmp_path,
            "orphan.py",
            PERCPU_OWNER
            + "\n"
            "class Maintenance:\n"
            "    def rebalance(self, skb, src_cpu, dst_cpu, mesh):\n"
            "        mesh.data[dst_cpu].append(skb)\n",
        )
        _, race = race_findings([path])
        assert race == []

    def test_owning_class_fallback_checks_unreachable_methods(self, tmp_path):
        # ...except on the per-CPU-owning class itself, where the
        # conservative fallback checks every method regardless.
        path = write(
            tmp_path,
            "owner_fallback.py",
            "class Mesh:\n"
            "    def __init__(self, num_cpus):\n"
            "        self.data = [[] for _ in range(num_cpus)]\n"
            "\n"
            "    def rebalance(self, skb, src_cpu, dst_cpu):\n"
            "        self.data[dst_cpu].append(skb)\n",
        )
        _, race = race_findings([path])
        assert len(race) == 1
        assert "rebalance" in race[0].message
