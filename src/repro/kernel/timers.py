"""Timer tick and CPU load tracking.

Falcon "maintains the average system load in a global variable L_avg and
updates it every N timer interrupts within the global timer interrupt
handler (do_timer), via reading /proc/stat" (Section 5). This module is
that mechanism: a periodic tick samples each core's cumulative busy time,
derives a smoothed recent utilization, and publishes it as ``cpu.load`` —
the quantity Algorithm 1 consults both per-CPU (line 21) and averaged
(line 6).
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.topology import Machine
from repro.kernel.costs import CostModel
from repro.metrics.counters import TIMER


class LoadTracker:
    """Periodic per-CPU load sampling (the ``do_timer`` hook)."""

    def __init__(
        self,
        machine: Machine,
        costs: CostModel,
        tick_us: float = 500.0,
        alpha: float = 0.5,
        timer_cpu: int = 0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if tick_us <= 0:
            raise ValueError("tick must be positive")
        self.machine = machine
        self.costs = costs
        self.tick_us = tick_us
        self.alpha = alpha
        self.timer_cpu = timer_cpu
        self._prev_busy: List[float] = [cpu.busy_us_total for cpu in machine.cpus]
        self._started = False
        self.ticks = 0

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.machine.sim.post(self.tick_us, self._tick)

    def _tick(self) -> None:
        machine = self.machine
        machine.interrupts.record(TIMER, self.timer_cpu)
        # The bookkeeping itself costs a little CPU on the timer core.
        machine.cpus[self.timer_cpu].submit(
            0, "do_timer", self.costs.do_timer.fixed
        )
        alpha = self.alpha
        for index, cpu in enumerate(machine.cpus):
            busy = cpu.busy_us_total
            instant = min((busy - self._prev_busy[index]) / self.tick_us, 1.0)
            self._prev_busy[index] = busy
            cpu.load = alpha * instant + (1.0 - alpha) * cpu.load
        self.ticks += 1
        machine.sim.post(self.tick_us, self._tick)
