"""DES202: blocking the event loop in real time."""

import time


def wait_for_backlog_drain(napi):
    while napi.backlog:
        time.sleep(0.001)  # expect: DES202
