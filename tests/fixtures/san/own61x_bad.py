"""OWN611-613: skb ownership-transfer violations.

The wire is a copy boundary: encoding relinquishes the local skb, a
holding structure owns what is stored into it, and decode/from_wire
must construct fresh. Each shape here leaves a packet with two owners
(or a shard sharing mutable state with another).
"""


class DoubleEncoder:
    def ship_twice(self, skb):
        first = encode_skb(skb)
        second = encode_skb(skb)  # expect: OWN611
        return (first, second)

    def ship_then_deliver(self, skb):
        self.records.append(encode_skb(skb))
        self.deliver_local(skb)  # expect: OWN611

    def ship_then_forward(self, skb):
        self.records.append(encode_skb(skb))
        return skb  # expect: OWN611

    def ship_then_stash(self, skb):
        self.records.append(encode_skb(skb))
        self.last_skb = skb  # expect: OWN611


class RetainingStage:
    def stash_list_and_forward(self, skb):
        self.backlog.append(skb)
        return skb  # expect: OWN612

    def stash_attr_and_forward(self, skb):
        self.current = skb
        return skb  # expect: OWN612


class SharingDecoder:
    def decode_skb_from_cache(self, payload):
        skb = self.cache[payload[0]]
        return skb  # expect: OWN613

    def from_wire(self, record):
        return self.template_skb  # expect: OWN613
