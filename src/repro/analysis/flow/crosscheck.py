"""Static ↔ dynamic cross-check of the stage graph (``repro flow --trace``).

The golden traces (``tests/goldens/*.json``, produced by
:mod:`repro.validate.golden` from :class:`repro.metrics.tracing.PacketTracer`
events) record the stage hops real packets took at runtime. This module
replays them and compares the observed stage edges against the statically
derived :func:`~repro.analysis.flow.stagespec.stage_order_spec`:

* an edge observed at runtime but absent from the static graph is an
  **error** — the analyzer's model of the pipeline is wrong, which means
  the typestate rules (and RACE301's call graph) are reasoning about a
  stack that does not exist;
* a static edge never exercised by any golden trace is a **warning** —
  dead modelling or missing trace coverage (host-mode edges are expected
  here while the goldens are all overlay scenarios).

Synthetic nodes (``alloc``/``hardirq``/``free``) never appear in traces,
so only edges between runtime-observable stages (including ``socket``)
are compared.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.flow.stagespec import ALLOC, FREE, HARDIRQ, stage_order_spec


@dataclass
class CrossCheckResult:
    """Outcome of one trace replay against the static spec."""

    trace_files: List[str] = field(default_factory=list)
    traces_replayed: int = 0
    #: Multi-packet traces (TCP segments / GRO / ACKs share one msg_id,
    #: so their events interleave) — skipped, since consecutive-event
    #: pairs across different packets are not edges.
    traces_skipped: int = 0
    events_replayed: int = 0
    #: Edges seen at runtime, with the number of traces exercising each.
    observed: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Runtime edges the static graph does not contain (errors).
    missing_static: List[Tuple[str, str]] = field(default_factory=list)
    #: Static edges no golden trace exercised (warnings).
    unobserved_static: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.missing_static

    def to_json(self) -> str:
        payload = {
            "ok": self.ok,
            "trace_files": [os.path.basename(p) for p in self.trace_files],
            "traces_replayed": self.traces_replayed,
            "traces_skipped_multi_packet": self.traces_skipped,
            "events_replayed": self.events_replayed,
            "observed_edges": {
                f"{a}->{b}": count
                for (a, b), count in sorted(self.observed.items())
            },
            "missing_from_static_graph": [
                f"{a}->{b}" for a, b in self.missing_static
            ],
            "static_edges_unobserved": [
                f"{a}->{b}" for a, b in self.unobserved_static
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_text(self) -> str:
        lines = [
            f"simflow cross-check: {self.traces_replayed} traces "
            f"({self.events_replayed} events) from "
            f"{len(self.trace_files)} golden files, "
            f"{len(self.observed)} distinct stage edges observed, "
            f"{self.traces_skipped} multi-packet traces skipped"
        ]
        for a, b in self.missing_static:
            lines.append(
                f"ERROR: runtime edge {a}->{b} is missing from the static "
                "stage graph — the derived spec no longer matches reality"
            )
        for a, b in self.unobserved_static:
            lines.append(
                f"warning: static edge {a}->{b} never observed in any "
                "golden trace (dead modelling or missing trace coverage)"
            )
        lines.append(
            "cross-check OK" if self.ok else "cross-check FAILED"
        )
        return "\n".join(lines)


def default_trace_dir() -> str:
    """The goldens directory, resolved like repro.validate.golden does."""
    from repro.validate.golden import default_golden_dir

    return default_golden_dir()


def _single_packet(events: Sequence[Sequence[object]]) -> bool:
    """True when the trace records exactly one packet's journey.

    Traces are keyed by ``(flow_id, msg_id)``; a multi-segment TCP
    message (or its ACKs, or GRO partners) shares the key, so several
    packets interleave in one event list. Such a trace repeats a
    ``(kind, stage)`` pair — one packet passes each stage once.
    """
    seen: Set[Tuple[str, str]] = set()
    for event in events:
        key = (str(event[1]), str(event[2]))
        if key in seen:
            return False
        seen.add(key)
    return True


def _trace_edges(events: Sequence[Sequence[object]]) -> Set[Tuple[str, str]]:
    """Stage edges one single-packet trace exercised.

    Events are ``[time_us, kind, stage, cpu]``. ``enqueue`` names the
    *target* stage before the hop executes; ``exec``/``deliver`` move the
    packet's current stage. Both orderings witness the same edge.
    """
    edges: Set[Tuple[str, str]] = set()
    current: str = ""
    for event in sorted(events, key=lambda e: float(e[0])):  # type: ignore[arg-type]
        kind = str(event[1])
        stage = str(event[2])
        if current and stage != current:
            edges.add((current, stage))
        if kind in ("exec", "deliver"):
            current = stage
    return edges


def cross_check(paths: Sequence[str] = ()) -> CrossCheckResult:
    """Replay golden traces and diff their edges against the static spec."""
    trace_files = list(paths)
    if not trace_files:
        golden_dir = default_trace_dir()
        trace_files = sorted(
            os.path.join(golden_dir, name)
            for name in os.listdir(golden_dir)
            if name.endswith(".json")
        )
    result = CrossCheckResult(trace_files=trace_files)
    for path in trace_files:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        for trace in doc.get("traces", ()):
            events = trace.get("events", ())
            if not _single_packet(events):
                result.traces_skipped += 1
                continue
            result.traces_replayed += 1
            result.events_replayed += len(events)
            for edge in _trace_edges(events):
                result.observed[edge] = result.observed.get(edge, 0) + 1

    spec = stage_order_spec()
    synthetic = {ALLOC, HARDIRQ, FREE}
    comparable = {
        edge for edge in spec.edges if not (set(edge) & synthetic)
    }
    result.missing_static = sorted(
        edge for edge in result.observed if edge not in comparable
    )
    result.unobserved_static = sorted(
        edge for edge in comparable if edge not in result.observed
    )
    return result
