"""Integration tests for the workload scenarios (multiflow, apps)."""

import pytest

from repro.core.config import FalconConfig
from repro.workloads.multiflow import (
    run_hotspot,
    run_multicontainer,
    run_multiflow_tcp,
    run_multiflow_udp,
)
from repro.workloads.sockperf import Experiment, Testbed

FAST = dict(duration_ms=6.0, warmup_ms=3.0)


class TestMultiflow:
    def test_udp_flows_all_deliver(self):
        result = run_multiflow_udp(4, message_size=64, rate_per_flow=20_000, **FAST)
        expected = 4 * 20_000 * FAST["duration_ms"] * 1e-3
        assert result.messages_delivered == pytest.approx(expected, rel=0.1)

    def test_tcp_flows_all_deliver(self):
        result = run_multiflow_tcp(3, message_size=4096, window_msgs=4, **FAST)
        assert result.messages_delivered > 0
        assert result.reordered_messages == 0

    def test_falcon_improves_colliding_flows(self):
        """With more saturating flows than steering cores, Falcon must
        beat the vanilla overlay (the Figure 13 situation)."""
        kwargs = dict(flows=4, message_size=16, rps_cpus=[1], **FAST)
        con = run_multiflow_udp(**kwargs)
        falcon = run_multiflow_udp(
            falcon=FalconConfig(cpus=[3, 4, 5, 6]), **kwargs
        )
        assert falcon.message_rate_pps > 1.1 * con.message_rate_pps

    def test_multicontainer_creates_one_container_per_flow(self):
        result = run_multicontainer(5, rate_per_flow=10_000, **FAST)
        assert result.messages_delivered > 0

    def test_multicontainer_requires_overlay(self):
        # Containers imply overlay mode; the testbed enforces it.
        bed = Testbed(mode="host")
        with pytest.raises(ValueError):
            bed.new_container("x")

    def test_hotspot_policies_comparable(self):
        static = run_hotspot("static", burst_at_ms=2.0, **FAST)
        dynamic = run_hotspot("two_choice", burst_at_ms=2.0, **FAST)
        assert static.messages_delivered > 0
        assert dynamic.messages_delivered > 0
        # Dynamic never does materially worse.
        assert dynamic.message_rate_pps >= 0.95 * static.message_rate_pps


class TestExperimentApi:
    def test_stress_returns_complete_result(self):
        result = Experiment(mode="overlay").run_udp_stress(16, **FAST)
        assert result.mode == "overlay"
        assert result.message_rate_pps > 0
        assert len(result.cpu_util) == 20
        assert result.latency["p99"] >= result.latency["p50"]
        assert result.softirq_raises > 0

    def test_mode_label_includes_falcon(self):
        result = Experiment(
            mode="overlay", falcon=FalconConfig()
        ).run_udp_stress(16, **FAST)
        assert result.mode == "overlay+falcon"

    def test_plateau_not_above_stress_for_small_messages(self):
        exp = Experiment(mode="host")
        stress = exp.run_udp_stress(64, **FAST)
        plateau = exp.run_udp_plateau(
            64, duration_ms=6.0, warmup_ms=3.0, iterations=3
        )
        assert plateau.message_rate_pps <= stress.offered_pps * 1.05

    def test_kernel_5_4_runs(self):
        result = Experiment(mode="overlay", kernel="5.4").run_udp_stress(16, **FAST)
        assert result.message_rate_pps > 0

    def test_seed_changes_flow_placement(self):
        rates = set()
        for seed in (0, 1):
            result = Experiment(mode="overlay", seed=seed).run_udp_stress(
                16, **FAST
            )
            rates.add(round(result.message_rate_pps))
        # Different seeds draw different flow hashes; results are close
        # but generally not byte-identical.
        assert len(rates) >= 1  # sanity; strict inequality is hash luck

    def test_gro_disabled_still_works(self):
        result = Experiment(mode="overlay", gro=False).run_tcp_stream(
            4096, window_msgs=8, **FAST
        )
        assert result.messages_delivered > 0
        assert result.reordered_messages == 0
