"""Per-packet stage tracing — the simulator's `perf`/`bpftrace`.

A :class:`PacketTracer` attached to a stack records, for a sample of
messages, every pipeline event: stage executions (with core), queue
hops, and socket delivery. From those it derives the per-stage latency
breakdown the paper's §3 analysis was built from — where a packet's
time actually goes (service vs queueing per device).

Tracing is off unless a tracer is attached, and sampled (every Nth
message of each flow) so it can stay on during long runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One recorded pipeline event for a traced message."""

    time_us: float
    kind: str  # "enqueue" | "exec" | "deliver"
    stage: str
    cpu: int


@dataclass
class MessageTrace:
    flow_id: int
    msg_id: int
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return any(event.kind == "deliver" for event in self.events)

    def total_us(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1].time_us - self.events[0].time_us

    def stage_spans(self) -> List[Tuple[str, float]]:
        """(segment label, elapsed µs) between consecutive events."""
        spans = []
        for before, after in zip(self.events, self.events[1:]):
            label = f"{before.kind}:{before.stage}->{after.kind}:{after.stage}"
            spans.append((label, after.time_us - before.time_us))
        return spans


class PacketTracer:
    """Samples messages and aggregates their stage timings."""

    def __init__(self, sample_every: int = 50, max_messages: int = 2000) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.max_messages = max_messages
        self._traces: Dict[Tuple[int, int], MessageTrace] = {}

    # ------------------------------------------------------------------
    # Hot-path hooks (called by the stack when a tracer is attached)
    # ------------------------------------------------------------------
    def wants(self, skb) -> bool:
        if skb.msg_id % self.sample_every:
            return False
        if (skb.flow.flow_id, skb.msg_id) in self._traces:
            return True
        return len(self._traces) < self.max_messages

    def record(self, skb, now: float, kind: str, stage: str, cpu: int) -> None:
        key = (skb.flow.flow_id, skb.msg_id)
        trace = self._traces.get(key)
        if trace is None:
            trace = MessageTrace(skb.flow.flow_id, skb.msg_id)
            self._traces[key] = trace
        trace.events.append(TraceEvent(now, kind, stage, cpu))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def traces(self, complete_only: bool = True) -> List[MessageTrace]:
        values = list(self._traces.values())
        if complete_only:
            values = [trace for trace in values if trace.complete]
        return values

    def stage_breakdown(self) -> Dict[str, Tuple[float, int]]:
        """Mean elapsed µs (and count) per pipeline segment."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for trace in self.traces():
            for label, elapsed in trace.stage_spans():
                sums[label] = sums.get(label, 0.0) + elapsed
                counts[label] = counts.get(label, 0) + 1
        return {
            label: (sums[label] / counts[label], counts[label])
            for label in sums
        }

    def mean_pipeline_us(self) -> float:
        traces = self.traces()
        if not traces:
            return 0.0
        return sum(trace.total_us() for trace in traces) / len(traces)

    def cores_seen(self) -> Dict[str, set]:
        """Which cores executed each stage across traced messages."""
        cores: Dict[str, set] = {}
        for trace in self.traces(complete_only=False):
            for event in trace.events:
                if event.kind == "exec":
                    cores.setdefault(event.stage, set()).add(event.cpu)
        return cores
