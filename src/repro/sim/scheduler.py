"""Pluggable event schedulers for the simulation engine.

:class:`~repro.sim.engine.Simulator` used to own a binary heap directly;
this module pulls that data structure out behind the small
:class:`Scheduler` protocol (``push`` / ``pop`` / ``peek`` / ``__len__``
plus the bulk/cancellation hooks) so alternative priority queues can be
swapped in without touching the event loop. Two deterministic
implementations ship:

* :class:`HeapScheduler` — the classic binary heap. Robust for any event
  distribution; O(log n) per operation.
* :class:`CalendarScheduler` — a bucketed calendar queue (one-level
  timing wheel over a window of ``num_buckets * bucket_width_us``
  microseconds, with a heap-ordered overflow for far-future events).
  Packet runs schedule overwhelmingly into the near future — NAPI
  completions, per-work-item CPU busy intervals, softirq kicks — so most
  pushes are an O(1) bucket insert plus a tiny intra-bucket heap.

Both order events strictly by ``(time, seq)``: for any identical
schedule/cancel sequence they pop events in exactly the same order, so a
run's trace is byte-identical whichever scheduler is configured (the
golden suite pins this down).

Shared mechanics, identical across implementations:

* **Lazy cancellation with compaction.** ``cancel`` stays O(1) (it only
  flags the event), but the scheduler counts dead entries and rebuilds
  itself once they outnumber live ones past
  :data:`COMPACT_MIN_EVENTS` — so schedule-and-cancel workloads
  (retransmit timers, watchdogs) no longer grow the queue without bound.
* **Lazy-pop peek.** ``peek`` discards cancelled entries from the head
  as a side effect and returns the next *live* event in O(live-gap)
  time, replacing the old ``sorted(heap)[:16]`` probe.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Iterable, List, Optional, Protocol

from repro.sim.events import Event

#: Compaction never triggers below this queue size: tiny queues are
#: cheap to carry and rebuilding them would dominate.
COMPACT_MIN_EVENTS = 256

#: Compact when live entries make up less than this fraction of the
#: queue. At 0.5 the rebuild cost amortizes to O(1) per cancellation.
COMPACT_LIVE_FRACTION = 0.5


def _san_discard(san, event: Event, site: str) -> None:
    """Tell the ownership ledger a cancelled entry was lazily discarded.

    The discard paths are release points in the event lifecycle — the
    queue drops its (last) reference here. ``san`` is None unless the
    simulator that owns this scheduler runs under REPRO_SANITIZE=1.
    """
    if san is not None:
        san.release("event", id(event), site)


class Scheduler(Protocol):
    """The priority-queue contract the event loop programs against.

    Implementations must order events by ``(time, seq)`` — ties in time
    break by insertion order, never by object identity — and must treat
    ``event.cancelled`` entries as absent from ``pop``/``peek`` while
    still counting them in ``len()`` until they are discarded.
    """

    def push(self, event: Event) -> None:
        """Insert one event."""
        ...

    def push_many(self, events: Iterable[Event]) -> None:
        """Bulk-insert events (batch scheduling for NAPI poll storms)."""
        ...

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None when drained."""
        ...

    def peek(self) -> Optional[Event]:
        """Return the next live event without removing it (lazy-pops
        cancelled entries off the head as a side effect)."""
        ...

    def note_cancel(self, event: Event) -> None:
        """Record that a queued event was cancelled (may compact)."""
        ...

    def __len__(self) -> int:
        """Entries still held, including not-yet-discarded cancelled ones."""
        ...


class HeapScheduler:
    """Binary-heap scheduler — the original ``Simulator`` queue."""

    __slots__ = ("_heap", "_cancelled", "_san")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._cancelled = 0
        self._san = None

    # -- insertion -----------------------------------------------------
    def push(self, event: Event) -> None:
        event.queued = True
        heappush(self._heap, event)

    def push_many(self, events: Iterable[Event]) -> None:
        batch = list(events)
        heap = self._heap
        if 4 * len(batch) >= len(heap):
            # Bulk path: one O(n + k) heapify beats k O(log n) sifts.
            for event in batch:
                event.queued = True
            heap.extend(batch)
            heapify(heap)
        else:
            for event in batch:
                self.push(event)

    # -- removal -------------------------------------------------------
    def pop(self) -> Optional[Event]:
        heap = self._heap
        while heap:
            event = heappop(heap)
            if event.cancelled:
                event.queued = False
                self._cancelled -= 1
                _san_discard(self._san, event, "heap.discard")
                continue
            event.queued = False
            return event
        return None

    def peek(self) -> Optional[Event]:
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heappop(heap)
                event.queued = False
                self._cancelled -= 1
                _san_discard(self._san, event, "heap.discard")
                continue
            return event
        return None

    # -- cancellation --------------------------------------------------
    def note_cancel(self, event: Event) -> None:
        self._cancelled += 1
        size = len(self._heap)
        if size >= COMPACT_MIN_EVENTS and (
            size - self._cancelled < size * COMPACT_LIVE_FRACTION
        ):
            self._compact()

    def _compact(self) -> None:
        for event in self._heap:
            if event.cancelled:
                event.queued = False
                _san_discard(self._san, event, "heap.compact")
        self._heap = [event for event in self._heap if not event.cancelled]
        heapify(self._heap)
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap)


class CalendarScheduler:
    """Bucketed calendar queue tuned for near-future-dominated runs.

    The wheel covers ``[base, base + num_buckets * bucket_width_us)``;
    each bucket is a small ``(time, seq)`` heap, so intra-bucket order is
    exact and inter-bucket order follows from the bucket index being
    monotone in time. Events beyond the window wait in a heap-ordered
    overflow; when the wheel drains, the window rebases onto the earliest
    overflow event and the in-window prefix migrates in.

    Invariants:

    * every overflow event's time is >= ``base + horizon``, so the wheel
      always holds the global minimum while it is non-empty;
    * buckets below ``_cursor`` are empty (``push`` rewinds the cursor
      when an insert lands behind it);
    * ``_peeked`` (when set) is the global-minimum live event and sits at
      the top of ``_buckets[_peeked_bucket]``.
    """

    __slots__ = (
        "_width",
        "_nbuckets",
        "_horizon",
        "_buckets",
        "_base",
        "_cursor",
        "_wheel_count",
        "_overflow",
        "_cancelled",
        "_peeked",
        "_peeked_bucket",
        "_san",
    )

    def __init__(self, bucket_width_us: float = 1.0, num_buckets: int = 512) -> None:
        if bucket_width_us <= 0:
            raise ValueError("bucket width must be positive")
        if num_buckets < 2:
            raise ValueError("calendar needs at least two buckets")
        self._width = bucket_width_us
        self._nbuckets = num_buckets
        self._horizon = bucket_width_us * num_buckets
        self._buckets: List[List[Event]] = [[] for _ in range(num_buckets)]
        self._base = 0.0
        self._cursor = 0
        #: Entries in the wheel, including not-yet-discarded cancelled ones.
        self._wheel_count = 0
        self._overflow: List[Event] = []
        self._cancelled = 0
        self._peeked: Optional[Event] = None
        self._peeked_bucket = 0
        self._san = None

    # -- insertion -----------------------------------------------------
    def _bucket_index(self, time: float) -> int:
        index = int((time - self._base) / self._width)
        if index < 0:
            # Float rounding at a rebase boundary; collapsing into the
            # first bucket preserves (time, seq) order (see pop).
            return 0
        if index >= self._nbuckets:
            return self._nbuckets - 1
        return index

    def push(self, event: Event) -> None:
        event.queued = True
        if event.time - self._base < self._horizon:
            index = self._bucket_index(event.time)
            if index < self._cursor:
                # peek() may have advanced the cursor past this bucket
                # before the clock reached it; rewind so pop rescans.
                self._cursor = index
            heappush(self._buckets[index], event)
            self._wheel_count += 1
            peeked = self._peeked
            if peeked is not None and event < peeked:
                self._peeked = event
                self._peeked_bucket = index
        else:
            # Beyond the window: by the wheel invariant this can never
            # undercut a cached wheel minimum.
            heappush(self._overflow, event)

    def push_many(self, events: Iterable[Event]) -> None:
        for event in events:
            self.push(event)

    # -- removal -------------------------------------------------------
    def pop(self) -> Optional[Event]:
        event = self._peeked
        if event is not None and not event.cancelled:
            # The cached global minimum tops its bucket; O(log bucket).
            bucket = self._buckets[self._peeked_bucket]
            popped = heappop(bucket)
            self._wheel_count -= 1
            self._cursor = self._peeked_bucket
            self._peeked = None
            popped.queued = False
            return popped
        self._peeked = None
        found = self._scan(remove=True)
        if found is not None:
            found.queued = False
        return found

    def peek(self) -> Optional[Event]:
        event = self._peeked
        if event is not None and not event.cancelled:
            return event
        self._peeked = None
        return self._scan(remove=False)

    def _scan(self, remove: bool) -> Optional[Event]:
        """Find the next live event; optionally remove it.

        Discards cancelled entries encountered at bucket heads. When the
        wheel drains, rebases onto the overflow and retries.
        """
        while True:
            if self._wheel_count:
                buckets = self._buckets
                for index in range(self._cursor, self._nbuckets):
                    bucket = buckets[index]
                    while bucket and bucket[0].cancelled:
                        dead = heappop(bucket)
                        dead.queued = False
                        self._wheel_count -= 1
                        self._cancelled -= 1
                        _san_discard(self._san, dead, "calendar.discard")
                    if bucket:
                        self._cursor = index
                        if remove:
                            self._wheel_count -= 1
                            return heappop(bucket)
                        live = bucket[0]
                        self._peeked = live
                        self._peeked_bucket = index
                        return live
                    self._cursor = index
            if not self._overflow:
                return None
            self._refill()

    def _refill(self) -> None:
        """Rebase the (drained) wheel onto the earliest overflow event."""
        overflow = self._overflow
        while overflow and overflow[0].cancelled:
            dead = heappop(overflow)
            dead.queued = False
            self._cancelled -= 1
            _san_discard(self._san, dead, "calendar.refill")
        if not overflow:
            return
        width = self._width
        self._base = math.floor(overflow[0].time / width) * width
        self._cursor = 0
        horizon_end = self._base + self._horizon
        buckets = self._buckets
        count = 0
        while overflow and overflow[0].time < horizon_end:
            event = heappop(overflow)
            if event.cancelled:
                event.queued = False
                self._cancelled -= 1
                _san_discard(self._san, event, "calendar.refill")
                continue
            heappush(buckets[self._bucket_index(event.time)], event)
            count += 1
        self._wheel_count = count

    # -- cancellation --------------------------------------------------
    def note_cancel(self, event: Event) -> None:
        self._cancelled += 1
        if self._peeked is event:
            self._peeked = None
        size = len(self)
        if size >= COMPACT_MIN_EVENTS and (
            size - self._cancelled < size * COMPACT_LIVE_FRACTION
        ):
            self._compact()

    def _compact(self) -> None:
        live: List[Event] = []
        for bucket in self._buckets:
            for event in bucket:
                if event.cancelled:
                    event.queued = False
                    _san_discard(self._san, event, "calendar.compact")
                else:
                    live.append(event)
            del bucket[:]
        overflow_live: List[Event] = []
        for event in self._overflow:
            if event.cancelled:
                event.queued = False
                _san_discard(self._san, event, "calendar.compact")
            else:
                overflow_live.append(event)
        # Overflow entries still satisfy time >= base + horizon, so the
        # base (and hence all bucket math) survives the rebuild.
        heapify(overflow_live)
        self._overflow = overflow_live
        self._wheel_count = 0
        self._cursor = 0
        self._peeked = None
        self._cancelled = 0
        for event in live:
            # Re-insert through push so the wheel bookkeeping stays exact.
            self.push(event)

    def __len__(self) -> int:
        return self._wheel_count + len(self._overflow)


#: Names accepted by configuration (``REPRO_SIM_SCHEDULER`` / CLI).
SCHEDULER_NAMES = ("heap", "calendar")


def make_scheduler(name: str) -> Scheduler:
    """Build a scheduler from its configuration name."""
    if name == "heap":
        return HeapScheduler()
    if name == "calendar":
        return CalendarScheduler()
    raise ValueError(
        f"unknown scheduler {name!r}; expected one of {SCHEDULER_NAMES}"
    )
