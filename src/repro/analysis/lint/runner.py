"""File discovery, rule dispatch and suppression for ``repro lint``."""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Project,
    Rule,
    meta_findings,
    module_name_for,
)
from repro.analysis.flow.registry import FLOW_RULE_IDS
from repro.analysis.lint.report import LintResult
from repro.analysis.order.registry import ORDER_RULE_IDS
from repro.analysis.san.registry import SAN_RULE_IDS
from repro.analysis.lint.rules_des import DES_RULES
from repro.analysis.lint.rules_determinism import DETERMINISM_RULES
from repro.analysis.lint.rules_race import RACE_RULES

#: Every rule, in catalogue order.
ALL_RULES: Tuple[Rule, ...] = DETERMINISM_RULES + DES_RULES + RACE_RULES


def known_rule_ids() -> List[str]:
    """Every rule id any pass can report — lint, flow, order and san
    share the ``# simlint:`` pragma namespace, so a pragma naming
    another pass's rule is legal in any run."""
    return (
        [rule.id for rule in ALL_RULES]
        + list(FLOW_RULE_IDS)
        + list(ORDER_RULE_IDS)
        + list(SAN_RULE_IDS)
    )

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "results"}


def rule_by_id(rule_id: str) -> Optional[Rule]:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    return None


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name for name in dirnames if name not in _SKIP_DIRS
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return sorted(dict.fromkeys(found))


def lint_paths(
    paths: Sequence[str],
    rule_ids: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint ``paths`` (files or trees) with all or the selected rules.

    Suppression pragmas are applied after rule execution, so a pragma
    silences the finding without changing what the rules see. Unknown
    rule ids in ``rule_ids`` raise ``ValueError`` — a typo in ``--rule``
    must not silently lint nothing.
    """
    selected: List[Rule]
    if rule_ids is None:
        selected = list(ALL_RULES)
    else:
        selected = []
        for rule_id in rule_ids:
            rule = rule_by_id(rule_id)
            if rule is None:
                known = ", ".join(r.id for r in ALL_RULES)
                raise ValueError(f"unknown rule id {rule_id!r} (known: {known})")
            selected.append(rule)

    files = [
        FileContext(path, _read(path), module_name_for(path))
        for path in iter_python_files(paths)
    ]
    project = Project(files=files)

    findings: List[Finding] = []
    for rule in selected:
        findings.extend(rule.check_project(project))
    # Meta findings (parse errors, malformed pragmas) always run: a file
    # that cannot be parsed was not checked, and silence would be a lie.
    by_path = {ctx.path: ctx for ctx in files}
    for ctx in files:
        findings.extend(meta_findings(ctx, known_rule_ids()))

    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        if _suppressed(by_path.get(finding.path), finding):
            suppressed.append(finding)
        else:
            kept.append(finding)
    kept.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return LintResult(
        findings=kept,
        files_checked=len(files),
        rules_run=[rule.id for rule in selected],
        suppressed=suppressed,
    )


def _suppressed(ctx: Optional[FileContext], finding: Finding) -> bool:
    if ctx is None:
        return False
    if finding.rule in ("LINT000", "LINT001"):
        return False  # the suppression machinery cannot suppress itself
    return ctx.suppressed(finding.rule, finding.line)


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()
