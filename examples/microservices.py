#!/usr/bin/env python3
"""Scenario: a microservice fleet on one busy node.

The second real-world case Section 6.4 highlights: many flows with
unbalanced traffic, where more flows than cores co-locate and hash
collisions pile several flows' softirqs on the same core. We place 24
single-flow containers on a node whose receive processing is confined to
6 cores (the paper's Figure 14 setup) and compare the vanilla overlay
with Falcon — including the tail latency that an SLO would care about.

Run:  python examples/microservices.py
"""

from repro.core.config import FalconConfig
from repro.metrics.report import Table
from repro.workloads.multiflow import run_multicontainer

CONTAINERS = 24
RECEIVE_CORES = [1, 2, 3, 4, 5, 6]


def main() -> None:
    table = Table(
        ["case", "kpps", "avg us", "p99 us", "receive-core util %"],
        title=f"{CONTAINERS} containers, RPC-sized messages, 6 receive cores",
    )
    for name, falcon in (
        ("vanilla overlay", None),
        ("Falcon", FalconConfig(cpus=list(RECEIVE_CORES))),
    ):
        result = run_multicontainer(
            CONTAINERS,
            message_size=1024,
            proto="udp",
            falcon=falcon,
            receiving_cpus=list(RECEIVE_CORES),
            rate_per_flow=120_000.0,
            duration_ms=25,
            warmup_ms=10,
        )
        util = sum(result.cpu_util[cpu] for cpu in RECEIVE_CORES) / len(
            RECEIVE_CORES
        )
        table.add_row(
            name,
            result.message_rate_pps / 1e3,
            result.latency["avg"],
            result.latency["p99"],
            util * 100,
        )
    print(table.render())
    print()
    print(
        "With more flows than receive cores, consistent hashing parks\n"
        "several flows' softirq pipelines on the same core while others\n"
        "idle. Falcon multiplexes the stages over whatever idle cycles\n"
        "exist and backs off (load threshold) when there are none."
    )


if __name__ == "__main__":
    main()
