"""Figure 21 — the per-flow fast-path cache (ONCache) as a third datapath.

Two panels:

* **(a) four-regime stress comparison** — vanilla overlay, Falcon,
  ONCache, and ONCache+Falcon on the same multi-flow UDP workload. The
  load ramps (low rate while the cache warms, then stress): the ordering
  gate only grants fast-path hits when a flow has no slow-path packets
  in flight, so a cold cache under saturation never populates — exactly
  like the real ONCache, whose first packet must complete the slow path
  before the flow table entry goes live. A warm cache self-sustains
  under overload because all-hit traffic keeps the slow path empty.

* **(b) flow-count sweep across cache sizes** — ingress hit rate and
  throughput vs concurrent flows for several cache capacities. Once the
  flow count exceeds the capacity, LRU thrash collapses the hit rate;
  at or below capacity the steady state is all-hits.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.config import FlowCacheConfig
from repro.experiments.runner import ExperimentOutput, durations, falcon_config
from repro.metrics.report import Table
from repro.workloads.sockperf import RunResult, Testbed
from repro.workloads.traffic import ConstantRate, HotspotSchedule

MESSAGE_SIZE = 512
RPS = [1, 2]
FALCON_CPUS = [3, 4, 5, 6]
APPS = list(range(10, 16))

#: Panel (a): per-flow rates of the ramp (µs-timestamped schedule).
WARM_RATE_PPS = 30_000.0
STRESS_RATE_PPS = 260_000.0
STRESS_FLOWS = 8

#: Panel (b): sweep dimensions. The per-flow rate keeps the aggregate
#: under the slow-path capacity even cold, so the gate opens at every
#: flow count and the hit rate is set by capacity, not by overload.
SWEEP_FLOWS = (2, 4, 8, 16, 32)
QUICK_SWEEP_FLOWS = (4, 16)
SWEEP_CAPACITIES = (8, 32, 128)
QUICK_SWEEP_CAPACITIES = (8, 128)
SWEEP_RATE_PPS = 12_000.0

#: The four regimes of the comparison: (label, falcon?, flowcache?).
REGIMES: Tuple[Tuple[str, bool, bool], ...] = (
    ("Con", False, False),
    ("Falcon", True, False),
    ("ONCache", False, True),
    ("ONC+Falcon", True, True),
)


def _bed(use_falcon: bool, use_cache: bool, capacity: int, seed: int) -> Testbed:
    return Testbed(
        mode="overlay",
        falcon=falcon_config(cpus=FALCON_CPUS) if use_falcon else None,
        flowcache=FlowCacheConfig(capacity=capacity) if use_cache else None,
        rps_cpus=RPS,
        app_cpus=APPS,
        seed=seed,
    )


def run_ramp_regime(
    use_falcon: bool,
    use_cache: bool,
    flows: int = STRESS_FLOWS,
    capacity: int = 128,
    warmup_ms: float = 12.0,
    duration_ms: float = 15.0,
    seed: int = 3,
) -> RunResult:
    """One regime under the warm-then-stress ramp workload."""
    bed = _bed(use_falcon, use_cache, capacity, seed)
    for _ in range(flows):
        schedule = HotspotSchedule(
            [(0.0, WARM_RATE_PPS), (warmup_ms * 1000.0, STRESS_RATE_PPS)]
        )
        bed.add_udp_flow(MESSAGE_SIZE, clients=1, process=schedule)
    return bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)


def run_sweep_point(
    flows: int,
    capacity: int,
    warmup_ms: float,
    duration_ms: float,
    seed: int = 0,
) -> RunResult:
    """One (flow count, capacity) point of the paced hit-rate sweep."""
    bed = _bed(False, True, capacity, seed)
    for _ in range(flows):
        bed.add_udp_flow(
            MESSAGE_SIZE, clients=1, process=ConstantRate(SWEEP_RATE_PPS)
        )
    return bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput(
        "Figure 21", "Per-flow fast-path cache: regimes and flow-count sweep"
    )
    dur = durations(quick, 15.0, 12.0)

    # --- (a) four regimes under the ramp --------------------------------
    table = Table(
        ["regime", "kpps", "avg us", "p99 us", "hit rate", "fastpath frac"],
        title=(
            f"UDP {MESSAGE_SIZE} B, {STRESS_FLOWS} flows ramping "
            f"{WARM_RATE_PPS / 1e3:.0f}k -> {STRESS_RATE_PPS / 1e3:.0f}k pps/flow"
        ),
    )
    regimes: Dict[str, Dict[str, float]] = {}
    for label, use_falcon, use_cache in REGIMES:
        result = run_ramp_regime(
            use_falcon,
            use_cache,
            warmup_ms=dur["warmup_ms"],
            duration_ms=dur["duration_ms"],
        )
        delivered = max(result.messages_delivered, 1)
        fast_frac = min(result.fastpath_deliveries / delivered, 1.0)
        table.add_row(
            label,
            result.message_rate_pps / 1e3,
            result.avg_latency_us,
            result.p99_latency_us,
            result.cache_hit_rate,
            fast_frac,
        )
        regimes[label] = {
            "pps": result.message_rate_pps,
            "avg_us": result.avg_latency_us,
            "hit_rate": result.cache_hit_rate,
            "fastpath_fraction": fast_frac,
        }
    out.tables.append(table)
    out.series["regimes"] = regimes

    # --- (b) hit rate / throughput vs flows, per capacity ----------------
    flows_list = QUICK_SWEEP_FLOWS if quick else SWEEP_FLOWS
    capacities = QUICK_SWEEP_CAPACITIES if quick else SWEEP_CAPACITIES
    sweep_dur = durations(quick, 12.0, 6.0)
    for capacity in capacities:
        sweep_table = Table(
            ["flows", "kpps", "hit rate", "evictions"],
            title=(
                f"ONCache capacity {capacity}, paced "
                f"{SWEEP_RATE_PPS / 1e3:.0f}k pps/flow"
            ),
        )
        sweep: Dict[int, Dict[str, float]] = {}
        for flows in flows_list:
            result = run_sweep_point(
                flows,
                capacity,
                warmup_ms=sweep_dur["warmup_ms"],
                duration_ms=sweep_dur["duration_ms"],
            )
            sweep_table.add_row(
                flows,
                result.message_rate_pps / 1e3,
                result.cache_hit_rate,
                result.cache_evictions,
            )
            sweep[flows] = {
                "pps": result.message_rate_pps,
                "hit_rate": result.cache_hit_rate,
                "evictions": float(result.cache_evictions),
            }
        out.tables.append(sweep_table)
        out.series[("sweep", capacity)] = sweep
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
