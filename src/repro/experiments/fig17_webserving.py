"""Figure 17 — CloudSuite Web Serving under vanilla overlay vs Falcon.

200 users against the Elgg-like stack. Three panels: successful
operations per minute, average response time, and average delay time
(actual minus target), per operation type.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations, falcon_config
from repro.metrics.report import Table
from repro.workloads.webserving import OPERATIONS, run_webserving


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 17", "Web serving (CloudSuite) with 200 users")
    dur = durations(quick, 30.0, 15.0)
    results = {}
    for label, falcon in (("Con", None), ("Falcon", falcon_config())):
        results[label] = run_webserving(
            users=200,
            falcon=falcon,
            duration_ms=dur["duration_ms"],
            warmup_ms=dur["warmup_ms"],
        )

    table_ops = Table(
        ["operation", "Con op/min", "Falcon op/min", "gain %"],
        title="(a) successful operations per minute",
    )
    table_resp = Table(
        ["operation", "Con ms", "Falcon ms", "reduction %"],
        title="(b) average response time",
    )
    table_delay = Table(
        ["operation", "Con ms", "Falcon ms", "reduction %"],
        title="(c) average delay time (actual - target)",
    )
    series = {}
    for op in OPERATIONS:
        name = op.name
        con, fal = results["Con"], results["Falcon"]
        ops_con, ops_fal = con.ops_per_minute(name), fal.ops_per_minute(name)
        resp_con, resp_fal = con.avg_response_ms(name), fal.avg_response_ms(name)
        delay_con, delay_fal = con.avg_delay_ms(name), fal.avg_delay_ms(name)
        table_ops.add_row(
            name, ops_con, ops_fal,
            (ops_fal / ops_con - 1.0) * 100 if ops_con else 0.0,
        )
        table_resp.add_row(
            name, resp_con, resp_fal,
            (1.0 - resp_fal / resp_con) * 100 if resp_con else 0.0,
        )
        table_delay.add_row(
            name, delay_con, delay_fal,
            (1.0 - delay_fal / delay_con) * 100 if delay_con else 0.0,
        )
        series[name] = dict(
            ops=(ops_con, ops_fal),
            response_ms=(resp_con, resp_fal),
            delay_ms=(delay_con, delay_fal),
        )
    out.tables.extend([table_ops, table_resp, table_delay])
    out.series["per_op"] = series
    out.series["total_ops"] = (
        results["Con"].total_ops,
        results["Falcon"].total_ops,
    )
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
