"""TIME502: wall-clock time steering the DES scheduler."""

import time


def arm_timer(sim, handler):
    start = time.time()
    sim.schedule(start, handler)  # expect: TIME502


def arm_direct(sim, handler):
    sim.schedule_at(time.monotonic(), handler)  # expect: TIME502
