"""Multi-queue NIC model with RSS and NAPI-style interrupt suppression.

Receive path behaviour mirrors a modern NIC driver (e.g. mlx5):

* arriving frames are DMA'd into the rx ring of the queue selected by RSS
  (a hash of the flow 5-tuple computed in hardware);
* if the ring is full the frame is dropped and counted;
* a hardware interrupt fires only when NAPI is not already scheduled for
  that queue — while the driver is polling, interrupts stay masked, so a
  busy receiver takes very few hardirqs per packet.

The kernel side (IRQ handler + NAPI poll loop) lives in
:mod:`repro.kernel`; the NIC calls back into it through ``irq_handler``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional


class RxQueue:
    """One hardware receive queue: ring buffer + interrupt state."""

    __slots__ = ("index", "ring", "capacity", "irq_cpu", "napi_scheduled", "drops")

    def __init__(self, index: int, capacity: int, irq_cpu: int) -> None:
        self.index = index
        self.ring: Deque = deque()
        self.capacity = capacity
        #: Core this queue's MSI-X vector is affinitized to.
        self.irq_cpu = irq_cpu
        #: True while NAPI owns the queue (interrupts masked).
        self.napi_scheduled = False
        self.drops = 0

    def __len__(self) -> int:
        return len(self.ring)

    @property
    def full(self) -> bool:
        return len(self.ring) >= self.capacity


class Nic:
    """A physical NIC with ``num_queues`` receive queues.

    Args:
        num_queues: hardware queue count (RSS spreads flows across these).
        ring_capacity: per-queue rx descriptor count.
        irq_cpus: core each queue's interrupt is steered to; defaults to
            queue ``i`` → core ``i``.
        rss_hash: maps an ``skb`` to a 32-bit hash; installed by the
            kernel stack (it owns the flow-hash function).
    """

    def __init__(
        self,
        num_queues: int = 1,
        ring_capacity: int = 1024,
        irq_cpus: Optional[List[int]] = None,
    ) -> None:
        if num_queues < 1:
            raise ValueError("NIC needs at least one queue")
        if irq_cpus is None:
            irq_cpus = list(range(num_queues))
        if len(irq_cpus) != num_queues:
            raise ValueError("irq_cpus must have one entry per queue")
        self.queues = [
            RxQueue(index, ring_capacity, irq_cpus[index])
            for index in range(num_queues)
        ]
        #: Kernel callback invoked when a queue raises a hardware interrupt.
        self.irq_handler: Optional[Callable[[RxQueue], Any]] = None
        self.rx_packets = 0
        self.rx_bytes = 0

    def select_queue(self, flow_hash: int) -> RxQueue:
        """RSS: pick the queue from the flow hash (indirection by modulo)."""
        return self.queues[flow_hash % len(self.queues)]

    def receive(self, skb: Any) -> bool:
        """A frame arrived from the wire. Returns False if it was dropped."""
        queue = self.select_queue(skb.hash)
        if queue.full:
            queue.drops += 1
            return False
        queue.ring.append(skb)
        self.rx_packets += 1
        self.rx_bytes += skb.wire_size
        if not queue.napi_scheduled:
            queue.napi_scheduled = True
            if self.irq_handler is None:
                raise RuntimeError("NIC has no IRQ handler installed")
            self.irq_handler(queue)
        return True

    @property
    def total_drops(self) -> int:
        return sum(queue.drops for queue in self.queues)
