"""Clean twin of des201_bad: concurrency is events on the DES engine."""


def process_in_background(sim, delay, fn, skb):
    sim.schedule(delay, fn, skb)
