"""Clean twin of race301_bad: cross-core traffic rides an IPI event."""


class MiniSoftirqSerialized:
    def __init__(self, sim, ipi_delay_us, num_cpus):
        self.sim = sim
        self.ipi_delay_us = ipi_delay_us
        self.backlogs = [[] for _ in range(num_cpus)]

    def enqueue(self, target_cpu, skb, from_cpu):
        self.sim.schedule(self.ipi_delay_us, self._deliver, target_cpu, skb)

    def _deliver(self, cpu, skb):
        self.backlogs[cpu].append(skb)
