"""Unit tests for Falcon configuration, balancing policies and steering."""

import pytest

from repro.core.balancing import (
    LeastLoadedBalancer,
    StaticHashBalancer,
    TwoChoiceBalancer,
    make_balancer,
)
from repro.core.config import FalconConfig
from repro.core.falcon import FalconSteering, VanillaSteering
from repro.core.pipelining import expected_cpu_plan, pipeline_width, stacking_plan
from repro.core.splitting import GRO_SPLIT, SplitSpec, validate_split
from repro.hw.topology import Machine
from repro.kernel.hashing import hash_32
from repro.kernel.skb import FlowKey, Skb
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError


def make_machine(num_cpus=8):
    return Machine(Simulator(), num_cpus=num_cpus)


def make_skb(sport=1000):
    return Skb(FlowKey.make(1, 2, sport=sport), size=100)


class TestConfig:
    def test_defaults_valid(self):
        FalconConfig().validate(num_cpus=20)

    def test_empty_cpus_rejected(self):
        with pytest.raises(ConfigurationError):
            FalconConfig(cpus=[]).validate(num_cpus=8)

    def test_cpu_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FalconConfig(cpus=[9]).validate(num_cpus=8)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            FalconConfig(load_threshold=0.0).validate(num_cpus=8)

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            FalconConfig(policy="round_robin").validate(num_cpus=8)

    def test_disabled_preset(self):
        config = FalconConfig.disabled()
        assert not config.enabled


class TestBalancers:
    def test_static_is_deterministic(self):
        machine = make_machine()
        balancer = StaticHashBalancer()
        cpus = [3, 4, 5, 6]
        picks = {balancer.select(machine, cpus, 12345, 3) for _ in range(10)}
        assert len(picks) == 1
        assert picks.pop() in cpus

    def test_static_matches_first_choice(self):
        from repro.core.balancing import first_choice_cpu

        machine = make_machine()
        cpus = [3, 4, 5, 6]
        skb_hash, ifindex = 99999, 5
        expected = first_choice_cpu(cpus, skb_hash, ifindex)
        assert StaticHashBalancer().select(machine, cpus, skb_hash, ifindex) == expected

    def test_second_choice_usually_differs_from_first(self):
        """The regression the high-bit folding fixes: with a power-of-two
        CPU set, the double hash must not map slots back onto themselves."""
        from repro.core.balancing import first_choice_cpu, second_choice_cpu

        cpus = [3, 4, 5, 6]
        differing = sum(
            1
            for skb_hash in range(512)
            if first_choice_cpu(cpus, skb_hash * 2654435761 % 2**32, 5)
            != second_choice_cpu(cpus, skb_hash * 2654435761 % 2**32, 5)
        )
        assert differing > 512 * 0.55  # ~75% expected for 4 CPUs

    def test_two_choice_stays_when_first_idle(self):
        machine = make_machine()
        balancer = TwoChoiceBalancer(load_threshold=0.85)
        cpus = [3, 4, 5, 6]
        first = StaticHashBalancer().select(machine, cpus, 777, 3)
        assert balancer.select(machine, cpus, 777, 3) == first
        assert balancer.second_choices == 0

    def test_two_choice_rehashes_away_from_busy_core(self):
        from repro.core.balancing import first_choice_cpu, second_choice_cpu

        machine = make_machine()
        cpus = [3, 4, 5, 6]
        balancer = TwoChoiceBalancer(load_threshold=0.85)
        # Find a (hash, ifindex) whose first and second choices differ.
        for skb_hash in range(64):
            first = first_choice_cpu(cpus, skb_hash, 3)
            second = second_choice_cpu(cpus, skb_hash, 3)
            if first != second:
                break
        machine.cpus[first].load = 0.99
        assert balancer.select(machine, cpus, skb_hash, 3) == second
        assert balancer.second_choices == 1

    def test_two_choice_commits_to_second_even_if_busy(self):
        machine = make_machine()
        cpus = [3, 4, 5, 6]
        balancer = TwoChoiceBalancer(load_threshold=0.85)
        for cpu in cpus:
            machine.cpus[cpu].load = 0.99
        pick = balancer.select(machine, cpus, 42, 3)
        assert pick in cpus  # no third choice, no exception

    def test_least_loaded_chases_minimum(self):
        machine = make_machine()
        cpus = [3, 4, 5, 6]
        machine.cpus[5].load = 0.0
        for cpu in (3, 4, 6):
            machine.cpus[cpu].load = 0.9
        assert LeastLoadedBalancer().select(machine, cpus, 1, 2) == 5

    def test_factory(self):
        assert isinstance(
            make_balancer(FalconConfig(policy="two_choice")), TwoChoiceBalancer
        )
        assert isinstance(
            make_balancer(FalconConfig(policy="static")), StaticHashBalancer
        )
        assert isinstance(
            make_balancer(FalconConfig(policy="least_loaded")), LeastLoadedBalancer
        )


class TestFalconSteering:
    def test_inactive_when_disabled(self):
        machine = make_machine()
        steering = FalconSteering(machine, FalconConfig(enabled=False, cpus=[3]))
        assert not steering.active()
        skb = make_skb()
        assert steering.select_cpu(skb, 3, current_cpu=1) == 1
        assert steering.fallbacks == 1

    def test_load_gate_disables_falcon(self):
        machine = make_machine()
        config = FalconConfig(cpus=[3, 4], load_threshold=0.85)
        steering = FalconSteering(machine, config)
        assert steering.active()
        machine.cpus[3].load = 1.0
        machine.cpus[4].load = 0.9
        assert not steering.active()  # L_avg = 0.95 >= 0.85
        assert steering.select_cpu(make_skb(), 3, current_cpu=1) == 1

    def test_always_on_ignores_load(self):
        machine = make_machine()
        config = FalconConfig(cpus=[3, 4], threshold_enabled=False)
        steering = FalconSteering(machine, config)
        machine.cpus[3].load = 1.0
        machine.cpus[4].load = 1.0
        assert steering.active()

    def test_steers_to_falcon_cpu(self):
        machine = make_machine()
        steering = FalconSteering(machine, FalconConfig(cpus=[3, 4, 5, 6]))
        skb = make_skb()
        target = steering.select_cpu(skb, ifindex=3, current_cpu=1)
        assert target in (3, 4, 5, 6)
        assert steering.steered == 1

    def test_same_flow_same_device_is_sticky(self):
        machine = make_machine()
        steering = FalconSteering(machine, FalconConfig(cpus=[3, 4, 5, 6]))
        skb = make_skb()
        picks = {steering.select_cpu(skb, 3, 1) for _ in range(20)}
        assert len(picks) == 1

    def test_different_devices_usually_differ(self):
        machine = make_machine(num_cpus=16)
        steering = FalconSteering(machine, FalconConfig(cpus=list(range(4, 16))))
        differing = 0
        for sport in range(100):
            skb = make_skb(sport=sport)
            if steering.select_cpu(skb, 3, 1) != steering.select_cpu(skb, 5, 1):
                differing += 1
        assert differing > 70  # 1 - 1/12 expected

    def test_selector_binds_ifindex(self):
        machine = make_machine()
        steering = FalconSteering(machine, FalconConfig(cpus=[3, 4, 5, 6]))
        skb = make_skb()
        selector = steering.selector(5)
        assert selector(skb, 1) == steering.select_cpu(skb, 5, 1)

    def test_split_selector_same_core_pins(self):
        machine = make_machine()
        steering = FalconSteering(machine, FalconConfig(cpus=[3, 4]))
        selector = steering.split_selector(1002, split_same_core=True)
        assert selector(make_skb(), 7) == 7

    def test_vanilla_steering_never_moves(self):
        selector = VanillaSteering().selector(5)
        assert selector(make_skb(), 9) == 9


class TestSplitting:
    def test_gro_split_is_legal(self):
        validate_split(GRO_SPLIT)

    def test_unknown_cut_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_split(SplitSpec("container", "l4_rcv"))


class TestPipelining:
    def test_expected_plan_covers_devices(self):
        plan = expected_cpu_plan(0xABCD, [3, 5], [3, 4, 5, 6])
        assert sorted(plan) == [3, 5]
        assert all(cpu in (3, 4, 5, 6) for cpu in plan.values())

    def test_pipeline_width_bounds(self):
        width = pipeline_width(0xABCD, [3, 5], [3, 4, 5, 6])
        assert 1 <= width <= 2

    def test_stacking_plan_partitions_in_order(self):
        groups = stacking_plan(FalconConfig(), [3, 4, 5], 2)
        flattened = [i for group in groups for i in group]
        assert flattened == [3, 4, 5]
        assert len(groups) == 2

    def test_stacking_plan_validation(self):
        with pytest.raises(ValueError):
            stacking_plan(FalconConfig(), [3], 0)
