"""Analysis of the reproduction: closed-form models and static checks.

Two halves:

* :mod:`~repro.analysis.pipeline` — a closed-form companion to the
  simulator: from the same :class:`~repro.kernel.costs.CostModel` it
  derives each mode's per-stage service times, predicts the bottleneck
  stage and the saturation packet rate, and estimates queueing latency.
  The cross-validation tests assert simulator and analysis agree, which
  protects both against silent calibration drift.
* :mod:`~repro.analysis.lint` — ``simlint``, the static-analysis pass
  that enforces the simulator's determinism, DES-discipline and
  simulated-concurrency contracts on every file (``repro lint``), with
  suppression pragmas in :mod:`~repro.analysis.pragmas`. Imported
  lazily: linting never loads the simulator and the simulator never
  loads the linter.
"""

from repro.analysis.pipeline import (
    PipelineModel,
    StageCost,
    mm1_waiting_time_us,
    predict_capacity_pps,
)

__all__ = [
    "PipelineModel",
    "StageCost",
    "predict_capacity_pps",
    "mm1_waiting_time_us",
]
