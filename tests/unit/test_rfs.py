"""Unit/integration tests for Receive Flow Steering (RFS)."""

import pytest

from repro.kernel.skb import FlowKey, Skb
from repro.kernel.stack import StackConfig
from repro.kernel.steering import Rfs
from repro.overlay.host import Host
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.workloads.sockperf import Testbed


def make_skb(sport=1000):
    return Skb(FlowKey.make(1, 2, sport=sport), size=64)


class TestRfsUnit:
    def test_falls_back_to_rps_without_entry(self):
        rfs = Rfs([1, 2, 3])
        skb = make_skb()
        assert rfs.get_rps_cpu(skb, 0) in (1, 2, 3)
        assert rfs.misses == 1

    def test_steers_to_recorded_consumer(self):
        rfs = Rfs([1, 2, 3])
        skb = make_skb()
        rfs.record_consumer(skb.flow.flow_id, 7)
        assert rfs.get_rps_cpu(skb, 0) == 7
        assert rfs.hits == 1

    def test_consumer_migration_updates_table(self):
        rfs = Rfs([1])
        skb = make_skb()
        rfs.record_consumer(skb.flow.flow_id, 5)
        rfs.record_consumer(skb.flow.flow_id, 6)
        assert rfs.get_rps_cpu(skb, 0) == 6


class TestRfsInStack:
    def test_unknown_steering_flavour_rejected(self):
        with pytest.raises(ConfigurationError):
            Host(
                Simulator(),
                StackConfig(mode="host", steering="xps"),
                num_cpus=4,
            )

    def test_rfs_learns_consumer_at_bind(self):
        sim = Simulator()
        host = Host(
            sim, StackConfig(mode="host", steering="rfs", rps_cpus=[1, 2]), num_cpus=8
        )
        flow = FlowKey.make(1, host.host_ip)
        host.stack.open_socket(flow, app_cpu=5)
        assert host.stack.rps.get_rps_cpu(Skb(flow, size=16), 0) == 5

    def test_rfs_runs_stack_next_to_app(self):
        """With RFS, the host stack stage executes on the app's core."""
        sim = Simulator()
        host = Host(
            sim, StackConfig(mode="host", steering="rfs", rps_cpus=[1, 2]), num_cpus=8
        )
        flow = FlowKey.make(1, host.host_ip)
        host.stack.open_socket(flow, app_cpu=5)
        for index in range(30):
            skb = Skb(
                flow, size=64, wire_size=130, msg_id=index, msg_size=64,
                seq=index, t_send=index * 2.0,
            )
            sim.schedule(index * 2.0, host.stack.inject, skb)
        sim.run(until=10_000.0)
        acct = host.machine.acct
        assert acct.busy_us_label(5, "l4_rcv") > 0
        assert acct.busy_us_label(1, "l4_rcv") == 0

    def test_rfs_end_to_end_delivery(self):
        bed = Testbed(mode="overlay", steering="rfs", rps_cpus=[1, 2])
        bed.add_udp_flow(64, clients=1, rate_pps=30_000)
        result = bed.run(warmup_ms=3, measure_ms=8)
        assert result.messages_delivered > 200
        assert result.reordered_messages == 0
        assert bed.stack.rps.hits > 0
