"""Property tests for the extension modules (fair share, TX path)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairshare import partition_cpus
from repro.hw.link import Link
from repro.hw.topology import Machine
from repro.kernel.costs import CostModel, fragment_sizes
from repro.kernel.skb import PROTO_TCP, PROTO_UDP, FlowKey
from repro.kernel.tx import TxStack
from repro.sim.engine import Simulator

tenant_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    min_size=1,
    max_size=6,
    unique=True,
)


@settings(max_examples=200)
@given(
    names=tenant_names,
    weights_seed=st.data(),
    num_cpus=st.integers(min_value=1, max_value=32),
)
def test_partition_covers_disjoint_and_weight_ordered(names, weights_seed, num_cpus):
    if num_cpus < len(names):
        return  # rejected by validation; covered in unit tests
    weights = {
        name: weights_seed.draw(
            st.floats(min_value=0.1, max_value=100.0), label=name
        )
        for name in names
    }
    cpus = list(range(100, 100 + num_cpus))
    partitions = partition_cpus(cpus, weights)
    flat = [cpu for part in partitions.values() for cpu in part]
    # Cover exactly, no overlap.
    assert sorted(flat) == cpus
    # Everyone got at least one CPU.
    assert all(len(part) >= 1 for part in partitions.values())
    # Allocation respects weight ordering up to the ±1 CPU granularity of
    # largest-remainder rounding.
    for a in names:
        for b in names:
            if weights[a] >= 2 * weights[b]:
                assert len(partitions[a]) + 1 >= len(partitions[b])


@settings(max_examples=50, deadline=None)
@given(
    message_size=st.integers(min_value=1, max_value=65507),
    proto=st.sampled_from([PROTO_UDP, PROTO_TCP]),
    overlay=st.booleans(),
)
def test_tx_emits_exactly_the_fragments(message_size, proto, overlay):
    sim = Simulator()
    machine = Machine(sim, num_cpus=2)
    link = Link(sim, 100.0, propagation_us=0.5)
    tx = TxStack(machine, link, CostModel(), overlay=overlay)
    flow = FlowKey.make(1, 2, proto)
    frames = []
    tx.send_message(flow, message_size, app_cpu=0, deliver=frames.append)
    sim.run()
    expected = fragment_sizes(message_size, overlay, tcp=proto == PROTO_TCP)
    assert len(frames) == len(expected)
    assert [f.frag_index for f in frames] == list(range(len(expected)))
    assert all(f.msg_size == message_size for f in frames)
    assert all(f.encapsulated == overlay for f in frames)
    # Wire sequence strictly increasing.
    seqs = [f.seq for f in frames]
    assert seqs == sorted(set(seqs))
