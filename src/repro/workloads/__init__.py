"""Workload generators and benchmark applications.

* :mod:`~repro.workloads.traffic`   — arrival processes (CBR, Poisson,
  bursty hotspots).
* :mod:`~repro.workloads.flows`     — UDP open-loop and TCP closed-loop
  message senders over a simulated link.
* :mod:`~repro.workloads.sockperf`  — the sockperf-style micro-benchmark
  harness (stress, fixed-rate, latency) and the top-level
  :class:`~repro.workloads.sockperf.Experiment` API.
* :mod:`~repro.workloads.multiflow` — multi-flow / multi-container
  harnesses for Figures 13–16.
* :mod:`~repro.workloads.memcached` — the CloudSuite data-caching model
  (Figure 18).
* :mod:`~repro.workloads.webserving` — the CloudSuite web-serving model
  (Figure 17).
"""

from repro.workloads.flows import TcpSender, UdpSender
from repro.workloads.sockperf import Experiment, Testbed

__all__ = ["Experiment", "Testbed", "TcpSender", "UdpSender"]
