"""Flowcache ordering-typestate rules (ORD521, ORD522, ORD523).

The per-flow fast-path cache stays safe under parallel delivery because
of one gate: a flow may be served from the table only while no packet of
that flow is still in flight through the slow path (the *slow-inflight
ledger*), and the table may be (re)populated only by the delivery
confirmation that retires the ledger entry. Every stale-hit and
reordering bug the ONCache paper worries about is a bypass of that gate,
so the gate is enforced as a typestate over the fastpath call surface:

``ORD521``  inserting into a flow table from anywhere other than the
            ledger-gated populate path (``FlowTable.insert`` itself, the
            miss-side ``hit_or_populate``, or the slow-path delivery
            confirmation ``delivered``). An eager insert at lookup time
            re-opens the classic stale-window race.
``ORD522``  a flow-table lookup method that serves hits (membership test
            on the entries map + ``hits`` accounting) without ever
            consulting the slow-inflight ledger — the gate check itself
            is missing, so a cached flow can overtake its own slow-path
            predecessor.
``ORD523``  a container remove/migrate/churn path that never reaches an
            ``invalidate_*`` routine. Stale table entries then keep
            steering frames to an IP whose veth is gone (checked as a
            name-level reachability question over the project call
            graph, batch-dispatch arguments included).

These mirror the runtime checks in ``repro.validate`` (the fastpath
delivery ledger) and the differential REGIMES suite, but fire at review
time instead of under a lucky workload.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.rules_time import _RawFinding
from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Project,
    Rule,
    last_segment,
)

#: Receiver attribute names that denote a flow table even without a
#: ``*table*`` spelling (FlowCache holds one per direction).
_TABLE_ATTRS = frozenset(("ingress", "egress"))

#: Functions allowed to call ``<table>.insert`` — the gated populate
#: path. ``insert`` itself may recurse (eviction), ``hit_or_populate``
#: is the miss-side populate, ``delivered`` is the slow-path delivery
#: confirmation that retires the ledger entry first.
_SANCTIONED_INSERTERS = frozenset(("insert", "hit_or_populate", "delivered"))

#: Calls that dispatch their callable arguments (mirrors the RACE301
#: collector) — reachability must follow batch-posted work too.
_DISPATCH_CALLS = frozenset(
    (
        "post",
        "post_at",
        "post_batch",
        "push_many",
        "schedule",
        "schedule_at",
        "submit",
        "submit_multi",
    )
)


def _is_table_receiver(ctx: FileContext, call: ast.Call) -> bool:
    """``<receiver>.insert(...)`` where the receiver is a flow table."""
    callee = call.func
    if not isinstance(callee, ast.Attribute):
        return False
    receiver = callee.value
    if isinstance(receiver, ast.Name) and receiver.id == "self":
        enclosing = ctx.enclosing_class(call)
        return enclosing is not None and "Table" in enclosing.name
    name = last_segment(receiver)
    if name is None:
        return False
    return name in _TABLE_ATTRS or "table" in name.lower()


def _enclosing_function(
    ctx: FileContext, node: ast.AST
) -> Optional["ast.FunctionDef | ast.AsyncFunctionDef"]:
    current = ctx.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = ctx.parents.get(current)
    return None


def _name_mentions(name: str, needle: str) -> bool:
    return needle in name.lower()


def _segments(name: str) -> List[str]:
    return name.lower().strip("_").split("_")


def _is_removal_entry(name: str) -> bool:
    """Container teardown/migration entry points for ORD523."""
    segs = _segments(name)
    if any(seg in ("churn", "migrate", "migration") for seg in segs):
        return True
    for first, second in zip(segs, segs[1:]):
        if first == "remove" and second == "container":
            return True
    return False


def _mentions_inflight(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and _name_mentions(
            node.attr, "inflight"
        ):
            return True
        if isinstance(node, ast.Name) and _name_mentions(node.id, "inflight"):
            return True
    return False


def _takes_segments(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    """A receive-side lookup: it is handed the packet's wire segments.

    Only the receive path races the slow path (several packets of one
    flow can be in flight through softirq at once); the transmit side is
    serialized per flow by the sender, so ``hit_or_populate`` carries no
    segment count and needs no ledger gate.
    """
    params = list(func.args.posonlyargs) + list(func.args.args) + list(
        func.args.kwonlyargs
    )
    return any("seg" in param.arg.lower() for param in params)


def _serves_hits(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Optional[ast.AugAssign]:
    """The ``self.hits += 1`` node of a hit-serving lookup, if any.

    A lookup "serves hits" when it both tests membership in the entries
    map (``key in self._entries``) and bumps the hit counter.
    """
    membership = False
    hit_bump: Optional[ast.AugAssign] = None
    for node in ast.walk(func):
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            for comparator in node.comparators:
                name = last_segment(comparator)
                if name is not None and _name_mentions(name, "entries"):
                    membership = True
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Attribute)
            and node.target.attr == "hits"
        ):
            hit_bump = node
    return hit_bump if membership and hit_bump is not None else None


def _mentions_inval_token(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> bool:
    """Any ``*inval*`` name/attribute in the body.

    Covers both a direct ``invalidate_ip(...)`` call and the cluster
    churn path, which invalidates *remotely* by emitting a
    ``RECORD_INVAL`` record for the receiving shard to apply.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and "inval" in node.attr.lower():
            return True
        if isinstance(node, ast.Name) and "inval" in node.id.lower():
            return True
    return False


def _called_names(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Set[str]:
    """Callee last-segments, plus callable args of dispatch calls."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = last_segment(node.func)
        if callee is None:
            continue
        names.add(callee)
        if callee in _DISPATCH_CALLS:
            for arg in node.args:
                arg_name = last_segment(arg)
                if arg_name is not None:
                    names.add(arg_name)
            for keyword in node.keywords:
                arg_name = last_segment(keyword.value)
                if arg_name is not None:
                    names.add(arg_name)
    return names


#: Per-project memo so all three ORD52x rules walk once.
_FINDINGS_CACHE: Dict[int, List[_RawFinding]] = {}


def flowcache_findings(project: Project) -> List[_RawFinding]:
    key = id(project)
    cached = _FINDINGS_CACHE.get(key)
    if cached is not None:
        return cached
    report: List[_RawFinding] = []

    # Name-level call graph for ORD523 reachability.
    defined: Dict[str, List[Tuple[FileContext, ast.AST]]] = {}
    calls_of: Dict[str, Set[str]] = {}
    mentions_inval: Dict[str, bool] = {}

    for ctx in project.files:
        if ctx.tree is None:
            continue
        for func in ctx.functions():
            defined.setdefault(func.name, []).append((ctx, func))
            calls_of.setdefault(func.name, set()).update(_called_names(func))
            mentions_inval[func.name] = mentions_inval.get(
                func.name, False
            ) or _mentions_inval_token(func)

            # ORD521: inserts outside the gated populate path.
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "insert"
                    and _is_table_receiver(ctx, node)
                    and _enclosing_function(ctx, node) is func
                    and func.name not in _SANCTIONED_INSERTERS
                ):
                    report.append(
                        _RawFinding(
                            path=ctx.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule="ORD521",
                            message=(
                                "flow-table insert outside the gated "
                                "populate path (insert/hit_or_populate/"
                                "delivered) — populating before the "
                                "slow-inflight ledger retires the flow "
                                "re-opens the stale-hit window"
                            ),
                        )
                    )

            # ORD522: hit-serving lookup without a ledger check.
            enclosing = ctx.enclosing_class(func)
            if (
                enclosing is not None
                and "Table" in enclosing.name
                and _takes_segments(func)
            ):
                hit_bump = _serves_hits(func)
                if hit_bump is not None and not _mentions_inflight(func):
                    report.append(
                        _RawFinding(
                            path=ctx.path,
                            line=hit_bump.lineno,
                            col=hit_bump.col_offset,
                            rule="ORD522",
                            message=(
                                "flow-table lookup serves cached hits "
                                "without consulting the slow-inflight "
                                "ledger — a cached flow can overtake its "
                                "own slow-path predecessor"
                            ),
                        )
                    )

    # ORD523: removal entries must reach an invalidate_* routine.
    invalidators = {
        name for name in defined if name.startswith("invalidate")
    }
    if invalidators:
        for name, sites in sorted(defined.items()):
            if not _is_removal_entry(name):
                continue
            reachable: Set[str] = set()
            frontier = [name]
            while frontier:
                current = frontier.pop()
                if current in reachable:
                    continue
                reachable.add(current)
                frontier.extend(calls_of.get(current, ()))
            if any(
                "inval" in reached.lower() or mentions_inval.get(reached, False)
                for reached in reachable
            ):
                continue
            for ctx, func in sites:
                report.append(
                    _RawFinding(
                        path=ctx.path,
                        line=func.lineno,
                        col=func.col_offset,
                        rule="ORD523",
                        message=(
                            f"container removal/migration path "
                            f"'{name}' never reaches an invalidate_* "
                            "routine — stale flow-table entries keep "
                            "steering frames to the departed container"
                        ),
                    )
                )

    unique = sorted(
        set(report), key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
    )
    _FINDINGS_CACHE.clear()
    _FINDINGS_CACHE[key] = unique
    return unique


class _FlowcacheRuleBase(Rule):
    scope = ("repro.kernel", "repro.overlay")

    def check_project(self, project: Project) -> Iterator[Finding]:
        by_path = {ctx.path: ctx for ctx in project.files}
        for raw in flowcache_findings(project):
            if raw.rule != self.id:
                continue
            ctx = by_path.get(raw.path)
            if ctx is not None and not self.applies_to(ctx.module):
                continue
            yield Finding(
                path=raw.path,
                line=raw.line,
                col=raw.col,
                rule=raw.rule,
                message=raw.message,
            )


class UngatedInsertRule(_FlowcacheRuleBase):
    id = "ORD521"
    title = "flow-table inserts go through the ledger-gated populate path"
    rationale = (
        "FlowTable.access marks the flow slow-inflight on a miss and "
        "only the delivery confirmation repopulates it; an insert from "
        "any other site puts the mapping live while an older packet of "
        "the same flow is still crossing the slow path, which is "
        "exactly the reordering ONCache's gate exists to prevent."
    )


class UngatedLookupRule(_FlowcacheRuleBase):
    id = "ORD522"
    title = "flow-table lookups must consult the slow-inflight ledger"
    rationale = (
        "Serving a cached hit while the same flow has a packet in "
        "flight through the slow path lets the cached copy overtake it; "
        "the membership test alone is not the gate — the ledger check "
        "is."
    )


class MissingInvalidationRule(_FlowcacheRuleBase):
    id = "ORD523"
    title = "container removal paths must reach cache invalidation"
    rationale = (
        "Host.remove_container and the cluster churn path both "
        "invalidate by IP today; any new teardown/migration route that "
        "skips invalidate_flow/ip/all leaves the fast path steering "
        "frames at a container that no longer exists — a silent "
        "delivery black hole the runtime counters only catch after the "
        "fact."
    )


FLOWCACHE_RULES: Tuple[Rule, ...] = (
    UngatedInsertRule(),
    UngatedLookupRule(),
    MissingInvalidationRule(),
)
