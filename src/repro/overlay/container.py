"""Containers: private network namespaces with their own IP.

A container owns a private IP on the overlay, a veth gateway into the
host's bridge, and application sockets. Its packets traverse the full
overlay pipeline of its host's :class:`~repro.kernel.stack.NetworkStack`.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from repro.kernel.skb import PROTO_TCP, PROTO_UDP, FlowKey
from repro.kernel.sockets import MessageCallback, Socket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.host import Host

_container_ids = itertools.count(1)


class Container:
    """One container instance placed on a host."""

    def __init__(self, name: str, private_ip: int, host: "Host") -> None:
        self.name = name
        self.private_ip = private_ip
        self.host = host
        self.id = next(_container_ids)
        self._next_port = 5000

    def allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    def listen(
        self,
        port: int,
        app_cpu: int,
        on_message: Optional[MessageCallback] = None,
        proto: int = PROTO_UDP,
        rmem_packets: Optional[int] = None,
    ) -> Socket:
        """Open a server socket inside the container.

        The socket is reachable at (container private IP, port); remote
        flows are bound to it via :meth:`connect_flow`.
        """
        # The socket is created unbound; flows attach as clients connect.
        socket = self.host.stack.open_socket(
            FlowKey(src_ip=0, dst_ip=self.private_ip, proto=proto, sport=0, dport=port),
            app_cpu=app_cpu,
            on_message=on_message,
            rmem_packets=rmem_packets,
            name=f"{self.name}:{port}",
        )
        return socket

    def connect_flow(
        self,
        socket: Socket,
        src_ip: int,
        sport: int,
        dport: int,
        proto: int = PROTO_UDP,
    ) -> FlowKey:
        """Bind a remote 5-tuple to a listening socket (a 'connection')."""
        flow = FlowKey(src_ip, self.private_ip, proto, sport, dport)
        self.host.stack.bind_flow(flow, socket)
        return flow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Container {self.name} ip={self.private_ip}@{self.host.name}>"
