"""Property-based tests for hashing and CPU selection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.balancing import first_choice_cpu, second_choice_cpu
from repro.kernel.hashing import flow_hash, hash_32

u32 = st.integers(min_value=0, max_value=2**32 - 1)
u16 = st.integers(min_value=0, max_value=2**16 - 1)
ip = st.integers(min_value=1, max_value=2**32 - 1)


@given(u32, st.integers(min_value=1, max_value=32))
def test_hash_32_in_range(value, bits):
    assert 0 <= hash_32(value, bits) < (1 << bits)


@given(u32)
def test_hash_32_deterministic(value):
    assert hash_32(value) == hash_32(value)


@given(ip, ip, st.sampled_from([6, 17]), u16, u16)
def test_flow_hash_stable_and_nonzero(src, dst, proto, sport, dport):
    first = flow_hash(src, dst, proto, sport, dport)
    assert first == flow_hash(src, dst, proto, sport, dport)
    assert first != 0
    assert 0 < first < 2**32


@given(u32, st.integers(min_value=2, max_value=64))
def test_first_choice_in_cpu_set(skb_hash, ifindex):
    cpus = [3, 4, 5, 6, 7]
    assert first_choice_cpu(cpus, skb_hash, ifindex) in cpus
    assert second_choice_cpu(cpus, skb_hash, ifindex) in cpus


@given(u32)
def test_choices_sticky_per_flow_and_device(skb_hash):
    """The no-out-of-order guarantee rests on this: repeated selection
    for the same (flow, device) must return the same core."""
    cpus = [3, 4, 5, 6]
    for ifindex in (3, 5):
        picks = {first_choice_cpu(cpus, skb_hash, ifindex) for _ in range(5)}
        assert len(picks) == 1


@pytest.mark.slow
@given(st.lists(u32, min_size=100, max_size=100, unique=True))
def test_second_choice_escapes_first_most_of_the_time(hashes):
    """Algorithm 1's second choice is useless if it maps back to the
    first core; across many flows it must usually differ."""
    cpus = [3, 4, 5, 6]
    differing = sum(
        1
        for skb_hash in hashes
        if first_choice_cpu(cpus, skb_hash, 5) != second_choice_cpu(cpus, skb_hash, 5)
    )
    assert differing >= 40


@pytest.mark.slow
@given(st.lists(u32, min_size=200, max_size=200, unique=True))
def test_first_choice_spreads_over_cpu_set(hashes):
    cpus = [3, 4, 5, 6]
    picks = {first_choice_cpu(cpus, skb_hash, 3) for skb_hash in hashes}
    assert len(picks) == len(cpus)
