"""Transmit path: the sender half of Figure 1.

The paper evaluates reception ("reception is in general harder ... and
incurs greater overhead", §2), and the figure-reproduction harness keeps
senders as calibrated pacing models for exactly that reason. This module
provides the full transmit substrate for scenarios that want both ends
simulated: container send → (segmentation) → veth/bridge → VXLAN
encapsulation → host IP → qdisc → NIC ring → wire.

Unlike reception, transmission runs almost entirely in the *sender's
process context* on the application's core (``sendmsg`` walks the whole
stack synchronously until the packet rests in the qdisc), which is why
the overlay's TX penalty is extra per-packet CPU on the app core rather
than the serialized-softirq pathology of the receive side — the
asymmetry that makes the paper's RX focus the right one. The qdisc
drains at link speed; when the application out-paces the wire, packets
queue there and overflow is dropped (pfifo semantics).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.hw.cpu import USER
from repro.hw.link import ETHERNET_OVERHEAD_BYTES, Link
from repro.kernel.costs import (
    IP_HEADER,
    TCP_HEADER,
    UDP_HEADER,
    VXLAN_OVERHEAD,
    CostModel,
    fragment_sizes,
)
from repro.kernel.skb import PROTO_TCP, FlowKey, Skb


class Qdisc:
    """A pfifo queueing discipline feeding one link."""

    def __init__(self, sim, link: Link, capacity_packets: int = 1000) -> None:
        self.sim = sim
        self.link = link
        self.capacity = capacity_packets
        self._queue: Deque[Tuple[Skb, Callable[[Skb], Any]]] = deque()
        self._draining = False
        self.enqueued = 0
        self.drops = 0

    def enqueue(self, skb: Skb, deliver: Callable[[Skb], Any]) -> bool:
        if len(self._queue) >= self.capacity:
            self.drops += 1
            return False
        self._queue.append((skb, deliver))
        self.enqueued += 1
        if not self._draining:
            self._draining = True
            self._drain()
        return True

    def _drain(self) -> None:
        if not self._queue:
            self._draining = False
            return
        skb, deliver = self._queue.popleft()
        # The link's serialization is the pacing: hand the frame over and
        # drain the next one when this frame has left the NIC.
        departure = self.link.send(skb.wire_size, lambda: deliver(skb))
        self.sim.schedule_at(
            max(departure - self.link.propagation_us, self.sim.now),
            self._drain,
        )

    @property
    def depth(self) -> int:
        return len(self._queue)


class TxStack:
    """The sender-side stack of one host.

    ``send_message`` charges the whole per-packet transmit walk as USER
    work on the sending application's core (sendmsg context), then
    enqueues the wire frames on the qdisc.
    """

    def __init__(
        self,
        machine,
        link: Link,
        costs: CostModel,
        overlay: bool,
        qdisc_capacity: int = 1000,
    ) -> None:
        self.machine = machine
        self.costs = costs
        self.overlay = overlay
        self.qdisc = Qdisc(machine.sim, link, qdisc_capacity)
        self.messages_sent = 0
        self.frames_sent = 0
        self._seq_by_flow: dict = {}

    # ------------------------------------------------------------------
    # Cost model: per wire packet, charged in sendmsg context
    # ------------------------------------------------------------------
    def _per_packet_cost(self, payload: int) -> float:
        costs = self.costs
        total = 0.0
        # copy_from_user + protocol send path.
        total += costs.copy_to_user.cost(payload) * 0.6  # tx copy is cheaper
        total += costs.ip_rcv.fixed  # ip_output ~ ip_rcv in weight
        if self.overlay:
            # veth_xmit → br_forward → vxlan encap on the way out.
            total += costs.veth_xmit.cost(payload)
            total += costs.br_handle_frame.cost(payload)
            total += costs.vxlan_rcv.cost(payload)  # encap ≈ decap work
            total += costs.udp_rcv_outer.fixed  # outer udp header build
        total += costs.netif_rx.fixed  # qdisc enqueue
        return total

    def send_message(
        self,
        flow: FlowKey,
        message_size: int,
        app_cpu: int,
        deliver: Callable[[Skb], Any],
        msg_id: int = 0,
        meta: Any = None,
    ) -> None:
        """Send one message; ``deliver(skb)`` fires per frame at the far end."""
        payloads = fragment_sizes(
            message_size, self.overlay, tcp=flow.proto == PROTO_TCP
        )
        cost = sum(self._per_packet_cost(p) for p in payloads)
        cpu = self.machine.cpus[app_cpu]
        t_send = self.machine.sim.now
        cpu.submit(
            USER,
            "sendmsg",
            cost,
            self._emit_frames,
            flow,
            payloads,
            message_size,
            msg_id,
            t_send,
            meta,
            deliver,
        )

    def _emit_frames(
        self, flow, payloads, message_size, msg_id, t_send, meta, deliver
    ) -> None:
        l4_header = TCP_HEADER if flow.proto == PROTO_TCP else UDP_HEADER
        seq = self._seq_by_flow.get(flow.flow_id, 0)
        for index, payload in enumerate(payloads):
            inner = payload + IP_HEADER + l4_header
            size = inner + (VXLAN_OVERHEAD if self.overlay else 0)
            skb = Skb(
                flow,
                size=size,
                wire_size=size + ETHERNET_OVERHEAD_BYTES,
                msg_id=msg_id,
                msg_size=message_size,
                frag_index=index,
                frag_count=len(payloads),
                seq=seq,
                t_send=t_send,
                encapsulated=self.overlay,
                meta=meta,
            )
            seq += 1
            if self.qdisc.enqueue(skb, deliver):
                self.frames_sent += 1
        self._seq_by_flow[flow.flow_id] = seq
        self.messages_sent += 1
