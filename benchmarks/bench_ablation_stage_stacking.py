"""Ablation: how many cores should one flow's pipeline spread over?

Footnote 1 of Section 4.1: Falcon can stack multiple devices in one
processing stage to even out load. This ablation varies the FALCON_CPUS
set size for a single stressed flow; with only one Falcon CPU both
overlay stages stack on it (the footnote's configuration), with two or
more they pipeline. It also quantifies the diminishing return beyond the
number of pipeline stages (two Falcon-managed stages per flow).
"""

import pytest
from conftest import QUICK

from repro.core.config import FalconConfig
from repro.metrics.report import Table
from repro.workloads.sockperf import Experiment

DUR = dict(warmup_ms=4 if QUICK else 8, duration_ms=8 if QUICK else 20)
CPU_SETS = ([3], [3, 4], [3, 4, 5, 6], [3, 4, 5, 6, 7, 8, 9, 10])


def test_ablation_stage_stacking(benchmark):
    def run():
        results = {}
        results["Con"] = Experiment(mode="overlay").run_udp_stress(16, **DUR)
        for cpus in CPU_SETS:
            exp = Experiment(mode="overlay", falcon=FalconConfig(cpus=list(cpus)))
            results[len(cpus)] = exp.run_udp_stress(16, **DUR)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["falcon cpus", "kpps", "vs vanilla"],
        title="single-flow UDP stress vs FALCON_CPUS size",
    )
    vanilla = results["Con"].message_rate_pps
    table.add_row("vanilla", vanilla / 1e3, 1.0)
    rates = {}
    for cpus in CPU_SETS:
        rate = results[len(cpus)].message_rate_pps
        rates[len(cpus)] = rate
        table.add_row(len(cpus), rate / 1e3, rate / vanilla)
    print()
    print(table.render())

    # Even one dedicated Falcon core helps (both stages move off the RPS
    # core), two or more pipeline the stages, and returns diminish once
    # every stage has its own core.
    assert rates[1] > vanilla
    assert rates[4] >= rates[1]
    assert rates[8] <= rates[4] * 1.15  # no magic beyond stage count
