"""Tests for the plateau-search methodology and throughput probe."""

import pytest

from repro.metrics.meters import ThroughputProbe
from repro.workloads.sockperf import Experiment

FAST = dict(duration_ms=6.0, warmup_ms=3.0)


class TestThroughputProbe:
    def test_offered_rate_scales(self):
        probe = ThroughputProbe(overdrive_factor=3.0)
        assert probe.offered_rate(100_000.0) == 300_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputProbe(overdrive_factor=0.5)


class TestPlateauSearch:
    def test_small_messages_short_circuit_to_stress(self):
        """Messages that fit one MTU have no reassembly fragility: if the
        sender can't overload the receiver, stress == plateau in one run."""
        exp = Experiment(mode="host")
        plateau = exp.run_udp_plateau(
            64, clients=1, duration_ms=6.0, warmup_ms=3.0, iterations=2
        )
        # A single 64 B client is sender-bound: delivered == offered.
        assert plateau.message_rate_pps == pytest.approx(
            plateau.offered_pps, rel=0.05
        )

    def test_fragmented_plateau_has_low_loss(self):
        """The binary search must land at a rate the stack sustains."""
        exp = Experiment(mode="overlay")
        result = exp.run_udp_plateau(
            9000, clients=2, duration_ms=8.0, warmup_ms=4.0, iterations=5
        )
        assert result.messages_delivered > 0
        assert result.message_rate_pps >= result.offered_pps * 0.9

    def test_fragmented_plateau_beats_naive_stress(self):
        """Saturating clients collapse fragmented-UDP goodput (every lost
        fragment kills a datagram); the plateau search must do better."""
        exp = Experiment(mode="overlay")
        stress = exp.run_udp_stress(9000, clients=3, **FAST)
        plateau = exp.run_udp_plateau(
            9000, clients=3, duration_ms=6.0, warmup_ms=3.0, iterations=5
        )
        assert plateau.message_rate_pps > stress.message_rate_pps
