"""SIM101: reading the wall clock inside simulated code."""

import time


def timestamp_event(event):
    event.stamped_at = time.time()  # expect: SIM101
    return event
