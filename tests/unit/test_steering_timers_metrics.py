"""Unit tests for RPS steering, the load tracker, and metrics plumbing."""

import pytest

from repro.hw.cpu import SOFTIRQ, USER
from repro.hw.topology import Machine
from repro.kernel.costs import CostModel
from repro.kernel.skb import FlowKey, Skb
from repro.kernel.steering import NoSteering, Rps
from repro.kernel.timers import LoadTracker
from repro.metrics.counters import NET_RX, InterruptCounters
from repro.metrics.cpuacct import CpuAccounting, CpuWindow
from repro.metrics.report import Table, format_table
from repro.sim.engine import Simulator


def make_skb(sport=1000):
    return Skb(FlowKey.make(1, 2, sport=sport), size=64)


class TestRps:
    def test_same_flow_same_cpu(self):
        rps = Rps([1, 2, 3])
        skb = make_skb()
        picks = {rps.get_rps_cpu(skb, 0) for _ in range(10)}
        assert len(picks) == 1

    def test_flows_spread(self):
        rps = Rps([1, 2, 3, 4])
        picks = {rps.get_rps_cpu(make_skb(sport=s), 0) for s in range(64)}
        assert len(picks) == 4

    def test_empty_cpus_rejected(self):
        with pytest.raises(ValueError):
            Rps([])

    def test_no_steering_stays(self):
        assert NoSteering().get_rps_cpu(make_skb(), 5) == 5


class TestLoadTracker:
    def test_load_converges_to_busy_fraction(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=2)
        tracker = LoadTracker(machine, CostModel(), tick_us=100.0, alpha=0.5)
        tracker.start()

        # Keep CPU 1 half busy: 50us work every 100us.
        def feed():
            machine.cpus[1].submit(SOFTIRQ, "work", 50.0)
            sim.schedule(100.0, feed)

        feed()
        sim.run(until=3000.0)
        assert machine.cpus[1].load == pytest.approx(0.5, abs=0.1)
        assert machine.cpus[0].load < 0.1

    def test_idle_load_decays(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=1)
        tracker = LoadTracker(machine, CostModel(), tick_us=100.0, alpha=0.5)
        tracker.start()
        machine.cpus[0].load = 1.0
        sim.run(until=2000.0)
        assert machine.cpus[0].load < 0.05

    def test_tick_counts_timer_interrupts(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=1)
        tracker = LoadTracker(machine, CostModel(), tick_us=100.0)
        tracker.start()
        sim.run(until=1000.0)
        assert tracker.ticks == 10
        assert machine.interrupts.total("TIMER") == 10

    def test_invalid_params(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=1)
        with pytest.raises(ValueError):
            LoadTracker(machine, CostModel(), tick_us=0.0)
        with pytest.raises(ValueError):
            LoadTracker(machine, CostModel(), alpha=0.0)

    def test_average_load_over_subset(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=4)
        machine.cpus[2].load = 0.8
        machine.cpus[3].load = 0.4
        assert machine.average_load([2, 3]) == pytest.approx(0.6)
        assert machine.average_load() == pytest.approx(0.3)


class TestCpuAccounting:
    def test_window_utilization(self):
        acct = CpuAccounting()
        acct.charge(0, SOFTIRQ, "before", 100.0)
        window = CpuWindow(acct, start_time=0.0)
        acct.charge(0, SOFTIRQ, "ip_rcv", 300.0)
        acct.charge(0, USER, "copy_to_user", 200.0)
        window.close(1000.0)
        assert window.utilization(0) == pytest.approx(0.5)
        assert window.utilization_context(0, SOFTIRQ) == pytest.approx(0.3)
        assert window.utilization_label(0, "copy_to_user") == pytest.approx(0.2)

    def test_label_shares_sum_to_one(self):
        acct = CpuAccounting()
        window = CpuWindow(acct, start_time=0.0)
        acct.charge(0, SOFTIRQ, "a", 30.0)
        acct.charge(1, SOFTIRQ, "b", 70.0)
        window.close(100.0)
        shares = window.label_shares()
        assert shares["a"] == pytest.approx(0.3)
        assert shares["b"] == pytest.approx(0.7)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_total_by_label_across_cpus(self):
        acct = CpuAccounting()
        acct.charge(0, SOFTIRQ, "fn", 10.0)
        acct.charge(1, SOFTIRQ, "fn", 15.0)
        assert acct.total_by_label()["fn"] == 25.0


class TestInterruptCounters:
    def test_per_cpu_and_total(self):
        counters = InterruptCounters()
        counters.record(NET_RX, 1)
        counters.record(NET_RX, 1)
        counters.record(NET_RX, 2)
        assert counters.total(NET_RX) == 3
        assert counters.on_cpu(NET_RX, 1) == 2
        assert counters.on_cpu(NET_RX, 0) == 0

    def test_diff(self):
        counters = InterruptCounters()
        counters.record(NET_RX, 0)
        snap = counters.snapshot()
        counters.record(NET_RX, 0, amount=4)
        assert counters.diff(snap) == {NET_RX: 4}


class TestReport:
    def test_table_renders_aligned(self):
        table = Table(["name", "value"], title="T")
        table.add_row("a", 1.5)
        table.add_row("bb", 1500.0)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1,500" in text

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_table_helper(self):
        text = format_table(["x"], [[1], [2]])
        assert "x" in text and "1" in text and "2" in text
