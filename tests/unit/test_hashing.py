"""Unit tests for kernel-style hashing — the heart of Falcon's steering."""

from repro.kernel.hashing import GOLDEN_RATIO_32, flow_hash, hash_32


def test_hash_32_matches_kernel_definition():
    value = 12345
    expected = ((value * GOLDEN_RATIO_32) & 0xFFFFFFFF) >> 0
    assert hash_32(value) == expected


def test_hash_32_bits_parameter():
    value = 0xDEADBEEF
    full = hash_32(value, 32)
    assert hash_32(value, 8) == full >> 24
    assert hash_32(value, 16) == full >> 16


def test_hash_32_range():
    for bits in (1, 8, 16, 32):
        for value in (0, 1, 0xFFFFFFFF, 123456789):
            assert 0 <= hash_32(value, bits) < (1 << bits)


def test_hash_32_bits_validation():
    import pytest

    with pytest.raises(ValueError):
        hash_32(1, 0)
    with pytest.raises(ValueError):
        hash_32(1, 33)


def test_flow_hash_deterministic():
    assert flow_hash(1, 2, 17, 1000, 5001) == flow_hash(1, 2, 17, 1000, 5001)


def test_flow_hash_sensitive_to_every_field():
    base = flow_hash(1, 2, 17, 1000, 5001)
    assert flow_hash(9, 2, 17, 1000, 5001) != base
    assert flow_hash(1, 9, 17, 1000, 5001) != base
    assert flow_hash(1, 2, 6, 1000, 5001) != base
    assert flow_hash(1, 2, 17, 1001, 5001) != base
    assert flow_hash(1, 2, 17, 1000, 5002) != base


def test_flow_hash_never_zero():
    # The kernel reserves hash 0 for "not computed".
    for sport in range(256):
        assert flow_hash(1, 2, 17, sport, 5001) != 0


def test_device_mixing_separates_stages():
    """The core property Falcon relies on: same flow + different ifindex
    must (almost always) produce different CPU choices."""
    fhash = flow_hash(10, 20, 17, 4242, 5001)
    buckets = {hash_32(fhash + ifindex) % 97 for ifindex in range(2, 34)}
    # hash_32 is multiplicative, so consecutive ifindexes form a stride
    # pattern rather than a uniform spray — but stages must still spread
    # well beyond a single bucket.
    assert len(buckets) >= 10


def test_flow_hash_distribution_over_cpu_buckets():
    """RPS-style bucketing of many flows should be roughly uniform."""
    counts = [0] * 8
    total = 4096
    for sport in range(total):
        counts[flow_hash(1, 2, 17, sport, 5001) % 8] += 1
    expected = total / 8
    for count in counts:
        assert 0.7 * expected < count < 1.3 * expected
