"""FLOW401: stage calls that move the packet backwards in the pipeline."""


class BridgeReplay:
    def replay(self, stack, skb):
        stack.br_handle_frame(skb)  # container-side bridge: rank 5
        stack.vxlan_rcv(skb)  # expect: FLOW401


def reprocess(stack, skb):
    stack.udp_rcv(skb)  # outer UDP receive: rank 4
    stack.napi_gro_receive(skb)  # expect: FLOW401
