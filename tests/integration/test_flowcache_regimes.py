"""The four-datapath-regime contract on the ramp workload.

The tentpole claims, asserted end to end on the same warm-then-stress
multiflow workload `fig21_flowcache` measures:

* a warm cache beats vanilla outright (throughput up, service time
  down) — the fast path really skips the slow device chain;
* composing the cache with Falcon is at least as good as either alone;
* the ordering gate holds: the cache regimes deliver with *zero*
  reordered messages (Falcon alone is allowed to reorder across its
  rebalancing decisions; the cache is not).
"""

import pytest

from repro.experiments.fig21_flowcache import run_ramp_regime

WARMUP_MS = 3.0
DURATION_MS = 6.0
SEED = 3


@pytest.fixture(scope="module")
def regimes():
    out = {}
    for label, use_falcon, use_cache in (
        ("vanilla", False, False),
        ("falcon", True, False),
        ("oncache", False, True),
        ("oncache_falcon", True, True),
    ):
        out[label] = run_ramp_regime(
            use_falcon,
            use_cache,
            warmup_ms=WARMUP_MS,
            duration_ms=DURATION_MS,
            seed=SEED,
        )
    return out


def test_warm_cache_beats_vanilla(regimes):
    vanilla, oncache = regimes["vanilla"], regimes["oncache"]
    assert oncache.message_rate_pps > vanilla.message_rate_pps * 1.2
    assert oncache.avg_latency_us < vanilla.avg_latency_us
    assert oncache.cache_hit_rate > 0.9
    assert oncache.fastpath_deliveries > 0


def test_composition_is_at_least_each_alone(regimes):
    both = regimes["oncache_falcon"]
    assert both.message_rate_pps >= regimes["falcon"].message_rate_pps
    assert both.message_rate_pps >= regimes["oncache"].message_rate_pps
    assert both.cache_hit_rate > 0.9


def test_cache_regimes_never_reorder(regimes):
    assert regimes["oncache"].reordered_messages == 0
    assert regimes["oncache_falcon"].reordered_messages == 0
    # Sanity: vanilla is in-order by construction too.
    assert regimes["vanilla"].reordered_messages == 0


def test_vanilla_and_falcon_never_touch_the_cache(regimes):
    for label in ("vanilla", "falcon"):
        assert regimes[label].cache_hit_rate == 0.0
        assert regimes[label].fastpath_deliveries == 0
