"""Tests for the ``simflow`` dataflow/typestate pass.

Mirrors the simlint fixture discipline: every seeded violation in
``tests/fixtures/flow/`` carries a trailing ``# expect: RULE`` marker and
the tests demand exact (file, line, rule) agreement — no extra findings,
none missing. The clean twins and the whole in-tree source must produce
zero findings, which is the pass's false-positive budget.
"""

import json
import re
from pathlib import Path

import pytest

from repro.analysis.flow import (
    FLOW_RULE_IDS,
    FLOW_RULES,
    flow_paths,
    flow_rule_by_id,
    stage_order_spec,
)
from repro.analysis.flow.stagespec import (
    ALLOC,
    DROP_OPS,
    ENQUEUE_OPS,
    FREE,
    HARDIRQ,
    SOCKET,
)
from repro.analysis.lint.report import render_json, render_text
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "flow"

MARKER_RE = re.compile(r"#\s*expect:\s*([A-Z0-9, ]+)")


def expected_fixture_findings():
    """(file name, line, rule) tuples derived from ``# expect:`` markers."""
    expected = set()
    for path in sorted(FIXTURES.glob("*.py")):
        for lineno, text in enumerate(
            path.read_text().splitlines(), start=1
        ):
            match = MARKER_RE.search(text)
            if match is None:
                continue
            for rule in match.group(1).replace(" ", "").split(","):
                if rule:
                    expected.add((path.name, lineno, rule))
    return expected


def actual_findings(paths, **kwargs):
    result = flow_paths([str(p) for p in paths], **kwargs)
    return result, {
        (Path(f.path).name, f.line, f.rule) for f in result.findings
    }


class TestFixtureCorpus:
    def test_exact_findings(self):
        result, actual = actual_findings([FIXTURES])
        assert actual == expected_fixture_findings()
        assert not result.ok

    def test_every_flow_rule_is_exercised(self):
        rules_seen = {rule for _, _, rule in expected_fixture_findings()}
        for rule_id in FLOW_RULE_IDS:
            assert rule_id in rules_seen, f"no fixture exercises {rule_id}"

    def test_clean_twins_stay_clean(self):
        clean = sorted(FIXTURES.glob("*_clean.py"))
        assert clean, "corpus is missing its clean twins"
        result, actual = actual_findings(clean)
        assert result.ok, render_text(result)
        assert actual == set()

    def test_findings_are_deterministic(self):
        first, _ = actual_findings([FIXTURES])
        second, _ = actual_findings([FIXTURES])
        assert first.findings == second.findings


class TestSourceTreeIsClean:
    """Zero in-tree findings is the false-positive budget of the pass."""

    def test_src_flows_clean(self):
        result, _ = actual_findings([REPO_ROOT / "src"])
        assert result.ok, render_text(result)
        assert result.files_checked > 50

    def test_tests_tree_flows_clean(self):
        # Unit tests manipulate skbs and microsecond timestamps freely;
        # the must-analysis design has to keep quiet there too.
        result, _ = actual_findings([REPO_ROOT / "tests" / "unit"])
        assert result.ok, render_text(result)


class TestRuleCatalogue:
    def test_registry_matches_rules(self):
        assert tuple(r.id for r in FLOW_RULES) == FLOW_RULE_IDS

    def test_rule_by_id(self):
        for rule in FLOW_RULES:
            assert flow_rule_by_id(rule.id) is rule
            assert rule.title and rule.rationale
        assert flow_rule_by_id("BOGUS99") is None

    def test_single_rule_runs_alone(self):
        result, actual = actual_findings([FIXTURES], rule_ids=["FLOW403"])
        rules = {rule for _, _, rule in actual}
        assert rules <= {"FLOW403", "LINT000", "LINT001"}
        assert ("flow403_bad.py", 6, "FLOW403") in actual
        assert not any(rule == "TIME501" for _, _, rule in actual)

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="BOGUS99"):
            flow_paths([str(FIXTURES)], rule_ids=["BOGUS99"])


class TestPragmaSuppression:
    """Flow findings honour the shared simlint pragma machinery."""

    def test_disable_pragma_suppresses_flow_finding(self, tmp_path):
        src = (FIXTURES / "flow403_bad.py").read_text()
        patched = src.replace(
            "# expect: FLOW403", "# simlint: disable=FLOW403"
        )
        assert patched != src
        copy = tmp_path / "suppressed.py"
        copy.write_text(patched)
        result, actual = actual_findings([copy])
        assert result.ok, render_text(result)
        assert len(result.suppressed) == 2
        assert {f.rule for f in result.suppressed} == {"FLOW403"}

    def test_flow_ids_are_known_to_lint_meta_rules(self, tmp_path):
        # LINT001 (unknown rule id in pragma) must not fire for flow ids
        # used from the lint pass, and vice versa.
        from repro.analysis.lint import lint_paths

        copy = tmp_path / "cross.py"
        copy.write_text("x = 1  # simlint: disable=FLOW402\n")
        result = lint_paths([str(copy)])
        assert result.ok, render_text(result)


class TestDerivedStageSpec:
    """The stage-order spec is derived from live Stage/Transition objects,
    never hand-coded — these tests pin the derived shape to the shipped
    stack topology."""

    def test_ranks_follow_pipeline_order(self):
        spec = stage_order_spec()
        rank = spec.stage_rank
        assert rank[ALLOC] == 0
        assert rank[ALLOC] < rank[HARDIRQ] < rank["pnic"]
        assert rank["pnic"] < rank["hoststack_outer"] < rank["vxlan"]
        assert rank["vxlan"] < rank["container"] < rank[SOCKET] < rank[FREE]
        # Host mode delivers straight from its host stack.
        assert rank["hoststack"] < rank[SOCKET]
        # The fast-path stage sits between the driver and the container
        # tail; the cache-hit skip is forward motion, never a violation.
        assert rank["pnic"] < rank["fastpath"] < rank["container"]

    def test_edges_come_from_live_transitions(self):
        spec = stage_order_spec()
        # EnqueueTransition hops present in every shipped config.
        assert ("hoststack_outer", "vxlan") in spec.edges
        assert ("vxlan", "container") in spec.edges
        # SocketDeliver contributes the terminal edges.
        assert ("container", SOCKET) in spec.edges
        assert ("hoststack", SOCKET) in spec.edges
        # The flow-cache fork: both sides of FastPathTransition appear.
        assert ("pnic", "fastpath") in spec.edges
        assert ("pnic_gro", "fastpath") in spec.edges
        assert ("fastpath", "container") in spec.edges
        assert ("pnic", "hoststack_outer") in spec.edges  # the miss edge
        # Synthetic envelope.
        assert (ALLOC, HARDIRQ) in spec.edges
        assert (SOCKET, FREE) in spec.edges

    def test_ops_are_harvested_from_step_objects(self):
        spec = stage_order_spec()
        # Step names collected from the live stacks, with the rank of
        # every stage that contains them.
        assert "vxlan_rcv" in spec.ops
        assert spec.ops["vxlan_rcv"].ranks == {spec.stage_rank["hoststack_outer"]}
        assert "br_handle_frame" in spec.ops
        assert spec.ops["br_handle_frame"].ranks == {spec.stage_rank["vxlan"]}
        # netif_rx is reused by several stages — it carries all their ranks.
        assert len(spec.ops["netif_rx"].ranks) >= 2
        # The enqueue/drop primitives are positioned, not hand-ranked.
        for name in ENQUEUE_OPS:
            assert spec.ops[name].ranks, name
        for name in DROP_OPS:
            assert spec.ops[name].ranks == {spec.freed_rank}

    def test_spec_is_cached(self):
        assert stage_order_spec() is stage_order_spec()

    def test_describe_is_json_ready(self):
        payload = stage_order_spec().describe()
        json.dumps(payload)  # must not raise
        assert "stages" in payload and "edges" in payload and "ops" in payload


class TestInterproceduralSummaries:
    """FLOW402/403 see through helper calls via function summaries."""

    def test_helper_that_delivers_poisons_caller(self):
        result, actual = actual_findings([FIXTURES / "flow402_bad.py"])
        # Line 17 re-enqueues after calling a helper that delivered.
        assert ("flow402_bad.py", 17, "FLOW402") in actual

    def test_branch_join_is_must_not_may(self, tmp_path):
        # Freed on only ONE branch -> joined state is {freed, rank} ->
        # a must-analysis stays quiet. This is the zero-false-positive
        # guarantee on real code with conditional frees.
        copy = tmp_path / "maybe.py"
        copy.write_text(
            "def maybe(skb, stack, flag):\n"
            "    if flag:\n"
            "        stack.consume_skb(skb)\n"
            "    else:\n"
            "        stack.ip_rcv(skb)\n"
            "    stack.l4_rcv(skb)\n"
        )
        result, actual = actual_findings([copy])
        assert result.ok, render_text(result)

    def test_both_branches_freed_fires(self, tmp_path):
        copy = tmp_path / "both.py"
        copy.write_text(
            "def both(skb, stack, flag):\n"
            "    if flag:\n"
            "        stack.consume_skb(skb)\n"
            "    else:\n"
            "        stack.free_skb(skb)\n"
            "    stack.l4_rcv(skb)\n"
        )
        _, actual = actual_findings([copy])
        assert ("both.py", 6, "FLOW403") in actual


class TestCli:
    def test_flow_src_exits_zero(self, capsys):
        assert main(["flow", str(REPO_ROOT / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_flow_fixtures_exits_one_with_json(self, capsys):
        code = main(["flow", str(FIXTURES), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts_by_rule"]["FLOW401"] == 3

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["flow", str(FIXTURES), "--rule", "BOGUS99"])
        assert code == 2
        assert "BOGUS99" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["flow", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in FLOW_RULE_IDS:
            assert rule_id in out

    def test_dump_spec(self, capsys):
        assert main(["flow", "--dump-spec"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stages"]["alloc"] == 0
        assert "alloc->hardirq" in payload["edges"]

    def test_json_reporter_includes_suppressed(self, tmp_path, capsys):
        copy = tmp_path / "supp.py"
        copy.write_text(
            "def f(skb, stack):\n"
            "    stack.consume_skb(skb)\n"
            "    stack.netif_rx(skb)  # simlint: disable=FLOW403\n"
        )
        assert main(["flow", str(copy), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["suppressed"] == [
            {"path": str(copy), "line": 3, "rule": "FLOW403"}
        ]
