"""Distributed key-value store for overlay address resolution.

Overlay networks keep the mapping from a container's private IP to the
public IP of the host it runs on in a distributed KV store (Section 2.1
— e.g. etcd or Docker's gossip-backed store). The sender consults it
during encapsulation. Lookups are cached; a cold lookup pays a control-
plane round trip, which is why first packets of a flow are slower in
real deployments (modelled, but negligible for steady-state results).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.errors import TopologyError


class KvStore:
    """The overlay control-plane store: private IP → host IP."""

    def __init__(self, lookup_latency_us: float = 50.0) -> None:
        self._mapping: Dict[int, int] = {}
        self._cache: Dict[int, int] = {}
        self.lookup_latency_us = lookup_latency_us
        self.lookups = 0
        self.cache_hits = 0

    def publish(self, container_ip: int, host_ip: int) -> None:
        """Register (or move) a container's placement."""
        self._mapping[container_ip] = host_ip
        # Invalidate any stale cached entry.
        self._cache.pop(container_ip, None)

    def withdraw(self, container_ip: int) -> None:
        self._mapping.pop(container_ip, None)
        self._cache.pop(container_ip, None)

    def resolve(self, container_ip: int) -> int:
        """Resolve a private IP, using the local cache when possible."""
        self.lookups += 1
        cached = self._cache.get(container_ip)
        if cached is not None:
            self.cache_hits += 1
            return cached
        host_ip = self._mapping.get(container_ip)
        if host_ip is None:
            raise TopologyError(f"no host mapping for container IP {container_ip}")
        self._cache[container_ip] = host_ip
        return host_ip

    def is_cached(self, container_ip: int) -> bool:
        return container_ip in self._cache

    def __len__(self) -> int:
        return len(self._mapping)
