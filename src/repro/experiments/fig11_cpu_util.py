"""Figure 11 — per-core CPU utilization of a single UDP flow.

16 B single-flow UDP stress on the 100G link. The paper's reading:

* vanilla Linux can use at most three cores — hardirq+first softirq
  (core 0), the rest of the softirqs (core 1), and user-space copy
  (core 2); in the overlay, core 1 is overloaded by three stages;
* Falcon recruits two additional cores for the extra softirq stages and
  becomes bottlenecked, like the host network, on the user-space copy.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations, standard_modes
from repro.metrics.report import Table
from repro.workloads.sockperf import Experiment

CORES_SHOWN = 8


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 11", "CPU utilization of a single 16 B UDP flow")
    dur = durations(quick, 20.0, 10.0)
    table = Table(
        ["case", "cpu", "total %", "softirq %", "user %"],
        title="per-core utilization under single-flow UDP stress (100G)",
    )
    series = {}
    for label, kwargs in standard_modes():
        result = Experiment(**kwargs).run_udp_stress(16, **dur)
        used = []
        for cpu in range(CORES_SHOWN):
            util = result.cpu_util[cpu]
            if util < 0.01:
                continue
            softirq = result.cpu_softirq[cpu]
            user = max(util - softirq, 0.0)
            table.add_row(label, cpu, util * 100, softirq * 100, user * 100)
            used.append(cpu)
        series[label] = {
            "rate": result.message_rate_pps,
            "cores_used": used,
            "util": result.cpu_util[:CORES_SHOWN],
        }
    out.tables.append(table)
    out.series["cases"] = series
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
