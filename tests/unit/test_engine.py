"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 5.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.schedule(1.0, order.append, name)
    sim.run()
    assert order == list("abcde")


def test_schedule_from_callback():
    sim = Simulator()
    seen = []

    def chain(depth):
        seen.append(sim.now)
        if depth:
            sim.schedule(2.0, chain, depth - 1)

    sim.schedule(1.0, chain, 3)
    sim.run()
    assert seen == [1.0, 3.0, 5.0, 7.0]


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    hits = []
    sim.schedule(10.0, hits.append, "late")
    sim.run(until=4.0)
    assert hits == []
    assert sim.now == 4.0
    sim.run()
    assert hits == ["late"]


def test_event_exactly_at_until_is_processed():
    sim = Simulator()
    hits = []
    sim.schedule(4.0, hits.append, "edge")
    sim.run(until=4.0)
    assert hits == ["edge"]


def test_cancel_skips_event():
    sim = Simulator()
    hits = []
    event = sim.schedule(1.0, hits.append, "x")
    sim.cancel(event)
    sim.run()
    assert hits == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_halt_stops_run():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, "a")
    sim.schedule(2.0, sim.halt)
    sim.schedule(3.0, hits.append, "b")
    sim.run()
    assert hits == ["a"]
    sim.resume()
    sim.run()
    assert hits == ["a", "b"]


def test_step_processes_single_event():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, 1)
    sim.schedule(2.0, hits.append, 2)
    assert sim.step()
    assert hits == [1]
    assert sim.step()
    assert not sim.step()


def test_max_events_bound():
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.schedule(float(i + 1), hits.append, i)
    sim.run(max_events=3)
    assert hits == [0, 1, 2]


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_and_peek():
    sim = Simulator()
    assert sim.peek_time() is None
    event = sim.schedule(7.0, lambda: None)
    assert sim.pending() == 1
    assert sim.peek_time() == 7.0
    sim.cancel(event)
    assert sim.peek_time() is None
