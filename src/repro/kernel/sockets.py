"""Socket layer and application readers.

The last hop of the receive pipeline: a stage's ``SocketDeliver``
transition enqueues the packet on the destination socket's receive queue;
an application thread (USER context on its own core) then performs the
socket read — the ``copy_to_user`` work that Figure 11 shows bottlenecking
core 2 for both the host network and Falcon.

Message completion: a *message* is delivered to the application when all
its bytes have been read (GRO/defrag may hand the socket one merged skb
or several partial ones). The completion callback receives the message's
end-to-end latency, which is what the latency figures report.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.hw.cpu import USER
from repro.kernel.costs import CostModel
from repro.kernel.skb import FlowKey, Skb
from repro.sim.engine import Simulator

#: Called when a full message has been read by the application:
#: ``on_message(socket, skb, latency_us)``.
MessageCallback = Callable[["Socket", Skb, float], Any]


class Socket:
    """A receive socket with a bounded queue and one application reader."""

    def __init__(
        self,
        sim: Simulator,
        app_cpu: int,
        costs: CostModel,
        on_message: Optional[MessageCallback] = None,
        rmem_packets: int = 4096,
        name: str = "sock",
    ) -> None:
        self.sim = sim
        self.app_cpu_index = app_cpu
        self.costs = costs
        self.on_message = on_message
        self.rmem_packets = rmem_packets
        self.name = name
        self.rx_queue: Deque[Skb] = deque()
        self.drops = 0
        self.delivered_messages = 0
        self.delivered_bytes = 0
        self.reordered_messages = 0
        #: Set by the stack when the socket is registered.
        self.machine = None
        # Partial-message byte accounting: (flow_id, msg_id) -> bytes seen.
        self._partial: Dict[Tuple[int, int], int] = {}
        # Highest completed msg_id per flow, for reorder detection.
        self._last_msg: Dict[int, int] = {}
        self._reader_busy = False
        self._reader_idle_since = 0.0

    # ------------------------------------------------------------------
    # Kernel side: enqueue from softirq context
    # ------------------------------------------------------------------
    def enqueue(self, skb: Skb) -> bool:
        """Add a packet to the receive queue (softirq side)."""
        if len(self.rx_queue) >= self.rmem_packets:
            self.drops += 1
            return False
        self.rx_queue.append(skb)
        self._maybe_wake_reader()
        return True

    # ------------------------------------------------------------------
    # User side: the application reader loop
    # ------------------------------------------------------------------
    def _maybe_wake_reader(self) -> None:
        if self._reader_busy or not self.rx_queue:
            return
        self._reader_busy = True
        # Waking an idle (blocked-in-recv) thread costs a context switch.
        wakeup = self.costs.app_wakeup_us
        self.sim.post(wakeup, self._read_one)

    def _read_one(self) -> None:
        if not self.rx_queue:
            self._reader_busy = False
            return
        skb = self.rx_queue.popleft()
        cost = self.costs.copy_to_user.cost(skb.size)
        # Copying from a buffer last written by another core costs extra
        # (the locality RFS buys back by steering to the app's core).
        cost *= self.machine.locality.multiplier(skb.last_cpu, self.app_cpu_index)
        cpu = self.machine.cpus[self.app_cpu_index]
        cpu.submit(USER, "copy_to_user", cost, self._read_done, skb)

    def _read_done(self, skb: Skb) -> None:
        self._account(skb)
        # Keep draining; the reader only blocks when the queue is empty.
        if self.rx_queue:
            self._read_one()
        else:
            self._reader_busy = False

    def _account(self, skb: Skb) -> None:
        key = (skb.flow.flow_id, skb.msg_id)
        seen = self._partial.get(key, 0) + skb.size
        if seen < skb.msg_size:
            self._partial[key] = seen
            return
        self._partial.pop(key, None)
        self.delivered_messages += 1
        self.delivered_bytes += skb.msg_size
        last = self._last_msg.get(skb.flow.flow_id, -1)
        if skb.msg_id < last:
            self.reordered_messages += 1
        else:
            self._last_msg[skb.flow.flow_id] = skb.msg_id
        if self.on_message is not None:
            latency = self.sim.now - skb.t_send
            self.on_message(self, skb, latency)

    @property
    def queue_depth(self) -> int:
        return len(self.rx_queue)


class SocketTable:
    """Flow → socket routing for one host's stack."""

    def __init__(self) -> None:
        self._by_flow: Dict[int, Socket] = {}
        self.unroutable = 0

    def bind(self, flow: FlowKey, socket: Socket) -> None:
        self._by_flow[flow.flow_id] = socket

    def lookup(self, flow: FlowKey) -> Optional[Socket]:
        return self._by_flow.get(flow.flow_id)

    def sockets(self) -> set:
        return set(self._by_flow.values())
