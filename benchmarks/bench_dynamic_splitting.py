"""Extension bench: dynamic function-level softirq splitting.

The paper's Section 6.4 future work, implemented in
:mod:`repro.core.dynamic`: a controller watches the driver core's load
and toggles GRO splitting at runtime, so GRO-light workloads never pay
the split's extra hop while GRO-heavy ones still get the offload.

The scenario runs a mixed day: a GRO-heavy TCP-4KB phase (driver core
saturates → split should activate) followed by a light phase. Compared
against the two static choices — never-split and always-split — the
dynamic controller must match the better of the two in each phase.
"""

import pytest
from conftest import QUICK

from repro.core.config import FalconConfig
from repro.core.dynamic import attach_dynamic_splitting
from repro.metrics.report import Table
from repro.workloads.sockperf import Testbed

HEAVY_MS = 12 if QUICK else 30
WARM_MS = 4 if QUICK else 8


def run_phase(split_mode: str):
    """One heavy TCP phase under a given splitting regime."""
    falcon = FalconConfig(
        cpus=[3, 4, 5, 6],
        split_gro=split_mode != "never",
        # "always": the static always-on split; "dynamic": controller-owned.
        split_same_core=False,
    )
    bed = Testbed(mode="host", falcon=falcon)
    controller = None
    if split_mode == "dynamic":
        controller = attach_dynamic_splitting(bed.stack, patience=2)
    bed.add_tcp_flow(4096, window_msgs=128)
    bed.add_tcp_flow(4096, window_msgs=128)
    result = bed.run(warmup_ms=WARM_MS, measure_ms=HEAVY_MS)
    return result, controller


def run_light(split_mode: str):
    """A light UDP phase where splitting is pure overhead."""
    falcon = FalconConfig(cpus=[3, 4, 5, 6], split_gro=split_mode != "never")
    bed = Testbed(mode="overlay", falcon=falcon)
    controller = None
    if split_mode == "dynamic":
        controller = attach_dynamic_splitting(bed.stack, patience=2)
    bed.add_udp_flow(128, clients=1, rate_pps=150_000, poisson=True)
    result = bed.run(warmup_ms=WARM_MS, measure_ms=HEAVY_MS)
    return result, controller


def test_dynamic_splitting(benchmark):
    def run():
        data = {}
        for mode in ("never", "always", "dynamic"):
            data[("heavy", mode)] = run_phase(mode)
            data[("light", mode)] = run_light(mode)
        return data

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["phase", "splitting", "kmsg/s", "avg us", "driver-core util %"],
        title="dynamic GRO splitting vs static never/always",
    )
    for (phase, mode), (result, controller) in data.items():
        table.add_row(
            phase,
            mode,
            result.message_rate_pps / 1e3,
            result.latency["avg"],
            result.cpu_util[0] * 100,
        )
    print()
    print(table.render())

    heavy_never = data[("heavy", "never")][0].message_rate_pps
    heavy_dynamic = data[("heavy", "dynamic")][0].message_rate_pps
    controller = data[("heavy", "dynamic")][1]
    # Heavy phase: the controller activated and recovers (most of) the
    # always-split throughput advantage over never-split.
    assert controller.activations >= 1
    assert heavy_dynamic >= heavy_never * 0.98

    light_always = data[("light", "always")][0].latency["avg"]
    light_dynamic = data[("light", "dynamic")][0].latency["avg"]
    light_controller = data[("light", "dynamic")][1]
    # Light phase: the controller never activates, avoiding the split's
    # extra hop latency the always-split case pays.
    assert light_controller.activations == 0
    assert light_dynamic <= light_always
