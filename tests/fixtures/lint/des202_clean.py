"""Clean twin of des202_bad: waiting is a scheduled re-check event."""


def wait_for_backlog_drain(sim, poll_interval_us, napi, done):
    if napi.backlog:
        sim.schedule(poll_interval_us, wait_for_backlog_drain, sim,
                     poll_interval_us, napi, done)
    else:
        done()
