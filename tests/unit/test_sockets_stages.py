"""Unit tests for sockets, app readers and the stage machinery."""

import pytest

from repro.hw.topology import Machine
from repro.kernel.costs import CostModel, FuncCost
from repro.kernel.skb import PROTO_TCP, FlowKey, Skb
from repro.kernel.sockets import Socket, SocketTable
from repro.kernel.stages import (
    EnqueueTransition,
    Stage,
    Step,
    fixed_cost,
)
from repro.sim.engine import Simulator


def make_socket(on_message=None, rmem=4, app_cpu=0):
    sim = Simulator()
    machine = Machine(sim, num_cpus=2)
    sock = Socket(sim, app_cpu, CostModel(), on_message=on_message, rmem_packets=rmem)
    sock.machine = machine
    return sim, machine, sock


def make_skb(flow=None, size=100, msg_id=0, msg_size=None):
    flow = flow or FlowKey.make(1, 2)
    return Skb(flow, size=size, msg_id=msg_id, msg_size=msg_size or size)


class TestSocket:
    def test_enqueue_and_deliver(self):
        got = []
        sim, machine, sock = make_socket(
            on_message=lambda s, skb, lat: got.append((skb, lat))
        )
        skb = make_skb()
        skb.t_send = 0.0
        assert sock.enqueue(skb)
        sim.run()
        assert len(got) == 1
        assert got[0][1] == pytest.approx(sim.now)
        assert sock.delivered_messages == 1
        assert sock.delivered_bytes == 100

    def test_rmem_overflow_drops(self):
        sim, machine, sock = make_socket(rmem=2)
        for i in range(5):
            sock.enqueue(make_skb(msg_id=i))
        assert sock.drops >= 1

    def test_reader_charges_user_context(self):
        sim, machine, sock = make_socket()
        sock.enqueue(make_skb(size=1000))
        sim.run()
        expected = CostModel().copy_to_user.cost(1000)
        assert machine.acct.busy_us_label(0, "copy_to_user") == pytest.approx(expected)

    def test_partial_message_completion_by_bytes(self):
        """TCP partial skbs complete the message when bytes add up."""
        got = []
        sim, machine, sock = make_socket(
            on_message=lambda s, skb, lat: got.append(skb.msg_id)
        )
        flow = FlowKey.make(1, 2, PROTO_TCP)
        part1 = Skb(flow, size=2000, msg_id=5, msg_size=4096)
        part2 = Skb(flow, size=2096, msg_id=5, msg_size=4096)
        sock.enqueue(part1)
        sim.run()
        assert got == []
        sock.enqueue(part2)
        sim.run()
        assert got == [5]
        assert sock.delivered_messages == 1

    def test_reorder_detection(self):
        sim, machine, sock = make_socket()
        flow = FlowKey.make(1, 2)
        sock.enqueue(make_skb(flow=flow, msg_id=3))
        sim.run()
        sock.enqueue(make_skb(flow=flow, msg_id=1))
        sim.run()
        assert sock.reordered_messages == 1
        assert sock.delivered_messages == 2

    def test_in_order_no_false_positive(self):
        sim, machine, sock = make_socket(rmem=64)
        flow = FlowKey.make(1, 2)
        for i in range(10):
            sock.enqueue(make_skb(flow=flow, msg_id=i))
        sim.run()
        assert sock.reordered_messages == 0

    def test_wakeup_latency_only_when_idle(self):
        sim, machine, sock = make_socket()
        sock.enqueue(make_skb(msg_id=0))
        sock.enqueue(make_skb(msg_id=1))
        sim.run()
        first_batch = sim.now
        # One wakeup plus two reads (the second read needs no wakeup).
        expected = CostModel().app_wakeup_us + 2 * CostModel().copy_to_user.cost(100)
        assert first_batch == pytest.approx(expected)


class TestSocketTable:
    def test_bind_and_lookup(self):
        table = SocketTable()
        sim, machine, sock = make_socket()
        flow = FlowKey.make(1, 2)
        table.bind(flow, sock)
        assert table.lookup(flow) is sock
        assert table.lookup(FlowKey.make(3, 4)) is None

    def test_multiple_flows_one_socket(self):
        table = SocketTable()
        _sim, _machine, sock = make_socket()
        a, b = FlowKey.make(1, 2), FlowKey.make(3, 4)
        table.bind(a, sock)
        table.bind(b, sock)
        assert table.sockets() == {sock}


class TestStage:
    def test_run_item_charges_each_step(self):
        stage = Stage(
            "s",
            2,
            [
                Step("f1", fixed_cost(FuncCost(1.0))),
                Step("f2", fixed_cost(FuncCost(2.0, 0.01))),
            ],
            exit=None,
        )
        skb = make_skb(size=100)
        charges, out = stage.run_item(skb, cpu_index=0, locality_multiplier=1.0)
        assert out is skb
        assert charges == [("f1", 1.0), ("f2", 3.0)]
        assert skb.dev_ifindex == 2

    def test_locality_multiplier_scales_charges(self):
        stage = Stage("s", 2, [Step("f", fixed_cost(FuncCost(2.0)))], exit=None)
        charges, _ = stage.run_item(make_skb(), 0, locality_multiplier=1.5)
        assert charges == [("f", 3.0)]

    def test_zero_cost_steps_not_charged(self):
        stage = Stage("s", 2, [Step("free", lambda skb: 0.0)], exit=None)
        charges, _ = stage.run_item(make_skb(), 0, 1.0)
        assert charges == []

    def test_effect_can_consume(self):
        stage = Stage(
            "s",
            2,
            [
                Step("f1", lambda skb: 1.0, effect=lambda skb, cpu: None),
                Step("f2", lambda skb: 5.0),
            ],
            exit=None,
        )
        charges, out = stage.run_item(make_skb(), 0, 1.0)
        assert out is None
        assert charges == [("f1", 1.0)]  # f2 never ran

    def test_effect_can_replace(self):
        replacement = make_skb(size=999)

        stage = Stage(
            "s",
            2,
            [
                Step("merge", lambda skb: 1.0, effect=lambda skb, cpu: replacement),
                Step("after", lambda skb: 0.001 * skb.size),
            ],
            exit=None,
        )
        charges, out = stage.run_item(make_skb(size=1), 0, 1.0)
        assert out is replacement
        assert charges[1] == ("after", pytest.approx(0.999))

    def test_enqueue_transition_uses_selector(self):
        routed = []

        class FakeStack:
            def enqueue_backlog(self, target, skb, stage, from_cpu):
                routed.append((target, from_cpu))

        next_stage = Stage("next", 3, [], exit=None)
        transition = EnqueueTransition(next_stage, lambda skb, cpu: 7)
        transition.route(make_skb(), cpu_index=1, stack=FakeStack())
        assert routed == [(7, 1)]
