"""Property tests for the sharded engine's sync and merge discipline.

Two families:

* **Merge order** — ``merge_records`` imposes a total, deterministic
  ``(time, src, seq)`` order: permutation-invariant, duplicate-free by
  key construction, stable under re-merge.
* **Barrier safety** — driving a :class:`ShardCoordinator` over randomly
  generated toy shard programs, no record is ever delivered to its
  destination before the barrier of the window that produced it, and the
  whole exchange is partition-invariant: K shards deliver exactly what
  one shard delivers, in the same order.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.shard.coordinator import InlineShardHandle, ShardCoordinator
from repro.sim.shard.records import CrossShardEvent, merge_records

# ----------------------------------------------------------------------
# merge_records
# ----------------------------------------------------------------------
record_strategy = st.builds(
    CrossShardEvent,
    time=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    src=st.integers(min_value=0, max_value=7),
    seq=st.integers(min_value=0, max_value=10_000),
    kind=st.sampled_from(["skb", "credit"]),
    dst=st.integers(min_value=0, max_value=7),
    payload=st.tuples(st.integers(min_value=0, max_value=99)),
)


@given(st.lists(record_strategy, max_size=50), st.randoms())
def test_merge_is_permutation_invariant(records, rng):
    """Any arrival order of the same records merges identically."""
    shuffled = list(records)
    rng.shuffle(shuffled)
    assert [r.sort_key for r in merge_records(records)] == [
        r.sort_key for r in merge_records(shuffled)
    ]


@given(st.lists(record_strategy, max_size=50))
def test_merge_orders_by_time_src_seq(records):
    merged = merge_records(records)
    keys = [r.sort_key for r in merged]
    assert keys == sorted(keys)
    assert len(merged) == len(records)


@given(st.lists(record_strategy, max_size=50))
def test_merge_is_idempotent(records):
    once = merge_records(records)
    assert [r.sort_key for r in merge_records(once)] == [
        r.sort_key for r in once
    ]


def test_merge_key_is_total_for_distinct_source_seqs():
    """(src, seq) pairs are unique by construction (per-source counters),
    so equal-time records still have one deterministic order."""
    records = [
        CrossShardEvent(10.0, src, seq, "skb", 0, ())
        for src in range(4)
        for seq in range(4)
    ]
    keys = [r.sort_key for r in merge_records(records)]
    assert len(set(keys)) == len(keys)


# ----------------------------------------------------------------------
# Barrier safety on toy shard programs
# ----------------------------------------------------------------------
class PingProgram:
    """A toy shard: each host periodically sends a record to a peer,
    which is delivered ``LATENCY`` after the send — the same contract
    the overlay cluster's links obey. Every delivery is appended to a
    log with the simulated delivery time, which the properties inspect.
    """

    LATENCY = 5.0

    def __init__(self, hosts, all_hosts, seed, period_by_host):
        self._hosts = tuple(hosts)
        self._sim = Simulator()
        self._seqs = {h: 0 for h in hosts}
        self._out = []
        self.delivered = []  # (delivery_time, src, seq, dst)
        for host in hosts:
            peer = all_hosts[(all_hosts.index(host) + 1) % len(all_hosts)]
            period = period_by_host[host]
            # Per-host seed derivation (the cluster's idiom): a host's
            # randomness must not depend on which shard builds it.
            rng = random.Random(seed * 1_000_003 + host)
            self._sim.post_at(
                rng.random() * period, self._tick, host, peer, period
            )

    def _tick(self, host, peer, period):
        seq = self._seqs[host]
        self._seqs[host] = seq + 1
        self._out.append(
            CrossShardEvent(
                self._sim.now + self.LATENCY, host, seq, "ping", peer, ()
            )
        )
        self._sim.post_at(self._sim.now + period, self._tick, host, peer, period)

    # -- ShardProgram ---------------------------------------------------
    def next_time(self):
        return self._sim.peek_time()

    def advance(self, bound, inclusive=False):
        if inclusive:
            self._sim.run(until=bound)
        else:
            while True:
                t = self._sim.peek_time()
                if t is None or t >= bound:
                    break
                self._sim.run(until=t)
        out, self._out = self._out, []
        return out

    def inject(self, records):
        for record in records:
            self._sim.post_at(
                record.time,
                self.delivered.append,
                (record.time, record.src, record.seq, record.dst),
            )

    def hosts(self):
        return self._hosts

    def finalize(self):
        return {"delivered": list(self.delivered)}


def _drive(num_hosts, shards, seed, periods, until=200.0):
    """Partition ``num_hosts`` ping hosts over ``shards`` coordinators."""
    all_hosts = list(range(num_hosts))
    groups = [all_hosts[i::shards] for i in range(shards)]
    groups = [g for g in groups if g]
    handles = [
        InlineShardHandle(
            slot, PingProgram(group, all_hosts, seed, periods)
        )
        for slot, group in enumerate(groups)
    ]
    coordinator = ShardCoordinator(
        handles, lookahead_us=PingProgram.LATENCY, record_windows=True
    )
    coordinator.run(until=until)
    results = coordinator.finalize()
    coordinator.close()
    delivered = []
    for doc in results:
        delivered.extend(tuple(d) for d in doc["delivered"])
    return coordinator, sorted(delivered)


toy_setup = st.tuples(
    st.integers(min_value=2, max_value=5),            # hosts
    st.integers(min_value=0, max_value=2**16),        # seed
    st.lists(
        st.floats(min_value=1.0, max_value=30.0, allow_nan=False),
        min_size=5, max_size=5,                       # per-host periods
    ),
)


@settings(deadline=None, max_examples=30)
@given(toy_setup, st.integers(min_value=2, max_value=4))
def test_records_never_undercut_their_barrier(setup, shards):
    """No record routed out of a window may land before that window's
    barrier — the coordinator's causality check, exercised end to end."""
    num_hosts, seed, period_list = setup
    periods = dict(enumerate(period_list))
    coordinator, _ = _drive(num_hosts, min(shards, num_hosts), seed, periods)
    assert coordinator.window_log, "run produced no windows"
    for window_end, routed_keys in coordinator.window_log[:-1]:
        for time, _src, _seq in routed_keys:
            assert time >= window_end, (
                f"record at t={time} undercuts its window barrier "
                f"t={window_end}"
            )
    # Barriers themselves advance monotonically (final inclusive step
    # excepted — it closes at `until`, inside the last lookahead).
    ends = [end for end, _ in coordinator.window_log[:-1]]
    assert ends == sorted(ends)


@settings(deadline=None, max_examples=30)
@given(toy_setup, st.integers(min_value=2, max_value=4))
def test_toy_partition_invariance(setup, shards):
    """K toy shards deliver exactly the 1-shard deliveries."""
    num_hosts, seed, period_list = setup
    periods = dict(enumerate(period_list))
    _, reference = _drive(num_hosts, 1, seed, periods)
    _, actual = _drive(num_hosts, min(shards, num_hosts), seed, periods)
    assert actual == reference
    assert reference, "scenario delivered nothing — vacuous equivalence"
