"""SIM102: randomness that bypasses the seeded RngRegistry."""

import random


def jitter_us(base):
    return base + random.random()  # expect: SIM102
