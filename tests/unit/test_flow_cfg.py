"""Tests for the simflow CFG builder and worklist fixpoint engine."""

import ast

import pytest

from repro.analysis.flow.cfg import build_cfg
from repro.analysis.flow.engine import (
    MAX_ITERATIONS,
    FixpointError,
    call_sites,
    fixpoint,
    walk_block,
)


def cfg_of(source):
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def reachable(cfg):
    seen = {cfg.entry}
    frontier = [cfg.entry]
    while frontier:
        for succ in cfg.blocks[frontier.pop()].succs:
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


class TestCfgShapes:
    def test_straight_line_is_one_block_plus_exit(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = 2\n")
        assert cfg.entry != cfg.exit
        entry = cfg.blocks[cfg.entry]
        assert len(entry.stmts) == 2
        assert entry.succs == [cfg.exit]

    def test_if_else_diamond(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    b = a\n"
        )
        entry = cfg.blocks[cfg.entry]
        # The If node (its test) terminates the entry block with two arms.
        assert isinstance(entry.stmts[-1], ast.If)
        assert len(entry.succs) == 2
        # Both arms join at a block that reaches the exit.
        preds = cfg.preds()
        join = [
            b.index
            for b in cfg.blocks
            if b.stmts and isinstance(b.stmts[0], ast.Assign)
            and b.stmts[0].targets[0].id == "b"
        ]
        assert len(join) == 1
        assert len(preds[join[0]]) == 2

    def test_if_without_else_edges_past_body(self):
        cfg = cfg_of("def f(x):\n    if x:\n        a = 1\n    b = 2\n")
        entry = cfg.blocks[cfg.entry]
        assert len(entry.succs) == 2  # body entry + fallthrough

    def test_while_has_back_edge(self):
        cfg = cfg_of("def f(x):\n    while x:\n        x -= 1\n    return x\n")
        headers = [
            b for b in cfg.blocks if b.stmts and isinstance(b.stmts[0], ast.While)
        ]
        assert len(headers) == 1
        header = headers[0]
        preds = cfg.preds()
        # Back edge: some body block loops to the header, plus the entry.
        assert len(preds[header.index]) == 2
        # Header exits both into the body and past the loop.
        assert len(header.succs) == 2

    def test_return_edges_to_exit_and_kills_fallthrough(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        return 1\n"
            "    return 2\n"
        )
        for block in cfg.blocks:
            for stmt in block.stmts:
                if isinstance(stmt, ast.Return):
                    assert cfg.exit in block.succs

    def test_break_exits_loop(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x:\n"
            "            break\n"
            "    return 0\n"
        )
        # Every block is still wired: the return is reachable.
        assert any(
            isinstance(s, ast.Return)
            for i in reachable(cfg)
            for s in cfg.blocks[i].stmts
        )

    def test_try_body_edges_into_handler(self):
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        a = risky()\n"
            "    except ValueError:\n"
            "        a = 0\n"
            "    return a\n"
        )
        handler_blocks = {
            b.index
            for b in cfg.blocks
            if any(
                isinstance(s, ast.Assign)
                and isinstance(s.value, ast.Constant)
                and s.value.value == 0
                for s in b.stmts
            )
        }
        assert handler_blocks
        body_blocks = [
            b
            for b in cfg.blocks
            if any(
                isinstance(s, ast.Assign) and isinstance(s.value, ast.Call)
                for s in b.stmts
            )
        ]
        assert body_blocks
        # Over-approximation: the body block may raise into the handler.
        assert set(body_blocks[0].succs) & handler_blocks

    def test_dead_code_after_return_is_parsed_but_unreachable(self):
        cfg = cfg_of("def f():\n    return 1\n    x = 2\n")
        dead = [
            b.index
            for b in cfg.blocks
            if any(isinstance(s, ast.Assign) for s in b.stmts)
        ]
        assert dead
        assert dead[0] not in reachable(cfg)


class _GenAnalysis:
    """Toy gen-only analysis: the set of variable names assigned so far."""

    def initial(self, cfg):
        return frozenset()

    def transfer(self, stmt, state):
        if isinstance(stmt, ast.Assign):
            names = {
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            }
            return state | frozenset(names)
        return state

    def join(self, a, b):
        return a | b


class _NonMonotone:
    """Deliberately broken: oscillates forever."""

    def initial(self, cfg):
        return 0

    def transfer(self, stmt, state):
        return state + 1

    def join(self, a, b):
        return max(a, b)


class TestFixpointEngine:
    def test_branch_states_join_with_union(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
            "    c = 3\n"
        )
        states = fixpoint(cfg, _GenAnalysis())
        assert states[cfg.exit] >= {"a", "b", "c"} or states[
            cfg.exit
        ] == frozenset()
        # The exit sees the union of both arms *after* the join block runs.
        observed = {}

        def observe(stmt, state):
            if isinstance(stmt, ast.Assign) and stmt.targets[0].id == "c":
                observed["before_c"] = state

        walk_block(cfg, states, _GenAnalysis(), observe)
        assert observed["before_c"] == frozenset({"a", "b"})

    def test_loop_converges(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        a = x\n"
            "    return a\n"
        )
        states = fixpoint(cfg, _GenAnalysis())
        assert cfg.exit in states

    def test_deterministic_states(self):
        source = (
            "def f(x):\n"
            "    while x:\n"
            "        if x > 1:\n"
            "            a = 1\n"
            "        else:\n"
            "            b = 2\n"
            "        x -= 1\n"
            "    return x\n"
        )
        first = fixpoint(cfg_of(source), _GenAnalysis())
        second = fixpoint(cfg_of(source), _GenAnalysis())
        assert first == second

    def test_non_monotone_transfer_raises(self):
        cfg = cfg_of("def f(x):\n    while x:\n        x -= 1\n    return x\n")
        with pytest.raises(FixpointError):
            fixpoint(cfg, _NonMonotone())
        assert MAX_ITERATIONS >= 1000


class TestCallSites:
    def names(self, source):
        stmt = ast.parse(source).body[0]
        return [name for _, name in call_sites(stmt)]

    def test_simple_statement_calls(self):
        assert self.names("x = f(g())") == ["f", "g"] or set(
            self.names("x = f(g())")
        ) == {"f", "g"}

    def test_if_contributes_only_its_test(self):
        names = self.names("if check(x):\n    body_call(x)\n")
        assert "check" in names
        assert "body_call" not in names

    def test_for_contributes_only_its_iterator(self):
        names = self.names("for i in gen(x):\n    body_call(i)\n")
        assert "gen" in names
        assert "body_call" not in names

    def test_nested_def_and_lambda_are_skipped(self):
        names = self.names("x = (lambda: inner())\n")
        assert "inner" not in names

    def test_method_call_yields_last_segment(self):
        assert self.names("stack.enqueue_backlog(skb)") == ["enqueue_backlog"]
