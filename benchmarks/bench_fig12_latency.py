"""Figure 12 — per-message latency, underloaded and overloaded."""

from conftest import run_figure

from repro.experiments import fig12_latency


def test_fig12_latency(benchmark, quick):
    out = run_figure(benchmark, fig12_latency, quick)

    # (a) underloaded UDP: Falcon's gain is modest on average, larger at
    # the tail (p99.9), and the host remains fastest.
    con = out.series[("udp_under", "Con")]
    falcon = out.series[("udp_under", "Falcon")]
    host = out.series[("udp_under", "Host")]
    assert falcon["p99.9"] < con["p99.9"]
    assert host["avg"] < falcon["avg"]

    # (c) overloaded UDP: pipelining removes most of the queueing delay.
    con_over = out.series[("udp_over", "Con")]
    falcon_over = out.series[("udp_over", "Falcon")]
    assert falcon_over["p99"] < 0.7 * con_over["p99"]

    # (d) overloaded TCP: Falcon beats the vanilla overlay throughout.
    con_tcp = out.series[("tcp_over", "Con")]
    falcon_tcp = out.series[("tcp_over", "Falcon")]
    assert falcon_tcp["avg"] < con_tcp["avg"]
