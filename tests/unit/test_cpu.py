"""Unit tests for the CPU core model."""

import pytest

from repro.hw.cpu import HARDIRQ, SOFTIRQ, USER, Cpu
from repro.metrics.cpuacct import CpuAccounting
from repro.sim.engine import Simulator


def make_cpu():
    sim = Simulator()
    acct = CpuAccounting()
    return sim, acct, Cpu(sim, 0, acct)


def test_work_executes_after_duration():
    sim, _acct, cpu = make_cpu()
    done = []
    cpu.submit(SOFTIRQ, "fn", 5.0, done.append, "x")
    sim.run()
    assert done == ["x"]
    assert sim.now == 5.0


def test_serialized_execution():
    sim, _acct, cpu = make_cpu()
    times = []
    cpu.submit(SOFTIRQ, "a", 5.0, lambda: times.append(sim.now))
    cpu.submit(SOFTIRQ, "b", 3.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [5.0, 8.0]


def test_priority_dispatch_hardirq_first():
    sim, _acct, cpu = make_cpu()
    order = []
    # Occupy the core, then queue USER before HARDIRQ: the hardirq must
    # still run first once the core frees up.
    cpu.submit(SOFTIRQ, "busy", 10.0, order.append, "busy")
    cpu.submit(USER, "user", 1.0, order.append, "user")
    cpu.submit(HARDIRQ, "irq", 1.0, order.append, "irq")
    sim.run()
    assert order == ["busy", "irq", "user"]


def test_no_preemption_of_running_work():
    sim, _acct, cpu = make_cpu()
    order = []
    cpu.submit(USER, "long", 10.0, order.append, "long")
    sim.run(until=1.0)
    cpu.submit(HARDIRQ, "irq", 1.0, order.append, "irq")
    sim.run()
    # The long user work finishes before the hardirq starts.
    assert order == ["long", "irq"]
    assert sim.now == 11.0


def test_accounting_charges_label_and_context():
    sim, acct, cpu = make_cpu()
    cpu.submit(SOFTIRQ, "ip_rcv", 7.0)
    sim.run()
    assert acct.busy_us_label(0, "ip_rcv") == 7.0
    assert acct.busy_us_context(0, SOFTIRQ) == 7.0
    assert acct.busy_us(0) == 7.0
    assert cpu.busy_us_total == 7.0


def test_submit_multi_splits_charges():
    sim, acct, cpu = make_cpu()
    done = []
    cpu.submit_multi(SOFTIRQ, [("a", 2.0), ("b", 3.0)], done.append, True)
    sim.run()
    assert done == [True]
    assert acct.busy_us_label(0, "a") == 2.0
    assert acct.busy_us_label(0, "b") == 3.0
    assert sim.now == 5.0


def test_negative_duration_rejected():
    _sim, _acct, cpu = make_cpu()
    with pytest.raises(ValueError):
        cpu.submit(USER, "x", -1.0)


def test_queued_counts():
    sim, _acct, cpu = make_cpu()
    cpu.submit(USER, "a", 5.0)
    cpu.submit(USER, "b", 5.0)
    cpu.submit(HARDIRQ, "c", 5.0)
    # One is running, two queued.
    assert cpu.queued() == 2
    assert cpu.queued(USER) == 1
    assert cpu.queued(HARDIRQ) == 1
    sim.run()
    assert cpu.queued() == 0
    assert not cpu.busy


def test_completion_can_submit_more_work():
    sim, _acct, cpu = make_cpu()
    order = []

    def resubmit():
        order.append("first")
        cpu.submit(USER, "again", 1.0, order.append, "second")

    cpu.submit(USER, "first", 1.0, resubmit)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_zero_duration_work():
    sim, _acct, cpu = make_cpu()
    done = []
    cpu.submit(USER, "instant", 0.0, done.append, 1)
    sim.run()
    assert done == [1]
