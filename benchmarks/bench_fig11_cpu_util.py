"""Figure 11 — per-core CPU utilization of a single UDP flow."""

from conftest import run_figure

from repro.experiments import fig11_cpu_util


def test_fig11_cpu_util(benchmark, quick):
    out = run_figure(benchmark, fig11_cpu_util, quick)
    cases = out.series["cases"]

    # Vanilla Linux uses at most three cores for one flow.
    assert len(cases["Host"]["cores_used"]) <= 3
    assert len(cases["Con"]["cores_used"]) <= 3

    # Falcon recruits additional cores for the extra softirq stages.
    assert len(cases["Falcon"]["cores_used"]) >= len(cases["Con"]["cores_used"]) + 1

    # And converts them into throughput: well above Con, close to Host.
    assert cases["Falcon"]["rate"] > 1.5 * cases["Con"]["rate"]
    assert cases["Falcon"]["rate"] > 0.75 * cases["Host"]["rate"]
