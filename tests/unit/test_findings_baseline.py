"""Tests for the suppressed-findings baseline ratchet (satellite of the
simflow PR): render/parse round-trips, the one-way ratchet semantics, CLI
wiring, and the drift check pinning the checked-in baselines to reality.
"""

from pathlib import Path

import pytest

from repro.analysis.baseline import (
    check_baseline,
    inventory_of,
    load_baseline_file,
    normalize_path,
    parse_baseline,
    render_baseline,
)
from repro.analysis.flow import flow_paths
from repro.analysis.lint import lint_paths
from repro.analysis.order import order_paths
from repro.analysis.san import san_paths
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT_BASELINE = REPO_ROOT / "tools" / "lint_baseline.txt"
FLOW_BASELINE = REPO_ROOT / "tools" / "flow_baseline.txt"
ORDER_BASELINE = REPO_ROOT / "tools" / "order_baseline.txt"
SAN_BASELINE = REPO_ROOT / "tools" / "san_baseline.txt"


def suppressed_result(tmp_path):
    """A run with exactly one suppressed SIM102 finding."""
    path = tmp_path / "mod.py"
    path.write_text(
        "import random\n"
        "x = random.random()  # simlint: disable=SIM102\n"
    )
    return lint_paths([str(path)])


class TestInventoryAndRendering:
    def test_inventory_counts_suppressed_not_kept(self, tmp_path):
        result = suppressed_result(tmp_path)
        assert result.ok
        inventory = inventory_of(result)
        assert len(inventory) == 1
        ((path, rule), count) = next(iter(inventory.items()))
        assert rule == "SIM102"
        assert count == 1
        assert "\\" not in path

    def test_render_parse_round_trip(self, tmp_path):
        result = suppressed_result(tmp_path)
        text = render_baseline(result)
        assert parse_baseline(text) == inventory_of(result)

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_baseline("src/x.py::SIM101\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_baseline("src/x.py::SIM101::lots\n")

    def test_parse_skips_comments_and_blanks(self):
        assert parse_baseline("# header\n\n") == {}

    def test_normalize_path(self):
        assert normalize_path("./src/x.py") == "src/x.py"
        assert normalize_path("src\\x.py") == "src/x.py"


class TestRatchetSemantics:
    def test_exact_match_holds(self, tmp_path):
        result = suppressed_result(tmp_path)
        assert check_baseline(result, inventory_of(result)) == []

    def test_new_suppression_fails(self, tmp_path):
        result = suppressed_result(tmp_path)
        errors = check_baseline(result, {})
        assert len(errors) == 1
        assert "new suppressed SIM102" in errors[0]

    def test_stale_entry_fails(self, tmp_path):
        result = suppressed_result(tmp_path)
        frozen = dict(inventory_of(result))
        frozen[("gone.py", "SIM101")] = 1
        errors = check_baseline(result, frozen)
        assert len(errors) == 1
        assert "shrink the baseline" in errors[0]


class TestCheckedInBaselinesMatchReality:
    """Drift check: the committed baseline files must equal the current
    suppression inventory exactly — both directions fail."""

    def test_lint_baseline_is_current(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        result = lint_paths([str(REPO_ROOT / "src")])
        frozen = load_baseline_file(str(LINT_BASELINE))
        errors = check_baseline(result, frozen)
        assert errors == [], "\n".join(errors)

    def test_flow_baseline_is_current(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        result = flow_paths([str(REPO_ROOT / "src")])
        frozen = load_baseline_file(str(FLOW_BASELINE))
        errors = check_baseline(result, frozen)
        assert errors == [], "\n".join(errors)

    def test_lint_baseline_is_nonempty(self):
        # The seed tree carries two deliberate suppressions (rng/run_all);
        # an empty lint baseline means the runner stopped seeing them.
        assert load_baseline_file(str(LINT_BASELINE))

    def test_flow_baseline_is_empty(self):
        # simflow's must-analysis budget: no in-tree suppressions at all.
        assert load_baseline_file(str(FLOW_BASELINE)) == {}

    def test_order_baseline_is_current(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        result = order_paths([str(REPO_ROOT / "src")])
        frozen = load_baseline_file(str(ORDER_BASELINE))
        errors = check_baseline(result, frozen)
        assert errors == [], "\n".join(errors)

    def test_order_baseline_is_empty(self):
        # simorder's acceptance bar: the shard engine and flowcache
        # satisfy every ORD rule with no pragmas at all — the exemptions
        # live in the rules' scope/exempt declarations, with reasons.
        assert load_baseline_file(str(ORDER_BASELINE)) == {}

    def test_san_baseline_is_current(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        result = san_paths([str(REPO_ROOT / "src")])
        frozen = load_baseline_file(str(SAN_BASELINE))
        errors = check_baseline(result, frozen)
        assert errors == [], "\n".join(errors)

    def test_san_baseline_is_empty(self):
        # simsan's acceptance bar: the engine's freelist, the wire codec
        # and the flowcache satisfy every OWN rule with no pragmas at
        # all — ownership discipline holds in-tree, not modulo a list
        # of grandfathered leaks.
        assert load_baseline_file(str(SAN_BASELINE)) == {}


class TestCli:
    def test_lint_with_baseline_passes(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = main([
            "lint", str(REPO_ROOT / "src"),
            "--baseline", str(LINT_BASELINE),
        ])
        assert code == 0

    def test_flow_with_baseline_passes(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = main([
            "flow", str(REPO_ROOT / "src"),
            "--baseline", str(FLOW_BASELINE),
        ])
        assert code == 0

    def test_order_with_baseline_passes(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = main([
            "order", str(REPO_ROOT / "src"),
            "--baseline", str(ORDER_BASELINE),
        ])
        assert code == 0

    def test_san_with_baseline_passes(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = main([
            "san", str(REPO_ROOT / "src"),
            "--baseline", str(SAN_BASELINE),
        ])
        assert code == 0

    def test_new_suppression_fails_against_baseline(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "import random\n"
            "x = random.random()  # simlint: disable=SIM102\n"
        )
        empty = tmp_path / "empty_baseline.txt"
        empty.write_text("# nothing frozen\n")
        code = main(["lint", str(mod), "--baseline", str(empty)])
        assert code == 1
        assert "new suppressed SIM102" in capsys.readouterr().err

    def test_write_baseline_round_trips(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "import random\n"
            "x = random.random()  # simlint: disable=SIM102\n"
        )
        out = tmp_path / "generated.txt"
        assert main(["lint", str(mod), "--write-baseline", str(out)]) == 0
        capsys.readouterr()
        assert main(["lint", str(mod), "--baseline", str(out)]) == 0

    def test_missing_baseline_file_exits_two(self, tmp_path, capsys):
        code = main([
            "lint", str(REPO_ROOT / "src"),
            "--baseline", str(tmp_path / "absent.txt"),
        ])
        assert code == 2
