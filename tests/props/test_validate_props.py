"""Property tests for the invariant monitors.

The defining property of a safety net: across randomized workloads and
seeds, clean runs must pass silently, and a run with an injected bug must
raise. Workloads vary seed, message size, pacing and Falcon config; every
clean run must drain to quiescence with an exactly balanced ledger.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import FalconConfig
from repro.validate import (
    InvariantViolation,
    attach_monitor,
    corrupt_conservation_ledger,
    corrupt_interrupt_counter,
    drain_to_quiescence,
)
from repro.workloads.sockperf import Testbed

# Each example is a full simulation run; keep the example budget small
# and deterministic (derandomize) so the fast tier stays fast and CI
# never flakes on a surprise example.
RUN_SETTINGS = settings(
    max_examples=5,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=2**16)
falcon_specs = st.sampled_from([None, "default", "split"])


def _falcon(spec):
    if spec == "default":
        return FalconConfig()
    if spec == "split":
        return FalconConfig(split_gro=True)
    return None


def _monitored_bed(seed, falcon_spec):
    bed = Testbed(mode="overlay", falcon=_falcon(falcon_spec), seed=seed)
    return bed, attach_monitor(bed.stack)


@RUN_SETTINGS
@given(
    seed=seeds,
    falcon_spec=falcon_specs,
    message_size=st.sampled_from([16, 512, 4096]),
    rate_kpps=st.sampled_from([10, 25, 40]),
)
def test_clean_runs_stay_silent(seed, falcon_spec, message_size, rate_kpps):
    bed, monitor = _monitored_bed(seed, falcon_spec)
    try:
        bed.add_udp_flow(message_size, rate_pps=rate_kpps * 1000.0)
        bed.run(warmup_ms=1.0, measure_ms=2.0)
        assert drain_to_quiescence(monitor)
        monitor.check_conservation(strict=True)
    finally:
        monitor.detach()
    assert monitor.violations == []
    assert monitor.generated > 0  # the run actually exercised the pipeline
    assert monitor.audits > 0  # and the periodic audit actually ran


@RUN_SETTINGS
@given(seed=seeds, falcon_spec=falcon_specs)
def test_clean_tcp_runs_stay_silent(seed, falcon_spec):
    bed, monitor = _monitored_bed(seed, falcon_spec)
    try:
        bed.add_tcp_flow(4096, window_msgs=8)
        bed.run(warmup_ms=1.0, measure_ms=2.0)
        assert drain_to_quiescence(monitor)
        monitor.check_conservation(strict=True)
    finally:
        monitor.detach()
    assert monitor.violations == []
    assert monitor.generated > 0


@RUN_SETTINGS
@given(seed=seeds, falcon_spec=falcon_specs)
def test_corrupted_counter_always_caught(seed, falcon_spec):
    bed, monitor = _monitored_bed(seed, falcon_spec)
    try:
        bed.add_udp_flow(512, rate_pps=30_000.0)
        # Corrupt mid-run: the next 500 µs audit must see the counter
        # running backwards, whatever the workload looks like.
        bed.sim.schedule(2_000.0, corrupt_interrupt_counter, bed.host.machine)
        with pytest.raises(InvariantViolation) as err:
            bed.run(warmup_ms=1.0, measure_ms=2.0)
        assert err.value.kind == "counter-monotonicity"
        assert monitor.violations
    finally:
        monitor.detach()


@RUN_SETTINGS
@given(seed=seeds, falcon_spec=falcon_specs)
def test_lost_packets_always_caught(seed, falcon_spec):
    bed, monitor = _monitored_bed(seed, falcon_spec)
    try:
        bed.add_udp_flow(512, rate_pps=30_000.0)
        # Erase more packets than any in-flight batch could explain; the
        # mid-run (non-strict) audit must flag the imbalance.
        bed.sim.schedule(
            2_000.0, corrupt_conservation_ledger, monitor, 1_000_000
        )
        with pytest.raises(InvariantViolation) as err:
            bed.run(warmup_ms=1.0, measure_ms=2.0)
        assert err.value.kind == "conservation"
    finally:
        monitor.detach()


@RUN_SETTINGS
@given(seed=seeds)
def test_small_loss_caught_at_quiescence(seed):
    """A one-packet leak hides inside in-flight slack mid-run but cannot
    survive the strict check once the pipeline drains."""
    bed, monitor = _monitored_bed(seed, "default")
    try:
        bed.add_udp_flow(512, rate_pps=30_000.0)
        bed.run(warmup_ms=1.0, measure_ms=2.0)
        assert drain_to_quiescence(monitor)
        corrupt_conservation_ledger(monitor, amount=1)
        with pytest.raises(InvariantViolation) as err:
            monitor.check_conservation(strict=True)
        assert err.value.kind == "conservation"
    finally:
        monitor.detach()
