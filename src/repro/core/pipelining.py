"""Softirq pipelining (Section 4.1) — design notes and helpers.

Pipelining is realized at stack-construction time: the overlay stack's
stage-transition points (the ``netif_rx`` at the end of the VXLAN stage
and of the veth stage) are given a Falcon selector instead of the vanilla
"stay on this core" selector. The stages themselves are untouched —
exactly the property the paper claims (no data-structure changes, no RPS
replacement, coexistence with RSS/RPS).

This module provides the device-index plan: each transition point is
identified by the ``ifindex`` of the device *whose processing follows*,
because that is the value the packet's ``skb->dev`` holds when the
kernel's ``netif_rx`` runs. One flow therefore hashes to a stable —
and, with high probability, distinct — core per device.

``expected_cpu_plan`` predicts, for a flow hash, which Falcon CPU each
stage lands on; tests and the CPU-utilization experiments use it to
assert the pipeline actually spreads.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.balancing import first_choice_cpu
from repro.core.config import FalconConfig


def expected_cpu_plan(
    flow_hash: int, ifindexes: List[int], falcon_cpus: List[int]
) -> Dict[int, int]:
    """First-choice CPU per device for a flow (no load effects).

    >>> plan = expected_cpu_plan(0xABCD, [3, 5], [1, 2, 3, 4])
    >>> sorted(plan) == [3, 5]
    True
    """
    return {
        ifindex: first_choice_cpu(falcon_cpus, flow_hash, ifindex)
        for ifindex in ifindexes
    }


def pipeline_width(flow_hash: int, ifindexes: List[int], falcon_cpus: List[int]) -> int:
    """How many distinct cores the flow's stages spread across."""
    plan = expected_cpu_plan(flow_hash, ifindexes, falcon_cpus)
    return len(set(plan.values()))


def stacking_plan(
    config: FalconConfig, ifindexes: List[int], stack_groups: int
) -> List[List[int]]:
    """Group devices into processing stages (footnote 1 of Section 4.1).

    Falcon can stack multiple devices into one stage to even out load.
    Returns ``stack_groups`` groups of device indexes, contiguous in path
    order, as balanced as possible by count.
    """
    if stack_groups < 1:
        raise ValueError("need at least one stage group")
    groups: List[List[int]] = [[] for _ in range(min(stack_groups, len(ifindexes)))]
    for position, ifindex in enumerate(ifindexes):
        groups[position * len(groups) // len(ifindexes)].append(ifindex)
    return groups
