"""Cache-locality cost model.

Falcon's overhead analysis (Section 6.3 of the paper) attributes its extra
CPU usage to two sources: queue operations when a packet hops between
cores, and loss of cache locality when the next stage runs on a core that
has never touched the packet. This module models the second source as a
multiplier applied to the *first* function a packet executes after a
cross-core hop.

The paper observes the penalty is modest (≤ 10% extra CPU at high rates)
because the vanilla overlay's locality is already poor — softirq contexts
for three devices thrash the same core's cache. The default multipliers
reflect that observation.
"""

from __future__ import annotations

from typing import Optional


class LocalityModel:
    """Computes the locality multiplier for packet processing.

    Args:
        same_core: multiplier when the stage runs where the previous one
            did (1.0 — the data is hot).
        cross_core: multiplier after a hop to another core on the same
            socket (the packet's cache lines must be fetched over the
            interconnect).
        cross_socket: multiplier after a hop across sockets.
        cores_per_socket: used to decide whether two cores share a socket;
            ``None`` disables the socket distinction.
    """

    def __init__(
        self,
        same_core: float = 1.0,
        cross_core: float = 1.08,
        cross_socket: float = 1.16,
        cores_per_socket: Optional[int] = None,
    ) -> None:
        if min(same_core, cross_core, cross_socket) <= 0:
            raise ValueError("locality multipliers must be positive")
        self.same_core = same_core
        self.cross_core = cross_core
        self.cross_socket = cross_socket
        self.cores_per_socket = cores_per_socket

    def multiplier(self, prev_cpu: Optional[int], cpu: int) -> float:
        """Multiplier for running on ``cpu`` after last touching ``prev_cpu``."""
        if prev_cpu is None or prev_cpu == cpu:
            return self.same_core
        if self.cores_per_socket:
            if prev_cpu // self.cores_per_socket != cpu // self.cores_per_socket:
                return self.cross_socket
        return self.cross_core

    @classmethod
    def uniform(cls) -> "LocalityModel":
        """A model with no locality effects (for ablations)."""
        return cls(same_core=1.0, cross_core=1.0, cross_socket=1.0)
