"""Extension bench: tenant-fair FALCON_CPUS allocation.

The paper's §6.4 closes with: "policies on how to fairly allocate cycles
for parallelizing each user's flows need to be further developed."
:mod:`repro.core.fairshare` implements weighted partitioning of the
Falcon CPU set; this bench reproduces the motivating incident — a noisy
tenant's elephant flow versus a paced victim tenant — under three
policies: vanilla overlay (no Falcon), plain Falcon (shared CPUs), and
fair-share Falcon (partitioned CPUs).
"""

import pytest
from conftest import QUICK

from repro.core.config import FalconConfig
from repro.core.fairshare import use_fair_share
from repro.metrics.report import Table
from repro.sim.stats import LatencyRecorder
from repro.workloads.sockperf import Testbed

DUR = dict(warmup_ms=4 if QUICK else 8, measure_ms=10 if QUICK else 25)


def run_case(policy: str):
    falcon = None if policy == "vanilla" else FalconConfig(cpus=[3, 4, 5, 6])
    bed = Testbed(mode="overlay", falcon=falcon, app_cpus=[9, 10])
    balancer = None
    if policy == "fairshare":
        balancer = use_fair_share(bed.stack.falcon, {"victim": 1, "noisy": 1})
    victim_latency = LatencyRecorder()
    victim = bed.add_udp_flow(
        512,
        clients=1,
        rate_pps=60_000,
        poisson=True,
        on_message=lambda s, skb, lat: victim_latency.record(lat),
    )
    noisy = bed.add_udp_flow(16, clients=3)  # saturating elephant
    if balancer is not None:
        balancer.assign_flow(victim, "victim")
        balancer.assign_flow(noisy, "noisy")
    result = bed.run(**DUR)
    return result, victim_latency


def test_extension_fairshare(benchmark):
    def run():
        return {policy: run_case(policy) for policy in
                ("vanilla", "falcon", "fairshare")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["policy", "victim avg us", "victim p99 us", "total kpps"],
        title="victim tenant (60 kpps) vs noisy elephant tenant",
    )
    for policy, (result, latency) in results.items():
        table.add_row(
            policy, latency.mean, latency.percentile(99),
            result.message_rate_pps / 1e3,
        )
    print()
    print(table.render())

    victim_fair = results["fairshare"][1]
    victim_shared = results["falcon"][1]
    # Partitioning keeps the victim's stage cores clear of the elephant:
    # tail latency must improve over shared-Falcon.
    assert victim_fair.percentile(99) < victim_shared.percentile(99)
    # And the fair policy keeps most of Falcon's aggregate gain vs vanilla.
    assert (
        results["fairshare"][0].message_rate_pps
        > 1.2 * results["vanilla"][0].message_rate_pps
    )
