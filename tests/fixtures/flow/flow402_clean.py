"""Clean twin of flow402_bad: delivery is the end of the pipeline."""


def deliver_and_consume(stack, skb, cpu):
    stack.deliver_to_socket(skb, cpu)
    stack.consume_skb(skb)  # normal end of life after delivery


def hand_off(stack, skb, cpu):
    # Delivering through the summarized helper and then stopping is fine.
    finish_ok(stack, skb, cpu)


def finish_ok(stack, skb, cpu):
    stack.deliver_to_socket(skb, cpu)
