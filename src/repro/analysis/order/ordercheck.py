"""Static ↔ dynamic ordering cross-check (``repro order --trace``).

The ORD rules reason about two dynamic properties: per-flow delivery
order survives every datapath (the merge-key / flowcache-gate rules),
and the fast path only takes edges the static stage graph sanctions.
This module replays the shard-equivalence and flowcache golden traces
(``tests/goldens/*.json``) against that inferred ordering model:

* within one flow, messages must be **delivered in message order** — a
  trace where ``msg`` *n+1* completes delivery before ``msg`` *n* is an
  **error**: the runtime violated exactly the invariant ORD503/ORD52x
  guard statically;
* every observed stage edge touching the ``fastpath`` stage must exist
  in the statically derived spec (**error** otherwise — the analyzer is
  reasoning about a cache wiring that does not exist);
* a static fastpath edge no golden exercises is a **warning** (missing
  trace coverage for the cached datapath).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.flow.crosscheck import default_trace_dir
from repro.analysis.flow.stagespec import stage_order_spec

#: The cached-datapath stage name FastPathTransition jumps through.
FASTPATH_STAGE = "fastpath"

#: (trace file basename, flow id, earlier msg, later msg, earlier
#: delivery time, later delivery time) for each order inversion.
Violation = Tuple[str, int, int, int, float, float]


@dataclass
class OrderCheckResult:
    """Outcome of one golden-trace replay against the ordering model."""

    trace_files: List[str] = field(default_factory=list)
    flows_checked: int = 0
    deliveries_checked: int = 0
    #: Per-flow delivery-order inversions (errors).
    violations: List[Violation] = field(default_factory=list)
    #: Observed fastpath edges, with exercising-trace counts.
    fastpath_observed: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Observed fastpath edges absent from the static graph (errors).
    fastpath_unknown: List[Tuple[str, str]] = field(default_factory=list)
    #: Static fastpath edges no golden exercised (warnings).
    fastpath_unobserved: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.fastpath_unknown

    def to_json(self) -> str:
        payload = {
            "ok": self.ok,
            "trace_files": [os.path.basename(p) for p in self.trace_files],
            "flows_checked": self.flows_checked,
            "deliveries_checked": self.deliveries_checked,
            "delivery_order_violations": [
                {
                    "trace_file": name,
                    "flow": flow,
                    "earlier_msg": earlier,
                    "later_msg": later,
                    "earlier_time_us": earlier_time,
                    "later_time_us": later_time,
                }
                for name, flow, earlier, later, earlier_time, later_time
                in self.violations
            ],
            "fastpath_edges_observed": {
                f"{a}->{b}": count
                for (a, b), count in sorted(self.fastpath_observed.items())
            },
            "fastpath_edges_unknown_to_static_graph": [
                f"{a}->{b}" for a, b in self.fastpath_unknown
            ],
            "fastpath_edges_unobserved": [
                f"{a}->{b}" for a, b in self.fastpath_unobserved
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_text(self) -> str:
        lines = [
            f"simorder cross-check: {self.flows_checked} flows "
            f"({self.deliveries_checked} deliveries) from "
            f"{len(self.trace_files)} golden files, "
            f"{len(self.fastpath_observed)} distinct fastpath edges observed"
        ]
        for name, flow, earlier, later, earlier_t, later_t in self.violations:
            lines.append(
                f"ERROR: {name} flow {flow}: msg {later} delivered at "
                f"{later_t}us before msg {earlier} at {earlier_t}us — "
                "per-flow delivery order violated at runtime"
            )
        for a, b in self.fastpath_unknown:
            lines.append(
                f"ERROR: runtime fastpath edge {a}->{b} is missing from the "
                "static stage graph — the cache wiring the ORD rules model "
                "no longer matches reality"
            )
        for a, b in self.fastpath_unobserved:
            lines.append(
                f"warning: static fastpath edge {a}->{b} never observed in "
                "any golden trace (missing cached-datapath coverage)"
            )
        lines.append(
            "ordering cross-check OK" if self.ok else
            "ordering cross-check FAILED"
        )
        return "\n".join(lines)


def _delivery_time(events: Sequence[Sequence[object]]) -> Optional[float]:
    """Completion time of a trace: its last ``deliver`` event."""
    times = [
        float(event[0])  # type: ignore[arg-type]
        for event in events
        if str(event[1]) == "deliver"
    ]
    return max(times) if times else None


def _fastpath_edges(
    events: Sequence[Sequence[object]],
) -> List[Tuple[str, str]]:
    """Stage edges touching the fastpath stage, in event-time order."""
    edges: List[Tuple[str, str]] = []
    current = ""
    for event in sorted(events, key=lambda e: float(e[0])):  # type: ignore[arg-type]
        kind = str(event[1])
        stage = str(event[2])
        if current and stage != current and FASTPATH_STAGE in (current, stage):
            edges.append((current, stage))
        if kind in ("exec", "deliver"):
            current = stage
    return edges


def order_cross_check(paths: Sequence[str] = ()) -> OrderCheckResult:
    """Replay golden traces against the per-flow ordering model."""
    trace_files = list(paths)
    if not trace_files:
        golden_dir = default_trace_dir()
        trace_files = sorted(
            os.path.join(golden_dir, name)
            for name in os.listdir(golden_dir)
            if name.endswith(".json")
        )
    result = OrderCheckResult(trace_files=trace_files)
    for path in trace_files:
        name = os.path.basename(path)
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        deliveries: Dict[int, List[Tuple[int, float]]] = {}
        for trace in doc.get("traces", ()):
            events = trace.get("events", ())
            for edge in _fastpath_edges(events):
                result.fastpath_observed[edge] = (
                    result.fastpath_observed.get(edge, 0) + 1
                )
            time = _delivery_time(events)
            if time is None:
                continue
            flow = int(trace.get("flow", 0))
            msg = int(trace.get("msg", 0))
            deliveries.setdefault(flow, []).append((msg, time))
        for flow, entries in sorted(deliveries.items()):
            result.flows_checked += 1
            result.deliveries_checked += len(entries)
            entries.sort()
            for (earlier, earlier_t), (later, later_t) in zip(
                entries, entries[1:]
            ):
                if later_t < earlier_t:
                    result.violations.append(
                        (name, flow, earlier, later, earlier_t, later_t)
                    )

    spec = stage_order_spec()
    fastpath_static = {
        edge for edge in spec.edges if FASTPATH_STAGE in edge
    }
    result.fastpath_unknown = sorted(
        edge for edge in result.fastpath_observed if edge not in fastpath_static
    )
    result.fastpath_unobserved = sorted(
        edge for edge in fastpath_static if edge not in result.fastpath_observed
    )
    return result
