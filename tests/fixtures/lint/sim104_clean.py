"""Clean twin of sim104_bad: iterate a sorted view of the set."""


def wake_waiters(sim, delay, notify):
    pending = {"udp-flow", "tcp-flow", "timer"}
    for waiter in sorted(pending):
        sim.schedule(delay, notify, waiter)
