"""Property-based tests for the simulation engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=200))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.tuples(st.floats(0.0, 100.0), st.integers(0, 99)), max_size=100))
def test_equal_times_preserve_insertion_order(items):
    sim = Simulator()
    fired = []
    for delay, tag in items:
        rounded = round(delay, 1)
        sim.schedule(rounded, lambda r=rounded, t=tag: fired.append((r, t)))
    sim.run()
    # Per distinct timestamp, tags must appear in insertion order.
    by_time = {}
    for rounded, tag in fired:
        by_time.setdefault(rounded, []).append(tag)
    expected = {}
    for delay, tag in items:
        expected.setdefault(round(delay, 1), []).append(tag)
    assert by_time == expected


@given(
    st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=5),
)
def test_chained_scheduling_advances_clock_monotonically(gaps, depth):
    sim = Simulator()
    times = []

    def chain(remaining):
        times.append(sim.now)
        if remaining:
            sim.schedule(gaps[remaining % len(gaps)], chain, remaining - 1)

    sim.schedule(gaps[0], chain, depth)
    sim.run()
    assert times == sorted(times)
    assert len(times) == depth + 1


@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50), st.data())
def test_cancelled_events_never_fire(delays, data):
    sim = Simulator()
    fired = []
    events = [sim.schedule(d, lambda i=i: fired.append(i)) for i, d in enumerate(delays)]
    to_cancel = data.draw(
        st.sets(st.integers(0, len(delays) - 1), max_size=len(delays))
    )
    for index in to_cancel:
        sim.cancel(events[index])
    sim.run()
    assert set(fired) == set(range(len(delays))) - to_cancel


@given(st.lists(st.floats(0.0, 1000.0), max_size=60), st.floats(0.0, 1000.0))
def test_run_until_never_processes_later_events(delays, bound):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run(until=bound)
    assert all(d <= bound for d in fired)
    sim.run()
    assert len(fired) == len(delays)
