#!/usr/bin/env python3
"""Run the ``mypy --strict`` gate over the typed packages.

The simulation core (``repro.sim``), the kernel model entry points
(``repro.kernel``), the static-analysis pass (``repro.analysis``) and
the bench harness (``repro.bench``) are type-checked strictly; modules
listed in the pyproject ratchet
(mirrored in ``tools/mypy_ratchet.txt``) still have errors ignored.

mypy is an optional tool dependency — this container image does not
ship it. Without ``--require`` the script prints a notice and exits 0
when mypy is missing, so local test runs and pre-commit stay green;
CI passes ``--require`` so the gate cannot silently vanish there.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Package trees under the strict gate (the ratchet carves out modules).
TARGETS: List[str] = [
    "src/repro/sim",
    "src/repro/kernel",
    "src/repro/analysis",
    "src/repro/bench",
]


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--require",
        action="store_true",
        help="exit nonzero when mypy is not installed (for CI)",
    )
    args = parser.parse_args(argv)

    if not mypy_available():
        if args.require:
            print(
                "typecheck: mypy is required (--require) but not installed",
                file=sys.stderr,
            )
            return 1
        print(
            "typecheck: mypy not installed; skipping the strict gate "
            "(install mypy, or let CI run it)"
        )
        return 0

    command = [sys.executable, "-m", "mypy", *TARGETS]
    print("typecheck:", " ".join(command))
    return subprocess.call(command, cwd=REPO_ROOT)


if __name__ == "__main__":
    raise SystemExit(main())
