"""Per-function CPU cost model.

Every kernel function on the receive path is assigned a service time of
the form ``fixed + per_byte * size`` microseconds. The values are
calibrated so the *ratios* the paper reports emerge from the simulation:

* native small-packet receive is bottlenecked by the user-space copy core
  (Figure 11), with the driver and protocol stages each well below one
  core;
* the vanilla overlay stacks roughly 3x the native softirq work on a
  single core (Figures 4–5), capping single-flow packet rate at well under
  half of native for small packets (Figure 10);
* for TCP with large messages, ``skb`` allocation and
  ``napi_gro_receive`` each contribute ~45% of the first core
  (Figure 9a), motivating GRO splitting;
* kernel 5.4 cheapens ``sk_buff`` allocation but regresses slightly in
  backlog processing ("the new kernel achieves performance improvements
  as well as causing regressions", Section 6.1).

Absolute microsecond values are *model inputs*, not claims about the
authors' testbed; EXPERIMENTS.md compares shapes, not absolutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

#: Bytes of outer headers a VXLAN tunnel adds (outer Ethernet is counted
#: separately on the wire): outer IP (20) + outer UDP (8) + VXLAN (8) +
#: inner Ethernet (14) = 50 bytes.
VXLAN_OVERHEAD = 50

#: Standard Ethernet MTU and the resulting payload capacities.
MTU = 1500
IP_HEADER = 20
UDP_HEADER = 8
TCP_HEADER = 20


@dataclass(frozen=True)
class FuncCost:
    """Service time of one kernel function: ``fixed + per_byte * size`` µs."""

    fixed: float
    per_byte: float = 0.0

    def cost(self, nbytes: int) -> float:
        return self.fixed + self.per_byte * nbytes


@dataclass(frozen=True)
class CostModel:
    """All tunable service times, grouped by pipeline position."""

    # --- interrupt plumbing -------------------------------------------
    hardirq: FuncCost = FuncCost(0.60)
    #: Fixed overhead of entering net_rx_action for one poll round.
    softirq_dispatch: FuncCost = FuncCost(0.20)
    #: Latency from raising NET_RX on the *local* core to the handler
    #: running (leaving the current context, do_softirq entry).
    softirq_entry_us: float = 1.0
    #: Cost of switching a core between different softirq stage contexts
    #: (icache/dcache refill when net_rx_action moves to a different
    #: device's processing) — the "vanilla does not have good locality
    #: either" effect of Section 6.3. Charged once per batch when the
    #: stage differs from the previous batch on that core.
    softirq_switch: FuncCost = FuncCost(0.60)
    #: Inter-processor interrupt latency when waking a remote core's softirq.
    ipi_delay_us: float = 1.2
    ipi_jitter_us: float = 2.0

    # --- driver stage (softirq #1) ------------------------------------
    skb_alloc: FuncCost = FuncCost(0.30, 0.00004)
    #: GRO examine+merge work per wire packet (TCP flows).
    napi_gro_receive: FuncCost = FuncCost(0.25, 0.00008)
    #: GRO's quick look at a non-coalescable (UDP) packet.
    gro_check: FuncCost = FuncCost(0.08)
    #: get_rps_cpu + enqueue_to_backlog on the steering core.
    rps_steer: FuncCost = FuncCost(0.12)

    # --- per-CPU backlog ----------------------------------------------
    #: process_backlog dequeue work per packet.
    backlog_dequeue: FuncCost = FuncCost(0.12)
    #: netif_rx / enqueue_to_backlog on the sending side of a hop.
    netif_rx: FuncCost = FuncCost(0.10)

    # --- protocol stack ------------------------------------------------
    ip_rcv: FuncCost = FuncCost(0.25, 0.00001)
    #: Per-fragment ip_defrag bookkeeping (UDP messages > MTU).
    ip_defrag: FuncCost = FuncCost(0.10)
    udp_rcv: FuncCost = FuncCost(0.30, 0.00016)
    #: Lean outer-UDP receive that hands off to vxlan_rcv.
    udp_rcv_outer: FuncCost = FuncCost(0.12)
    tcp_v4_rcv: FuncCost = FuncCost(0.45, 0.00002)
    #: ACK generation folded into TCP receive (per merged skb).
    tcp_ack_tx: FuncCost = FuncCost(0.25)
    sock_enqueue: FuncCost = FuncCost(0.15)

    # --- overlay devices (softirqs #2 and #3) --------------------------
    vxlan_rcv: FuncCost = FuncCost(0.22, 0.00001)
    gro_cell_poll: FuncCost = FuncCost(0.10)
    br_handle_frame: FuncCost = FuncCost(0.15, 0.00001)
    veth_xmit: FuncCost = FuncCost(0.12, 0.00001)

    # --- ONCache fast path ----------------------------------------------
    #: Cached-hit handling at the driver exit: one flow-table lookup plus
    #: the memoized header rewrite (decap included). Replaces the whole
    #: hoststack_outer + bridge/veth device chain for a warm flow.
    flowcache_fastpath: FuncCost = FuncCost(0.18, 0.00001)
    #: Sender-side overlay transmit with a warm egress entry: the encap
    #: headers are copied from the cached template instead of recomputed.
    tx_overlay_cached: FuncCost = FuncCost(2.05, 0.00008)

    # --- user space ------------------------------------------------------
    #: Socket read syscall + copy_to_user per delivered skb.
    copy_to_user: FuncCost = FuncCost(0.85, 0.00015)
    #: Extra latency when an idle application thread must be woken.
    app_wakeup_us: float = 3.0

    # --- sender side (modelled as a serialized per-message cost; the
    # --- paper instruments reception, Section 2) ------------------------
    tx_host: FuncCost = FuncCost(2.0, 0.00008)
    tx_overlay: FuncCost = FuncCost(2.4, 0.00010)
    #: Extra transmit work per additional UDP fragment (software
    #: fragmentation at the sender).
    tx_per_fragment_udp: FuncCost = FuncCost(0.4)
    #: Extra transmit work per additional TCP segment — near zero because
    #: TSO segments large sends in NIC hardware.
    tx_per_fragment_tcp: FuncCost = FuncCost(0.1)

    # --- timer tick -----------------------------------------------------
    do_timer: FuncCost = FuncCost(0.30)

    # --- client-side workload pacing (application model, not kernel
    # --- functions; named here so every modelled delay has one home) ----
    #: Browser delay before the first pipelined asset fetch of a page.
    asset_fetch_first_us: float = 2.0
    #: Additional stagger between successive pipelined asset fetches.
    asset_fetch_stagger_us: float = 1.0
    #: Web-tier worker service time per static asset request.
    asset_service_us: float = 4.0

    name: str = "4.19"

    # ------------------------------------------------------------------
    # Kernel-version presets
    # ------------------------------------------------------------------
    @classmethod
    def kernel_4_19(cls) -> "CostModel":
        """The 4.19 baseline the numbers above are calibrated for."""
        return cls()

    @classmethod
    def kernel_5_4(cls) -> "CostModel":
        """Kernel 5.4: cheaper skb allocation, mild backlog regression."""
        base = cls()
        return replace(
            base,
            skb_alloc=FuncCost(0.24, 0.00003),
            backlog_dequeue=FuncCost(0.14),
            netif_rx=FuncCost(0.11),
            name="5.4",
        )

    @classmethod
    def for_kernel(cls, version: str) -> "CostModel":
        factory = {"4.19": cls.kernel_4_19, "5.4": cls.kernel_5_4}.get(version)
        if factory is None:
            raise ValueError(f"unknown kernel version {version!r}")
        return factory()

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def tx_cost_us(self, nbytes: int, overlay: bool, cached: bool = False) -> float:
        if overlay:
            return (self.tx_overlay_cached if cached else self.tx_overlay).cost(nbytes)
        return self.tx_host.cost(nbytes)


def udp_payload_per_fragment(overlay: bool) -> int:
    """UDP payload bytes carried by one IP fragment at the path MTU."""
    inner_mtu = MTU - (VXLAN_OVERHEAD if overlay else 0)
    return inner_mtu - IP_HEADER - UDP_HEADER


def tcp_mss(overlay: bool) -> int:
    """TCP maximum segment size at the path MTU."""
    inner_mtu = MTU - (VXLAN_OVERHEAD if overlay else 0)
    return inner_mtu - IP_HEADER - TCP_HEADER


def fragment_sizes(message_size: int, overlay: bool, tcp: bool) -> Tuple[int, ...]:
    """Split a message into wire-packet payload sizes.

    Returns one entry per wire packet; a message that fits in the MTU maps
    to a single packet of its own size.
    """
    if message_size <= 0:
        raise ValueError("message size must be positive")
    unit = tcp_mss(overlay) if tcp else udp_payload_per_fragment(overlay)
    if message_size <= unit:
        return (message_size,)
    full, rest = divmod(message_size, unit)
    sizes = [unit] * full
    if rest:
        sizes.append(rest)
    return tuple(sizes)
