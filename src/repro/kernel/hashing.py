"""Kernel-style hash functions.

Two hashes matter to the paper:

* the **flow hash** (``skb.hash``) computed from the packet's 5-tuple —
  RSS and RPS use it to steer packets, so all packets of one flow share a
  hash and land on one core (the root cause of Section 3.3);
* **``hash_32``** — the kernel's multiplicative hash, which Falcon applies
  to ``skb.hash + ifindex`` so that the *same flow* gets *distinct* target
  CPUs at *different devices* (Algorithm 1, line 19), and applies again
  for the second choice (line 25).

Both are deterministic pure functions of their inputs — independent of
``PYTHONHASHSEED`` — so simulations are reproducible.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF

#: 2^32 / golden ratio — the constant Linux uses for hash_32().
GOLDEN_RATIO_32 = 0x61C88647


def hash_32(value: int, bits: int = 32) -> int:
    """The kernel's ``hash_32``: multiplicative hashing by the golden ratio.

    Returns the high ``bits`` bits of ``value * GOLDEN_RATIO_32`` (mod 2^32),
    which is how ``include/linux/hash.h`` defines it.
    """
    if not 0 < bits <= 32:
        raise ValueError(f"bits must be in (0, 32], got {bits}")
    product = (value * GOLDEN_RATIO_32) & _MASK32
    return product >> (32 - bits)


def _mix(h: int, value: int) -> int:
    """One round of murmur3-style mixing (stable, well distributed)."""
    k = (value & _MASK32) * 0xCC9E2D51 & _MASK32
    k = ((k << 15) | (k >> 17)) & _MASK32
    k = (k * 0x1B873593) & _MASK32
    h ^= k
    h = ((h << 13) | (h >> 19)) & _MASK32
    h = (h * 5 + 0xE6546B64) & _MASK32
    return h


def _finalize(h: int) -> int:
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def flow_hash(src_ip: int, dst_ip: int, proto: int, sport: int, dport: int) -> int:
    """Compute the 32-bit flow hash of a 5-tuple (``skb_get_hash`` analogue).

    The hash is computed once per flow and cached on the skb, exactly as
    the kernel caches ``skb->hash`` — a property Falcon relies on (the
    flow part of its hash input never changes along the path).
    """
    h = 0x9747B28C
    h = _mix(h, src_ip)
    h = _mix(h, dst_ip)
    h = _mix(h, (proto << 16) ^ sport)
    h = _mix(h, dport)
    return _finalize(h) or 1  # the kernel reserves 0 for "no hash"
