"""Reporters for lint results: compiler-style text and machine JSON."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.lint.core import Finding


@dataclass
class LintResult:
    """Outcome of one lint invocation."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    #: Findings silenced by a pragma/exemption — kept (not dropped) so
    #: the baseline ratchet can freeze the suppression inventory.
    suppressed: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def render_text(result: LintResult) -> str:
    """``path:line:col: RULE message`` per finding plus a summary line."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}"
        for f in result.findings
    ]
    if result.findings:
        by_rule = ", ".join(
            f"{rule}×{count}" for rule, count in result.counts_by_rule().items()
        )
        lines.append(
            f"simlint: {len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"in {result.files_checked} files ({by_rule})"
        )
    else:
        lines.append(f"simlint: {result.files_checked} files clean")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable machine-readable form (sorted keys, sorted findings)."""
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "counts_by_rule": result.counts_by_rule(),
        "suppressed": [
            {
                "path": f.path,
                "line": f.line,
                "rule": f.rule,
            }
            for f in result.suppressed
        ],
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col + 1,
                "rule": f.rule,
                "message": f.message,
            }
            for f in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
