"""Clean twin of flow401_bad: the packet only moves forward."""


class ForwardPath:
    def run(self, stack, skb):
        stack.napi_gro_receive(skb)
        stack.process_backlog(skb)
        stack.udp_rcv(skb)


def branchy(stack, skb, steer):
    # Joining two legal positions must not invent a violation: after the
    # branch the abstract state is a set, and FLOW401 only fires when
    # EVERY position is past the called stage.
    if steer:
        stack.enqueue_backlog(2, skb, None, 0)
    else:
        stack.netif_rx(skb)
    stack.process_backlog(skb)
