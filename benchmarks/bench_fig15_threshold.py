"""Figure 15 — FALCON_LOAD_THRESHOLD sensitivity."""

from conftest import run_figure

from repro.experiments import fig15_threshold


def test_fig15_threshold(benchmark, quick):
    out = run_figure(benchmark, fig15_threshold, quick)

    moderate = out.series["moderate"]
    # A high-but-not-disabled threshold (90%) beats a conservative one
    # (70%): low thresholds miss parallelization opportunities.
    assert moderate["90%"] > moderate["70%"]
    # And every Falcon setting beats vanilla at moderate load.
    for label, value in moderate.items():
        if label != "vanilla":
            assert value >= moderate["vanilla"] * 0.97, label

    if "high" in out.series:
        high = out.series["high"]
        # Always-on must not beat the gated 90% setting under high load
        # (the paper: always-on hurts when the system is busy).
        assert high["always-on"] <= high["90%"] * 1.05
