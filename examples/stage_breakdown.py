#!/usr/bin/env python3
"""Scenario: where does a packet's time go? (per-stage tracing)

Attaches a :class:`repro.metrics.tracing.PacketTracer` to a vanilla and
a Falcon overlay stack and prints, per pipeline segment, the mean time a
traced message spends there — the simulation's equivalent of the perf/
flamegraph analysis the paper's Section 3 is built on, but at per-packet
timeline granularity.

Run:  python examples/stage_breakdown.py
"""

from repro.core.config import FalconConfig
from repro.metrics.report import Table
from repro.metrics.tracing import PacketTracer
from repro.workloads.sockperf import Testbed

RATE = 300_000.0


def trace_case(falcon):
    bed = Testbed(mode="overlay", falcon=falcon)
    tracer = PacketTracer(sample_every=20)
    bed.stack.tracer = tracer
    bed.add_udp_flow(128, clients=1, rate_pps=RATE, poisson=True)
    bed.run(warmup_ms=8, measure_ms=20)
    return tracer


def main() -> None:
    for name, falcon in (("vanilla overlay", None), ("Falcon", FalconConfig())):
        tracer = trace_case(falcon)
        table = Table(
            ["pipeline segment", "mean us", "samples"],
            title=f"{name}: mean per-segment time "
            f"(pipeline total {tracer.mean_pipeline_us():.1f} us)",
        )
        breakdown = sorted(
            tracer.stage_breakdown().items(), key=lambda kv: -kv[1][0]
        )
        for label, (mean, count) in breakdown[:8]:
            table.add_row(label, mean, count)
        print(table.render())
        cores = {
            stage: sorted(cpus) for stage, cpus in tracer.cores_seen().items()
        }
        print(f"stage->cores: {cores}\n")


if __name__ == "__main__":
    main()
