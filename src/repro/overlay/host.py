"""A host: machine + kernel stack + NIC link endpoint + containers.

``Host`` is the deployment-facing wrapper the examples and workloads use:
it owns the simulated hardware, the receive stack and the containers
scheduled onto it, mirroring one of the paper's two testbed servers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hw.link import Link
from repro.hw.topology import Machine
from repro.kernel.stack import NetworkStack, StackConfig
from repro.overlay.container import Container
from repro.sim.context import SimContext
from repro.sim.engine import Simulator
from repro.sim.errors import TopologyError
from repro.sim.rng import RngRegistry


class Host:
    """One server in the testbed."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[StackConfig] = None,
        num_cpus: int = 20,
        host_ip: int = 0x0A000001,
        name: str = "host",
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.host_ip = host_ip
        #: The run context every component of this host shares; built
        #: here, once, and threaded through machine and stack.
        self.ctx = SimContext(sim=sim, rng=RngRegistry(seed), name=name)
        self.machine = Machine(sim, num_cpus=num_cpus, name=name, ctx=self.ctx)
        self.config = config or StackConfig()
        self.stack = NetworkStack(self.ctx, self.machine, self.config)
        self.containers: Dict[str, Container] = {}
        #: Ingress link (remote sender → this host's NIC); set by the
        #: testbed/OverlayNetwork wiring.
        self.ingress_link: Optional[Link] = None
        self._next_container_ip = 0xAC110002  # 172.17.0.2

    # ------------------------------------------------------------------
    # Container lifecycle
    # ------------------------------------------------------------------
    def launch_container(self, name: str) -> Container:
        if name in self.containers:
            raise TopologyError(f"container {name!r} already exists on {self.name}")
        container = Container(name, self._next_container_ip, self)
        self._next_container_ip += 1
        self.containers[name] = container
        return container

    def remove_container(self, name: str) -> None:
        container = self.containers.pop(name, None)
        if container is not None and self.stack.flowcache is not None:
            # Container stop/migration: every cached flow touching its IP
            # is stale — the veth peer and FDB entry are gone.
            self.stack.flowcache.invalidate_ip(container.private_ip)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_ingress(self, bandwidth_gbps: float, propagation_us: float = 1.0) -> Link:
        """Create the ingress link remote senders transmit over."""
        self.ingress_link = Link(self.sim, bandwidth_gbps, propagation_us)
        return self.ingress_link

    def cpu_utilization(self) -> List[float]:
        return self.machine.loads()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} cpus={self.machine.num_cpus}>"
