"""Performance benchmark harness (the ``repro bench`` subcommand).

This package establishes the perf baseline the ROADMAP's "as fast as the
hardware allows" goal is measured against. It fans a suite of benchmarks
— event-engine microbenches, sockperf-style scenarios, and the figure
reproductions — out across worker processes (one fully isolated
:class:`~repro.sim.context.SimContext` world per worker), records
events/sec and wall time for each, and emits a ``BENCH_<timestamp>.json``
document whose schema is validated by :mod:`repro.bench.schema`.

Unlike the simulation packages, this harness legitimately reads the wall
clock (it measures host time) and uses ``multiprocessing`` (it measures
the host, not the simulated machine) — it lives outside the simulated
scope the DES-discipline lint rules police, and its timing goes through
the tree's one sanctioned wall-clock helper
(:func:`repro.experiments.run_all.wall_seconds`).
"""

from repro.bench.harness import run_bench, write_bench_doc
from repro.bench.schema import (
    DEFAULT_TOLERANCE,
    SCHEMA_ID,
    compare_bench_docs,
    validate_bench_doc,
)
from repro.bench.suite import all_specs, execute, specs_for

__all__ = [
    "DEFAULT_TOLERANCE",
    "SCHEMA_ID",
    "all_specs",
    "compare_bench_docs",
    "execute",
    "run_bench",
    "specs_for",
    "validate_bench_doc",
    "write_bench_doc",
]
