"""Measurement infrastructure.

This package turns raw simulator activity into the quantities the paper
reports: per-core CPU utilization broken down by kernel function
(:mod:`~repro.metrics.cpuacct`), interrupt counts
(:mod:`~repro.metrics.counters`), packet rates and latency percentiles
(:mod:`~repro.metrics.meters`), and text tables (:mod:`~repro.metrics.report`).
"""

from repro.metrics.cpuacct import CpuAccounting, CpuWindow
from repro.metrics.counters import InterruptCounters
from repro.metrics.meters import MeasurementWindow, ThroughputProbe
from repro.metrics.report import Table, format_table
from repro.metrics.tracing import PacketTracer

__all__ = [
    "CpuAccounting",
    "CpuWindow",
    "InterruptCounters",
    "MeasurementWindow",
    "ThroughputProbe",
    "PacketTracer",
    "Table",
    "format_table",
]
