"""Clean twin of flowcache_bad: the cache-hit skip is a legal edge.

A hit at the driver exit jumps straight from the GRO'd driver stage to
the fast-path step and on to protocol delivery, skipping the whole slow
device chain — the derived spec contains that edge, so no suppression is
needed.
"""


class FastPathHit:
    def hit(self, stack, skb):
        stack.napi_gro_receive(skb)  # driver stage
        stack.flowcache_fastpath(skb)  # cache hit: decap + jump
        stack.l4_rcv(skb)  # container-tail protocol receive
        stack.deliver_to_socket(skb)


def miss_then_slow_path(stack, skb):
    # A miss rides the unchanged slow chain; forward motion throughout.
    stack.napi_gro_receive(skb)
    stack.vxlan_rcv(skb)
    stack.br_handle_frame(skb)
    stack.l4_rcv(skb)
    stack.deliver_to_socket(skb)
