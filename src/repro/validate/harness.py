"""The `repro validate` driver: invariants + differential + golden suites.

Each suite returns :class:`SuiteOutcome` rows; the CLI prints them and
exits non-zero when anything failed. The invariant suite runs monitored
versions of the shipped experiment configurations (vanilla overlay,
Falcon, GRO splitting, host mode, fragmented UDP) and finishes each run
with a strict quiescent conservation check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.validate.differential import DIFFERENTIAL_SCENARIOS, run_differential
from repro.validate.golden import check_goldens
from repro.validate.invariants import (
    InvariantMonitor,
    InvariantViolation,
    corrupt_interrupt_counter,
)

#: Simulated time slice used while draining a run to quiescence.
_DRAIN_SLICE_US = 777.0
_DRAIN_MAX_SLICES = 64


@dataclass
class SuiteOutcome:
    """One validation scenario's verdict."""

    suite: str
    name: str
    ok: bool
    details: List[str] = field(default_factory=list)

    def render(self) -> str:
        status = "ok" if self.ok else "FAIL"
        head = f"[{self.suite}] {self.name}: {status}"
        if not self.details:
            return head
        return head + "\n" + "\n".join(f"    {line}" for line in self.details)


# ----------------------------------------------------------------------
# Invariant suite
# ----------------------------------------------------------------------
#: (name, testbed kwargs, workload kwargs) — the shipped configurations.
INVARIANT_SCENARIOS = (
    (
        "udp_stress_vanilla",
        {"mode": "overlay", "falcon": None},
        {"proto": "udp", "message_size": 16, "clients": 2},
    ),
    (
        "udp_stress_falcon",
        {"mode": "overlay", "falcon": "default"},
        {"proto": "udp", "message_size": 16, "clients": 2},
    ),
    (
        "udp_fragmented_falcon",
        {"mode": "overlay", "falcon": "default"},
        {"proto": "udp", "message_size": 4096, "rate_pps": 20_000.0},
    ),
    (
        "tcp_stream_falcon_split",
        {"mode": "overlay", "falcon": "split"},
        {"proto": "tcp", "message_size": 4096, "window_msgs": 16},
    ),
    (
        "udp_fixed_host",
        {"mode": "host", "falcon": None},
        {"proto": "udp", "message_size": 512, "rate_pps": 60_000.0},
    ),
)


def drain_to_quiescence(monitor: InvariantMonitor) -> bool:
    """Run the sim in slices until the pipeline is idle (or give up).

    Slices are deliberately offset from the 500 µs timer tick so audits
    don't always land mid-``do_timer``.
    """
    sim = monitor.stack.sim
    for _ in range(_DRAIN_MAX_SLICES):
        if monitor.pipeline_idle():
            return True
        sim.run(until=sim.now + _DRAIN_SLICE_US)
    return monitor.pipeline_idle()


def _run_invariant_scenario(name, bed_kwargs, load_kwargs, quick, inject) -> SuiteOutcome:
    from repro.core.config import FalconConfig
    from repro.workloads.sockperf import Testbed

    falcon_spec = bed_kwargs.get("falcon")
    falcon = None
    if falcon_spec == "default":
        falcon = FalconConfig()
    elif falcon_spec == "split":
        falcon = FalconConfig(split_gro=True)
    bed = Testbed(mode=bed_kwargs["mode"], falcon=falcon, seed=0)
    monitor = InvariantMonitor()
    monitor.attach(bed.stack)
    duration_ms, warmup_ms = (4.0, 2.0) if quick else (10.0, 5.0)
    details: List[str] = []
    try:
        if load_kwargs["proto"] == "udp":
            bed.add_udp_flow(
                load_kwargs["message_size"],
                clients=load_kwargs.get("clients", 1),
                rate_pps=load_kwargs.get("rate_pps"),
            )
        else:
            bed.add_tcp_flow(
                load_kwargs["message_size"],
                window_msgs=load_kwargs.get("window_msgs", 16),
            )
        if inject == "corrupt-counter":
            # A deliberately corrupted counter mid-run: the next periodic
            # audit must flag it, proving the monitor is actually looking.
            bed.sim.schedule(
                (warmup_ms + duration_ms / 2) * 1000.0,
                corrupt_interrupt_counter,
                bed.host.machine,
            )
        elif inject == "lost-packet":
            bed.sim.schedule(
                (warmup_ms + duration_ms / 2) * 1000.0,
                lambda: setattr(monitor, "generated", monitor.generated - 50),
            )
        bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)
        if not drain_to_quiescence(monitor):
            details.append("pipeline failed to quiesce after the senders stopped")
        monitor.check_conservation(strict=True)
    except InvariantViolation as violation:
        details.append(str(violation))
    finally:
        monitor.detach()
    if not details:
        details.append(
            f"{monitor.generated} packets conserved, {monitor.audits} audits, "
            f"{monitor.checks_passed} checks"
        )
        return SuiteOutcome("invariants", name, True, details)
    return SuiteOutcome("invariants", name, False, details)


def run_invariant_suite(
    quick: bool = False, inject: Optional[str] = None
) -> List[SuiteOutcome]:
    outcomes = []
    for index, (name, bed_kwargs, load_kwargs) in enumerate(INVARIANT_SCENARIOS):
        # An injected violation only needs to fire once to prove the
        # monitors work; apply it to the first scenario.
        scenario_inject = inject if index == 0 else None
        outcomes.append(
            _run_invariant_scenario(name, bed_kwargs, load_kwargs, quick, scenario_inject)
        )
    return outcomes


# ----------------------------------------------------------------------
# Differential suite
# ----------------------------------------------------------------------
def run_differential_suite(quick: bool = False) -> List[SuiteOutcome]:
    outcomes = []
    for scenario in DIFFERENTIAL_SCENARIOS:
        if quick:
            scenario = type(scenario)(
                **{
                    **scenario.__dict__,
                    "duration_ms": 4.0,
                    "warmup_ms": 1.0,
                    "drain_ms": 6.0,
                }
            )
        report = run_differential(scenario)
        if report.ok:
            details = [
                f"{scenario.regimes[0]} vs {scenario.regimes[1]}: both sides "
                f"delivered {report.baseline.delivered_messages} messages "
                f"({report.baseline.delivered_bytes} B) in identical "
                "per-flow order"
            ]
            outcomes.append(SuiteOutcome("differential", scenario.name, True, details))
        else:
            outcomes.append(
                SuiteOutcome("differential", scenario.name, False, report.failures)
            )
    return outcomes


# ----------------------------------------------------------------------
# Golden suite
# ----------------------------------------------------------------------
def run_golden_suite(
    golden_dir: Optional[Path] = None, regen: bool = False
) -> List[SuiteOutcome]:
    results = check_goldens(golden_dir=golden_dir, regen=regen)
    outcomes = []
    for name, diffs in sorted(results.items()):
        if diffs:
            outcomes.append(SuiteOutcome("golden", name, False, diffs))
        else:
            detail = "golden regenerated" if regen else "trace matches golden"
            outcomes.append(SuiteOutcome("golden", name, True, [detail]))
    return outcomes


# ----------------------------------------------------------------------
# Sanitizer verdict (REPRO_SANITIZE=1)
# ----------------------------------------------------------------------
def sanitize_outcome() -> Optional[SuiteOutcome]:
    """One row summarizing the ownership ledger, if the sanitizer ran.

    Returns None when ``REPRO_SANITIZE`` is off or no instrumented
    object was ever constructed (nothing to report either way).
    """
    from repro.validate.sanitize import current_ledger, sanitize_enabled

    if not sanitize_enabled():
        return None
    ledger = current_ledger()
    if ledger is None:
        return None
    report = ledger.report()
    return SuiteOutcome("sanitize", "ownership-ledger", report.ok, report.render())


# ----------------------------------------------------------------------
# Entry point used by the CLI
# ----------------------------------------------------------------------
def run_validation(
    suites: str = "all",
    quick: bool = False,
    regen_goldens: bool = False,
    golden_dir: Optional[Path] = None,
    inject: Optional[str] = None,
) -> List[SuiteOutcome]:
    outcomes: List[SuiteOutcome] = []
    if suites in ("all", "invariants"):
        outcomes.extend(run_invariant_suite(quick=quick, inject=inject))
    if suites in ("all", "differential"):
        outcomes.extend(run_differential_suite(quick=quick))
    if suites in ("all", "golden"):
        outcomes.extend(run_golden_suite(golden_dir=golden_dir, regen=regen_goldens))
    sanitized = sanitize_outcome()
    if sanitized is not None:
        outcomes.append(sanitized)
    return outcomes
