"""Unit tests for the overlay control plane (containers, hosts, KV store)."""

import pytest

from repro.kernel.skb import PROTO_TCP, PROTO_UDP
from repro.kernel.stack import StackConfig
from repro.overlay.container import Container
from repro.overlay.host import Host
from repro.overlay.kvstore import KvStore
from repro.overlay.network import OverlayNetwork
from repro.sim.engine import Simulator
from repro.sim.errors import TopologyError


class TestKvStore:
    def test_publish_resolve(self):
        store = KvStore()
        store.publish(100, 1)
        assert store.resolve(100) == 1

    def test_missing_mapping_raises(self):
        with pytest.raises(TopologyError):
            KvStore().resolve(42)

    def test_cache_hits_counted(self):
        store = KvStore()
        store.publish(100, 1)
        store.resolve(100)
        store.resolve(100)
        assert store.lookups == 2
        assert store.cache_hits == 1

    def test_republish_invalidates_cache(self):
        store = KvStore()
        store.publish(100, 1)
        store.resolve(100)
        store.publish(100, 2)  # container migrated
        assert store.resolve(100) == 2

    def test_withdraw(self):
        store = KvStore()
        store.publish(100, 1)
        store.withdraw(100)
        with pytest.raises(TopologyError):
            store.resolve(100)
        assert len(store) == 0


class TestHostContainers:
    def make_host(self):
        return Host(Simulator(), StackConfig(mode="overlay"), num_cpus=8)

    def test_launch_assigns_unique_ips(self):
        host = self.make_host()
        a = host.launch_container("a")
        b = host.launch_container("b")
        assert a.private_ip != b.private_ip

    def test_duplicate_name_rejected(self):
        host = self.make_host()
        host.launch_container("a")
        with pytest.raises(TopologyError):
            host.launch_container("a")

    def test_container_listen_binds_socket(self):
        host = self.make_host()
        container = host.launch_container("srv")
        got = []
        socket = container.listen(
            5001, app_cpu=2, on_message=lambda s, skb, lat: got.append(skb)
        )
        flow = container.connect_flow(socket, src_ip=999, sport=1234, dport=5001)
        assert host.stack.sockets.lookup(flow) is socket

    def test_container_port_allocation(self):
        host = self.make_host()
        container = host.launch_container("c")
        ports = {container.allocate_port() for _ in range(5)}
        assert len(ports) == 5

    def test_attach_ingress(self):
        host = self.make_host()
        link = host.attach_ingress(bandwidth_gbps=100.0)
        assert host.ingress_link is link


class TestOverlayNetwork:
    def test_join_publishes_mapping(self):
        host = Host(Simulator(), StackConfig(mode="overlay"), num_cpus=8)
        network = OverlayNetwork()
        container = host.launch_container("a")
        network.join(container)
        assert network.resolve_host(container.private_ip) == host.host_ip
        assert network.container_at(container.private_ip) is container

    def test_double_join_rejected(self):
        host = Host(Simulator(), StackConfig(mode="overlay"), num_cpus=8)
        network = OverlayNetwork()
        container = host.launch_container("a")
        network.join(container)
        with pytest.raises(TopologyError):
            network.join(container)

    def test_leave_withdraws(self):
        host = Host(Simulator(), StackConfig(mode="overlay"), num_cpus=8)
        network = OverlayNetwork()
        container = host.launch_container("a")
        network.join(container)
        network.leave(container)
        with pytest.raises(TopologyError):
            network.resolve_host(container.private_ip)

    def test_encap_overhead_is_vxlan(self):
        assert OverlayNetwork.encap_overhead() == 50

    def test_members_listing(self):
        host = Host(Simulator(), StackConfig(mode="overlay"), num_cpus=8)
        network = OverlayNetwork()
        a = host.launch_container("a")
        b = host.launch_container("b")
        network.join(a)
        network.join(b)
        assert set(network.members()) == {a, b}
