"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_with_same_seed_reproduce():
    seq1 = [RngRegistry(42).stream("w").random() for _ in range(1)]
    seq2 = [RngRegistry(42).stream("w").random() for _ in range(1)]
    assert seq1 == seq2


def test_different_names_are_independent():
    reg = RngRegistry(42)
    a = reg.stream("a")
    b = reg.stream("b")
    assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]


def test_draws_on_one_stream_do_not_shift_another():
    reg1 = RngRegistry(7)
    reg1.stream("noise").random()  # extra draw on an unrelated stream
    value1 = reg1.stream("data").random()

    reg2 = RngRegistry(7)
    value2 = reg2.stream("data").random()
    assert value1 == value2


def test_fork_is_deterministic_and_distinct():
    a = RngRegistry(3).fork("child").stream("s").random()
    b = RngRegistry(3).fork("child").stream("s").random()
    c = RngRegistry(3).stream("s").random()
    assert a == b
    assert a != c
