"""Tests for the ``simorder`` ordering/causality pass.

Mirrors the simlint/simflow fixture discipline: every seeded violation
in ``tests/fixtures/order/`` carries a trailing ``# expect: RULE``
marker and the tests demand exact (file, line, rule) agreement — no
extra findings, none missing. The clean twins (which deliberately
mirror the real shard/flowcache idioms) and the whole in-tree source
must produce zero findings, which is the pass's false-positive budget.
"""

import json
import re
from pathlib import Path

import pytest

from repro.analysis.check import run_check
from repro.analysis.lint.report import render_text
from repro.analysis.order import (
    ORDER_RULE_IDS,
    ORDER_RULES,
    order_cross_check,
    order_paths,
    order_rule_by_id,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "order"

MARKER_RE = re.compile(r"#\s*expect:\s*([A-Z0-9, ]+)")


def expected_fixture_findings():
    """(file name, line, rule) tuples derived from ``# expect:`` markers."""
    expected = set()
    for path in sorted(FIXTURES.glob("*.py")):
        for lineno, text in enumerate(
            path.read_text().splitlines(), start=1
        ):
            match = MARKER_RE.search(text)
            if match is None:
                continue
            for rule in match.group(1).replace(" ", "").split(","):
                if rule:
                    expected.add((path.name, lineno, rule))
    return expected


def actual_findings(paths, **kwargs):
    result = order_paths([str(p) for p in paths], **kwargs)
    return result, {
        (Path(f.path).name, f.line, f.rule) for f in result.findings
    }


class TestFixtureCorpus:
    def test_exact_findings(self):
        result, actual = actual_findings([FIXTURES])
        assert actual == expected_fixture_findings()
        assert not result.ok

    def test_every_order_rule_is_exercised(self):
        rules_seen = {rule for _, _, rule in expected_fixture_findings()}
        for rule_id in ORDER_RULE_IDS:
            assert rule_id in rules_seen, f"no fixture exercises {rule_id}"

    def test_clean_twins_stay_clean(self):
        clean = sorted(FIXTURES.glob("*_clean.py"))
        assert clean, "corpus is missing its clean twins"
        result, actual = actual_findings(clean)
        assert result.ok, render_text(result)
        assert actual == set()

    def test_findings_are_deterministic(self):
        first, _ = actual_findings([FIXTURES])
        second, _ = actual_findings([FIXTURES])
        assert first.findings == second.findings


class TestSourceTreeIsClean:
    """Zero in-tree findings is the false-positive budget of the pass.

    This is also the PR's acceptance bar: the real shard engine and
    flowcache must satisfy every ORD rule with an **empty** baseline —
    no pragmas, no suppressions (see test_findings_baseline.py).
    """

    def test_src_orders_clean(self):
        result, _ = actual_findings([REPO_ROOT / "src"])
        assert result.ok, render_text(result)
        assert not result.suppressed
        assert result.files_checked > 50


class TestRuleCatalogue:
    def test_registry_matches_rules(self):
        assert tuple(r.id for r in ORDER_RULES) == ORDER_RULE_IDS

    def test_rule_by_id(self):
        for rule in ORDER_RULES:
            assert order_rule_by_id(rule.id) is rule
            assert rule.title and rule.rationale
        assert order_rule_by_id("BOGUS99") is None

    def test_single_rule_runs_alone(self):
        result, actual = actual_findings([FIXTURES], rule_ids=["ORD511"])
        rules = {rule for _, _, rule in actual}
        assert rules <= {"ORD511", "LINT000", "LINT001"}
        assert ("ord51x_bad.py", 16, "ORD511") in actual
        assert not any(rule == "ORD501" for _, _, rule in actual)

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="BOGUS99"):
            order_paths([str(FIXTURES)], rule_ids=["BOGUS99"])


class TestMustAnalysisSemantics:
    """ORD511's bound proof is a must-analysis: intersection join."""

    def test_one_branch_bound_is_not_enough(self, tmp_path):
        copy = tmp_path / "one_branch.py"
        copy.write_text(
            "def publish(self, flag, src):\n"
            "    if flag:\n"
            "        when = self.sim.now + self.propagation_us\n"
            "    else:\n"
            "        when = self.sim.now\n"
            "    self.outbox.emit(when, 'credit', src, ())\n"
        )
        _, actual = actual_findings([copy])
        assert ("one_branch.py", 6, "ORD511") in actual

    def test_rebinding_kills_the_bound(self, tmp_path):
        copy = tmp_path / "rebound.py"
        copy.write_text(
            "def publish(self, src):\n"
            "    when = self.sim.now + self.propagation_us\n"
            "    when = self.sim.now\n"
            "    self.outbox.emit(when, 'credit', src, ())\n"
        )
        _, actual = actual_findings([copy])
        assert ("rebound.py", 4, "ORD511") in actual

    def test_both_branches_bound_stays_quiet(self, tmp_path):
        copy = tmp_path / "both.py"
        copy.write_text(
            "def publish(self, flag, src):\n"
            "    if flag:\n"
            "        when = self.link.reserve(64)\n"
            "    else:\n"
            "        when = self.sim.now + self.propagation_us\n"
            "    self.outbox.emit(when, 'credit', src, ())\n"
        )
        result, _ = actual_findings([copy])
        assert result.ok, render_text(result)


class TestPragmaSuppression:
    """Order findings honour the shared simlint pragma machinery."""

    def test_disable_pragma_suppresses_order_finding(self, tmp_path):
        src = (FIXTURES / "ord51x_bad.py").read_text()
        patched = src.replace(
            "# expect: ORD511", "# simlint: disable=ORD511"
        )
        assert patched != src
        copy = tmp_path / "suppressed.py"
        copy.write_text(patched)
        result, actual = actual_findings([copy])
        assert {rule for _, _, rule in actual} == {"ORD512", "ORD513"}
        assert len(result.suppressed) == 2
        assert {f.rule for f in result.suppressed} == {"ORD511"}

    def test_order_ids_are_known_to_lint_meta_rules(self, tmp_path):
        # LINT001 (unknown rule id in pragma) must not fire for order ids
        # used from the lint pass, and vice versa.
        from repro.analysis.lint import lint_paths

        copy = tmp_path / "cross.py"
        copy.write_text("x = 1  # simlint: disable=ORD521\n")
        result = lint_paths([str(copy)])
        assert result.ok, render_text(result)


class TestOrderCrossCheck:
    """Static↔dynamic: golden traces replayed against the ordering model."""

    def test_shipped_goldens_hold_the_ordering_model(self):
        check = order_cross_check()
        assert check.ok, check.to_text()
        assert check.flows_checked > 0
        assert check.deliveries_checked > check.flows_checked
        # The oncache goldens exercise the cached datapath.
        assert check.fastpath_observed

    def test_reordered_delivery_is_detected(self, tmp_path):
        golden = tmp_path / "reordered.json"
        golden.write_text(json.dumps({
            "traces": [
                {"flow": 7, "msg": 0,
                 "events": [[10.0, "deliver", "container", 2]]},
                {"flow": 7, "msg": 1,
                 "events": [[5.0, "deliver", "container", 2]]},
            ],
        }))
        check = order_cross_check([str(golden)])
        assert not check.ok
        assert len(check.violations) == 1
        name, flow, earlier, later, earlier_t, later_t = check.violations[0]
        assert (flow, earlier, later) == (7, 0, 1)
        assert later_t < earlier_t

    def test_unknown_fastpath_edge_is_detected(self, tmp_path):
        golden = tmp_path / "wired.json"
        golden.write_text(json.dumps({
            "traces": [
                {"flow": 0, "msg": 0,
                 "events": [
                     [1.0, "exec", "socket", 0],
                     [2.0, "exec", "fastpath", 0],
                 ]},
            ],
        }))
        check = order_cross_check([str(golden)])
        assert not check.ok
        assert ("socket", "fastpath") in check.fastpath_unknown

    def test_json_schema(self, tmp_path):
        check = order_cross_check()
        payload = json.loads(check.to_json())
        for key in (
            "ok",
            "trace_files",
            "flows_checked",
            "deliveries_checked",
            "delivery_order_violations",
            "fastpath_edges_observed",
            "fastpath_edges_unknown_to_static_graph",
            "fastpath_edges_unobserved",
        ):
            assert key in payload
        assert payload["ok"] is True


class TestUnifiedCheck:
    """`repro check` runs every static gate in one pass."""

    def test_fixture_run_fails_order_only(self):
        report = run_check([str(FIXTURES)])
        assert not report.ok
        by_name = {step.name: step for step in report.steps}
        assert set(by_name) == {"lint", "flow", "order", "san", "mypy"}
        assert not by_name["order"].ok
        assert by_name["flow"].ok
        # mypy is optional in this environment: ok or skipped, never
        # silently absent.
        assert by_name["mypy"].ok or not by_name["mypy"].skipped

    def test_rule_filter_routes_to_owning_analyzer(self):
        report = run_check([str(FIXTURES)], rule_ids=["ORD521"])
        by_name = {step.name: step for step in report.steps}
        assert not by_name["order"].ok
        assert by_name["lint"].ok and by_name["flow"].ok

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="BOGUS99"):
            run_check([str(FIXTURES)], rule_ids=["BOGUS99"])

    def test_json_schema(self):
        report = run_check([str(FIXTURES)])
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert [step["name"] for step in payload["steps"]] == [
            "lint", "flow", "order", "san", "mypy",
        ]
        for step in payload["steps"]:
            assert set(step) == {"name", "ok", "skipped", "summary"}


class TestCli:
    def test_order_src_exits_zero(self, capsys):
        assert main(["order", str(REPO_ROOT / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_order_fixtures_exits_one_with_json(self, capsys):
        code = main(["order", str(FIXTURES), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts_by_rule"]["ORD511"] == 2
        assert payload["counts_by_rule"]["ORD502"] == 2

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["order", str(FIXTURES), "--rule", "BOGUS99"])
        assert code == 2
        assert "BOGUS99" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["order", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ORDER_RULE_IDS:
            assert rule_id in out

    def test_trace_exits_zero_on_shipped_goldens(self, capsys):
        assert main(["order", "--trace"]) == 0
        assert "cross-check OK" in capsys.readouterr().out

    def test_trace_exits_one_on_reordered_golden(self, tmp_path, capsys):
        golden = tmp_path / "reordered.json"
        golden.write_text(json.dumps({
            "traces": [
                {"flow": 0, "msg": 0,
                 "events": [[9.0, "deliver", "container", 1]]},
                {"flow": 0, "msg": 1,
                 "events": [[3.0, "deliver", "container", 1]]},
            ],
        }))
        code = main(["order", "--trace", str(golden), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert len(payload["delivery_order_violations"]) == 1

    def test_check_fixtures_exits_one(self, capsys):
        assert main(["check", str(FIXTURES)]) == 1
        assert "check FAILED" in capsys.readouterr().out

    def test_check_src_exits_zero_with_json(self, capsys):
        assert main(["check", str(REPO_ROOT / "src"), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
