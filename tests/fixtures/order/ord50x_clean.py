"""Partition-invariant counterparts of the ORD50x leaks.

Shard identity may be *held* (the coordinator needs it for routing); it
just must never reach a timestamp, seed or payload. Host-index-derived
seeds are fine — the host set is the same under every partition.
"""


class InvariantClock:
    def __init__(self, sim, shard_index):
        self.sim = sim
        self.shard_index = shard_index  # routing identity, never leaked

    def tick(self, sim, period_us):
        sim.post_at(sim.now + period_us, self.on_tick)

    def tag_message(self, sim, time_us, payload, msg_id):
        sim.post_at(time_us, self.deliver, (payload, msg_id))


def make_invariant_host(spec, index, factory):
    # Per-host seed: a function of the workload spec and the host's
    # position in the (partition-independent) host set.
    return factory(seed=spec.seed * 1_000_003 + index)


def derive_stream(rng, name):
    return rng.stream(f"host/{name}")
