"""The overlay network object (Docker's overlay driver analogue).

Ties hosts, containers and the KV store together: containers join the
network, their private-IP → host-IP mapping is published, and senders
resolve destinations through it when encapsulating.
"""

from __future__ import annotations

from typing import Dict, List

from repro.kernel.costs import VXLAN_OVERHEAD
from repro.overlay.container import Container
from repro.overlay.host import Host
from repro.overlay.kvstore import KvStore
from repro.sim.errors import TopologyError


class OverlayNetwork:
    """A named overlay network spanning multiple hosts."""

    def __init__(self, name: str = "overlay0", vni: int = 4096) -> None:
        self.name = name
        #: VXLAN network identifier.
        self.vni = vni
        self.kvstore = KvStore()
        self._members: Dict[int, Container] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, container: Container) -> None:
        if container.private_ip in self._members:
            raise TopologyError(
                f"IP {container.private_ip} already joined {self.name}"
            )
        self._members[container.private_ip] = container
        self.kvstore.publish(container.private_ip, container.host.host_ip)

    def leave(self, container: Container) -> None:
        self._members.pop(container.private_ip, None)
        self.kvstore.withdraw(container.private_ip)

    def members(self) -> List[Container]:
        return list(self._members.values())

    # ------------------------------------------------------------------
    # Data-plane helpers
    # ------------------------------------------------------------------
    def resolve_host(self, container_ip: int) -> int:
        """Encap-time lookup: which host carries this private IP?"""
        return self.kvstore.resolve(container_ip)

    def container_at(self, container_ip: int) -> Container:
        member = self._members.get(container_ip)
        if member is None:
            raise TopologyError(f"no container with IP {container_ip} in {self.name}")
        return member

    @staticmethod
    def encap_overhead() -> int:
        """Bytes VXLAN encapsulation adds to every inner packet."""
        return VXLAN_OVERHEAD
