"""Deterministic discrete-event simulation engine.

The engine is a classic calendar-queue simulator: events are ``(time,
sequence)``-ordered callbacks kept in a binary heap. Determinism matters —
two runs with the same seed must produce identical results, so ties in
event time are broken by insertion order, never by object identity.

Design notes
------------
* Events are lightweight ``__slots__`` objects so that per-packet work
  (which can mean hundreds of thousands of events per run) stays cheap.
* Cancellation is lazy: a cancelled event stays in the heap and is skipped
  when popped. This keeps :meth:`Simulator.cancel` O(1).
* The simulator never advances time backwards; scheduling with a negative
  delay raises :class:`~repro.sim.errors.SimulationError`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Tuple

from repro.sim.errors import SimulationError


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be passed
    to :meth:`Simulator.cancel`. They order by ``(time, seq)`` which is what
    the heap requires.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f}us #{self.seq} {name}{state}>"


class Simulator:
    """Event loop with a microsecond clock.

    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.schedule(5.0, hits.append, "a")
    >>> _ = sim.schedule(1.0, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._halted: bool = False
        self.events_processed: int = 0
        #: Optional :class:`repro.validate.InvariantMonitor` hook. When
        #: None (the default) the event loop pays one attribute check per
        #: event and nothing else.
        self.monitor: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        event.cancelled = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events in time order.

        Args:
            until: stop once the clock would pass this timestamp. Events at
                exactly ``until`` are still processed; the clock is left at
                ``until`` if the queue ran dry earlier.
            max_events: safety valve — stop after this many events.
        """
        if self._halted:
            raise SimulationError("simulator has been halted")
        processed = 0
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and event.time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            heapq.heappop(heap)
            if self.monitor is not None:
                self.monitor.on_event(self.now, event.time)
            self.now = event.time
            event.fn(*event.args)
            processed += 1
            if self._halted:
                break
        self.events_processed += processed
        if until is not None and self.now < until and not self._halted:
            self.now = until

    def step(self) -> bool:
        """Process a single event. Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            if self.monitor is not None:
                self.monitor.on_event(self.now, event.time)
            self.now = event.time
            event.fn(*event.args)
            self.events_processed += 1
            return True
        return False

    def halt(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._halted = True

    def resume(self) -> None:
        """Clear a previous :meth:`halt` so that :meth:`run` works again."""
        self._halted = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None when idle."""
        for event in sorted(self._heap)[:16]:
            if not event.cancelled:
                return event.time
        live = [e.time for e in self._heap if not e.cancelled]
        return min(live) if live else None
