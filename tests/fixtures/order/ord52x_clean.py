"""Ledger-gated counterparts of the ORD52x bypasses.

Mirrors the real `FlowTable` discipline: a receive-side miss reserves
the flow's segments as slow in-flight, only the delivery confirmation
repopulates the table, and every teardown path reaches an invalidate.
"""


class GatedFlowTable:
    def __init__(self, capacity):
        self.capacity = capacity
        self._entries = {}
        self._slow_inflight = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def access(self, key, segs):
        if key in self._entries and not self._slow_inflight.get(key):
            self.hits += 1
            return True
        self.misses += 1
        self._slow_inflight[key] = self._slow_inflight.get(key, 0) + segs
        return False

    def delivered(self, key, segs):
        left = self._slow_inflight.get(key, 0) - segs
        if left > 0:
            self._slow_inflight[key] = left
            return
        self._slow_inflight.pop(key, None)
        self.insert(key)

    def insert(self, key):
        self._entries[key] = 1

    def invalidate_host(self, ip):
        self.invalidations += len(self._entries)
        self._entries.clear()


class GatedCache:
    def __init__(self, table):
        self.ingress = table

    def invalidate_ip(self, ip):
        self.ingress.invalidate_host(ip)


class GatedHost:
    def migrate_container(self, ip):
        self.cache.invalidate_ip(ip)
