"""Simulated-concurrency race detector (RACE301).

The simulator models per-CPU kernel state — backlog queues, NAPI poll
lists, per-core softnet data — as Python lists indexed by CPU number
(``self.data[cpu_index]``). The concurrency contract, checked
dynamically by the PR-1 invariant monitors, is that *cross-core* traffic
into those structures always routes through the per-core serialization
layer: ``raise_net_rx`` / ``enqueue_backlog`` (which model the IPI +
softirq wakeup) or the engine/CPU primitives ``schedule`` /
``schedule_at`` / ``submit`` / ``submit_multi`` (which serialize the
work onto the target core's event stream). Code that reaches straight
into another core's structure would never race *in Python* — the DES is
single-threaded — but it silently models an impossible machine: state
appearing on a remote core with no IPI, no softirq raise and no latency.
That is exactly the class of modelling bug golden traces cannot localise.

This is a whole-project pass:

1. **Collect** per-CPU structures: any ``self.X = [... for _ in
   range(<expr mentioning cpus>)]`` in any linted file marks attribute
   ``X`` as per-CPU (the idiom used by ``SoftirqNet.data`` and friends).
2. **Entry points**: stage/handler functions — ``run_item`` / ``route``
   / ``flush`` / ``irq_handler`` / ``inject`` and every method of a
   class whose name mentions Stage/Transition/Napi — the code that runs
   per packet.
3. **Reachability**: a name-matching call graph (callee name -> any
   known function of that name, across modules) is walked from the
   entry points; this is what makes the pass cross-module — e.g.
   ``EnqueueTransition.route`` (stages.py) reaching
   ``enqueue_backlog`` (softirq.py). Dispatch calls (``post`` /
   ``post_at`` / ``post_batch`` / ``push_many`` / ``schedule`` /
   ``submit`` ...) contribute their *arguments* as edges too, so a
   callback handed to the scheduler in a batch is traced into per-CPU
   structures just like a direct call.
4. **Check**: a reachable function that (a) juggles more than one CPU
   identity (two or more cpu/core-named parameters), (b) subscripts a
   per-CPU structure by one of them, and (c) never calls a
   serialization primitive, is flagged at the offending subscript.
   Methods of a per-CPU-owning class are checked even when the
   name-level call graph misses them (conservative fallback).

Heuristics, by design: single-cpu-parameter functions are assumed to run
*on* that core (they were themselves dispatched via ``submit``), which
matches the codebase idiom and keeps the rule quiet on correct code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Project,
    Rule,
    last_segment,
)

#: Parameter names that carry a CPU/core identity.
CPU_PARAM_RE = re.compile(r"(?:^|_)(?:cpu|core)(?:$|_)|cpu$|^cpu|core$")

#: Calls that serialize work onto a target core's event stream.
SERIALIZATION_CALLS: Set[str] = {
    "raise_net_rx",
    "enqueue_backlog",
    "enqueue_to_backlog",
    "schedule",
    "schedule_at",
    "post",
    "post_at",
    "post_batch",
    "submit",
    "submit_multi",
}

#: Function names that are per-packet stage/handler entry points.
ENTRY_FUNCTION_NAMES: Set[str] = {
    "run_item",
    "route",
    "flush",
    "irq_handler",
    "inject",
}

#: Class-name fragments whose methods are entry points wholesale.
ENTRY_CLASS_FRAGMENTS: Tuple[str, ...] = ("Stage", "Transition", "Napi")

#: Calls that dispatch their callable arguments onto the event stream.
#: The call graph follows those arguments — ``sim.post_batch(t, fn, items)``
#: reaches ``fn`` exactly like ``fn(items)`` would.
DISPATCH_CALLS: Set[str] = {
    "post",
    "post_at",
    "post_batch",
    "push_many",
    "schedule",
    "schedule_at",
    "submit",
    "submit_multi",
}


@dataclass
class _Func:
    """One function definition with everything the pass needs."""

    ctx: FileContext
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    class_name: Optional[str]

    @property
    def name(self) -> str:
        return self.node.name

    def cpu_params(self) -> List[str]:
        args = self.node.args
        names = [
            arg.arg
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            if arg.arg not in ("self", "cls")
        ]
        return [name for name in names if CPU_PARAM_RE.search(name)]

    def called_names(self) -> Set[str]:
        names: Set[str] = set()
        for sub in ast.walk(self.node):
            if not isinstance(sub, ast.Call):
                continue
            name = last_segment(sub.func)
            if name is None:
                continue
            names.add(name)
            if name in DISPATCH_CALLS:
                # Batch-posted callbacks are edges too: the scheduler
                # will call them, so the reachability walk must.
                for arg in sub.args:
                    arg_name = last_segment(arg)
                    if arg_name is not None:
                        names.add(arg_name)
                for keyword in sub.keywords:
                    arg_name = last_segment(keyword.value)
                    if arg_name is not None:
                        names.add(arg_name)
        return names

    def is_entry(self) -> bool:
        if self.name in ENTRY_FUNCTION_NAMES:
            return True
        if self.class_name is not None:
            return any(frag in self.class_name for frag in ENTRY_CLASS_FRAGMENTS)
        return False


class PerCpuRaceRule(Rule):
    """RACE301: unserialized cross-core access to per-CPU state."""

    id = "RACE301"
    title = "cross-core access must be serialized"
    rationale = (
        "Touching another core's per-CPU structure without raise_net_rx/"
        "enqueue_backlog/schedule/submit models state teleporting between "
        "cores with no IPI and no latency — a faithful-modelling bug the "
        "runtime invariant monitors can only catch when a workload "
        "happens to exercise it."
    )
    scope = ("repro.kernel",)

    # ------------------------------------------------------------------
    # Project-wide pass
    # ------------------------------------------------------------------
    def check_project(self, project: Project) -> Iterator[Finding]:
        files = [
            ctx
            for ctx in project.files
            if ctx.tree is not None and self.applies_to(ctx.module)
        ]
        if not files:
            return
        funcs = self._collect_functions(files)
        percpu = self._collect_percpu_attrs(files)
        if not percpu:
            return
        owning_classes = {owner for owner, _attr in percpu}
        percpu_names = {attr for _owner, attr in percpu}
        reachable = self._reachable_names(funcs)
        for func in funcs:
            in_owner = func.class_name in owning_classes
            if not (func.name in reachable or in_owner):
                continue
            yield from self._check_function(func, percpu_names)

    # ------------------------------------------------------------------
    # Phase 1: collection
    # ------------------------------------------------------------------
    @staticmethod
    def _collect_functions(files: List[FileContext]) -> List[_Func]:
        funcs: List[_Func] = []
        for ctx in files:
            for node in ctx.functions():
                cls = ctx.enclosing_class(node)
                funcs.append(
                    _Func(ctx=ctx, node=node, class_name=cls.name if cls else None)
                )
        return funcs

    @staticmethod
    def _collect_percpu_attrs(files: List[FileContext]) -> Set[Tuple[str, str]]:
        """``(owning class, attribute)`` pairs for per-CPU structures.

        Matches the construction idiom ``self.X = [ ... for _ in
        range(<expr>) ]`` where the range expression mentions cpus.
        """
        percpu: Set[Tuple[str, str]] = set()
        for ctx in files:
            assert ctx.tree is not None
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.ListComp):
                    continue
                generators = node.value.generators
                if not generators:
                    continue
                iter_expr = generators[0].iter
                if not (
                    isinstance(iter_expr, ast.Call)
                    and last_segment(iter_expr.func) == "range"
                ):
                    continue
                if "cpu" not in ast.unparse(iter_expr).lower():
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls = ctx.enclosing_class(node)
                        if cls is not None:
                            percpu.add((cls.name, target.attr))
        return percpu

    # ------------------------------------------------------------------
    # Phase 2: name-level reachability from stage entry points
    # ------------------------------------------------------------------
    @staticmethod
    def _reachable_names(funcs: List[_Func]) -> Set[str]:
        defined: Dict[str, List[_Func]] = {}
        for func in funcs:
            defined.setdefault(func.name, []).append(func)
        frontier = [func for func in funcs if func.is_entry()]
        reachable: Set[str] = {func.name for func in frontier}
        while frontier:
            func = frontier.pop()
            for callee in func.called_names():
                if callee in reachable or callee not in defined:
                    continue
                reachable.add(callee)
                frontier.extend(defined[callee])
        return reachable

    # ------------------------------------------------------------------
    # Phase 3: the check proper
    # ------------------------------------------------------------------
    def _check_function(
        self, func: _Func, percpu_names: Set[str]
    ) -> Iterator[Finding]:
        cpu_params = func.cpu_params()
        if len(cpu_params) < 2:
            # One CPU identity: the function runs *on* that core (it was
            # itself dispatched there); its accesses are core-local.
            return
        accesses = self._percpu_accesses(func, percpu_names, set(cpu_params))
        if not accesses:
            return
        if func.called_names() & SERIALIZATION_CALLS:
            return
        for attr_name, node in accesses:
            yield self.finding(
                func.ctx, node,
                f"per-CPU structure '{attr_name}' accessed by CPU index in "
                f"'{func.name}', which handles multiple core identities "
                f"({', '.join(cpu_params)}) but never routes through a "
                "serialization primitive (raise_net_rx / enqueue_backlog "
                "/ schedule / submit)",
            )

    @staticmethod
    def _percpu_accesses(
        func: _Func, percpu_names: Set[str], cpu_params: Set[str]
    ) -> List[Tuple[str, ast.AST]]:
        accesses: List[Tuple[str, ast.AST]] = []
        for sub in ast.walk(func.node):
            if not isinstance(sub, ast.Subscript):
                continue
            if not (
                isinstance(sub.value, ast.Attribute)
                and sub.value.attr in percpu_names
            ):
                continue
            index_names = {
                n.id for n in ast.walk(sub.slice) if isinstance(n, ast.Name)
            }
            if index_names & cpu_params:
                accesses.append((sub.value.attr, sub))
        return accesses


RACE_RULES = (PerCpuRaceRule(),)
