"""The unified static-analysis pipeline behind ``repro check``.

One entry point running every static gate the repo has — simlint,
simflow, simorder, simsan, and the mypy strict gate — in a single pass
over one file discovery, so "is this change statically clean?" is one
command instead of five. Each gate becomes a :class:`CheckStep`; the
report fails if any non-skipped step fails.

Baselines: when invoked from the repository root, each analyzer is also
held to its committed suppressed-findings ratchet
(``tools/{lint,flow,order,san}_baseline.txt``) exactly as CI does —
drift in either direction fails the step. From any other working
directory the ratchets are skipped (baseline paths are cwd-relative by
design).

mypy is an optional tool dependency; when it is not installed the mypy
step reports ``skipped`` and does not fail the pipeline unless
``require_mypy`` is set (CI mode).
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

_REPO_ROOT = Path(__file__).resolve().parents[3]


@dataclass(frozen=True)
class CheckStep:
    """Outcome of one gate in the pipeline."""

    name: str
    ok: bool
    skipped: bool = False
    summary: str = ""


@dataclass
class CheckReport:
    """Outcome of one ``repro check`` run."""

    steps: List[CheckStep] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(step.ok for step in self.steps)

    def to_text(self) -> str:
        lines = []
        for step in self.steps:
            status = (
                "SKIP" if step.skipped else "ok" if step.ok else "FAILED"
            )
            lines.append(f"{step.name:<6} {status:<7} {step.summary}")
        lines.append("check OK" if self.ok else "check FAILED")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "ok": self.ok,
            "steps": [
                {
                    "name": step.name,
                    "ok": step.ok,
                    "skipped": step.skipped,
                    "summary": step.summary,
                }
                for step in self.steps
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def _baseline_errors(result, name: str, paths: Sequence[str]) -> List[str]:
    """Ratchet drift for one analyzer, when the run can be compared.

    Baseline entries are repo-root-relative paths of the ``src`` tree;
    comparing them only makes sense when that is the working directory
    and the run actually covers ``src`` (a fixture run would read as
    phantom drift).
    """
    if Path.cwd().resolve() != _REPO_ROOT:
        return []
    if len(paths) != 1 or Path(paths[0]).resolve() != _REPO_ROOT / "src":
        return []
    baseline_path = _REPO_ROOT / "tools" / f"{name}_baseline.txt"
    if not baseline_path.exists():
        return []
    from repro.analysis.baseline import check_baseline, load_baseline_file

    frozen = load_baseline_file(str(baseline_path))
    return check_baseline(result, frozen)


def _analyzer_step(name: str, result, paths: Sequence[str]) -> CheckStep:
    drift = _baseline_errors(result, name, paths)
    parts = [
        f"{len(result.findings)} finding(s) in {result.files_checked} files"
    ]
    if result.suppressed:
        parts.append(f"{len(result.suppressed)} suppressed")
    parts.extend(f"baseline: {error}" for error in drift)
    return CheckStep(
        name=name,
        ok=result.ok and not drift,
        summary="; ".join(parts),
    )


def _mypy_step(require_mypy: bool) -> CheckStep:
    script = _REPO_ROOT / "tools" / "typecheck.py"
    if importlib.util.find_spec("mypy") is None:
        if require_mypy:
            return CheckStep(
                name="mypy",
                ok=False,
                summary="mypy required but not installed",
            )
        return CheckStep(
            name="mypy",
            ok=True,
            skipped=True,
            summary="mypy not installed; strict gate skipped",
        )
    command = [sys.executable, str(script)]
    if require_mypy:
        command.append("--require")
    proc = subprocess.run(
        command, cwd=_REPO_ROOT, capture_output=True, text=True
    )
    tail = (proc.stdout or proc.stderr).strip().splitlines()
    return CheckStep(
        name="mypy",
        ok=proc.returncode == 0,
        summary=tail[-1] if tail else f"exit {proc.returncode}",
    )


def run_check(
    paths: Sequence[str] = ("src",),
    require_mypy: bool = False,
    rule_ids: Optional[Sequence[str]] = None,
) -> CheckReport:
    """Run lint + flow + order + san + mypy over ``paths`` in one pass.

    ``rule_ids`` restricts each analyzer to the ids it owns (unknown ids
    raise ``ValueError`` only if no analyzer claims them).
    """
    from repro.analysis.flow.runner import flow_paths, flow_rule_by_id
    from repro.analysis.lint.runner import lint_paths, rule_by_id
    from repro.analysis.order.runner import order_paths, order_rule_by_id
    from repro.analysis.san.runner import san_paths, san_rule_by_id

    def owned(selector, ids):
        if ids is None:
            return None
        return [rule_id for rule_id in ids if selector(rule_id) is not None]

    if rule_ids is not None:
        claimed = set(
            owned(rule_by_id, rule_ids)
            + owned(flow_rule_by_id, rule_ids)
            + owned(order_rule_by_id, rule_ids)
            + owned(san_rule_by_id, rule_ids)
        )
        unknown = [rule_id for rule_id in rule_ids if rule_id not in claimed]
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")

    report = CheckReport()
    report.steps.append(
        _analyzer_step(
            "lint",
            lint_paths(paths, rule_ids=owned(rule_by_id, rule_ids)),
            paths,
        )
    )
    report.steps.append(
        _analyzer_step(
            "flow",
            flow_paths(paths, rule_ids=owned(flow_rule_by_id, rule_ids)),
            paths,
        )
    )
    report.steps.append(
        _analyzer_step(
            "order",
            order_paths(paths, rule_ids=owned(order_rule_by_id, rule_ids)),
            paths,
        )
    )
    report.steps.append(
        _analyzer_step(
            "san",
            san_paths(paths, rule_ids=owned(san_rule_by_id, rule_ids)),
            paths,
        )
    )
    report.steps.append(_mypy_step(require_mypy))
    return report
