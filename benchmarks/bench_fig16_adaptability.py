"""Figure 16 — two-choice dynamic balancing vs static hashing."""

from conftest import run_figure

from repro.experiments import fig16_adaptability


def test_fig16_adaptability(benchmark, quick):
    out = run_figure(benchmark, fig16_adaptability, quick)

    # The dynamic policy resolves the hotspot: higher mean throughput
    # (the paper reports ~18% for UDP). Quick mode runs a single seed on
    # a short window, so only no-regression is asserted there.
    assert out.series["gain"] > (0.99 if quick else 1.03)

    # And it is consistent: every seed's dynamic run beats that seed's
    # static run.
    for static, dynamic in zip(out.series["static"], out.series["two_choice"]):
        assert dynamic >= static * 0.99
