"""Hardware models.

The paper's testbed is two DELL R640 servers (dual 10-core Xeon) connected
by 10G and 100G Ethernet. This package models exactly the properties that
matter to the paper's argument:

* :mod:`~repro.hw.cpu` — per-core serialized execution with hardirq >
  softirq > user dispatch priority. Softirq serialization on one core is
  the bottleneck the paper identifies, so the CPU is the central model.
* :mod:`~repro.hw.link` — bandwidth-limited links (10G vs 100G decides
  whether the link or the CPU is the bottleneck, Figure 2).
* :mod:`~repro.hw.nic` — multi-queue NIC with RSS, rx rings, and NAPI-style
  interrupt suppression.
* :mod:`~repro.hw.cache` — the cross-core locality tax that Falcon pays
  for pipelining (Section 6.3).
* :mod:`~repro.hw.topology` — assembles cores into a machine.
"""

from repro.hw.cache import LocalityModel
from repro.hw.cpu import Cpu, HARDIRQ, SOFTIRQ, USER
from repro.hw.link import Link
from repro.hw.nic import Nic, RxQueue
from repro.hw.topology import Machine

__all__ = [
    "Cpu",
    "HARDIRQ",
    "SOFTIRQ",
    "USER",
    "Link",
    "LocalityModel",
    "Machine",
    "Nic",
    "RxQueue",
]
