"""Unit tests for the repro bench suite, schema, and harness."""

import json

import pytest

from repro.bench import (
    SCHEMA_ID,
    all_specs,
    compare_bench_docs,
    run_bench,
    specs_for,
    validate_bench_doc,
    write_bench_doc,
)
from repro.bench.suite import QUICK_FIGURES, derive_bench_seed


# ----------------------------------------------------------------------
# Suite selection
# ----------------------------------------------------------------------
def test_specs_are_deterministic_and_unique():
    specs = all_specs()
    names = [spec.name for spec in specs]
    assert names == [spec.name for spec in all_specs()]
    assert len(names) == len(set(names))
    assert all(
        spec.kind in ("engine", "scenario", "figure", "shard", "flowcache")
        for spec in specs
    )


def test_quick_subset():
    quick = specs_for(quick=True)
    assert all(spec.quick for spec in quick)
    # Engine + scenario benches always run quick; figures are a subset.
    figure_names = {spec.name for spec in quick if spec.kind == "figure"}
    assert figure_names == {f"figure-{name}" for name in QUICK_FIGURES}


def test_only_filter_and_unknown_name():
    only = specs_for(only=["engine-churn-heap", "scenario-tcp-stream-falcon"])
    assert {spec.name for spec in only} == {
        "engine-churn-heap",
        "scenario-tcp-stream-falcon",
    }
    with pytest.raises(ValueError, match="unknown benchmark"):
        specs_for(only=["engine-churn-heap", "nope"])


def test_derived_seeds_are_stable_and_distinct():
    assert derive_bench_seed(0, "engine-churn-heap") == derive_bench_seed(
        0, "engine-churn-heap"
    )
    seeds = {derive_bench_seed(0, spec.name) for spec in all_specs()}
    assert len(seeds) == len(all_specs())  # no collisions in this suite
    assert derive_bench_seed(1, "engine-churn-heap") != derive_bench_seed(
        0, "engine-churn-heap"
    )


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
def _valid_doc():
    return {
        "schema": SCHEMA_ID,
        "created_utc": "2026-01-01T00:00:00+00:00",
        "quick": True,
        "workers": 1,
        "root_seed": 0,
        "scheduler": "heap",
        "benchmarks": [
            {
                "name": "engine-churn-heap",
                "kind": "engine",
                "seed": 1,
                "status": "ok",
                "wall_s": 0.1,
                "events": 100,
                "events_per_sec": 1000.0,
                "headline": {},
            }
        ],
        "totals": {
            "wall_s": 0.1,
            "events": 100,
            "events_per_sec": 1000.0,
            "ok": 1,
            "errors": 0,
        },
    }


def test_schema_accepts_valid_doc():
    assert validate_bench_doc(_valid_doc()) == []


def test_schema_rejects_non_object():
    assert validate_bench_doc([1, 2]) != []


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda d: d.pop("benchmarks"), "missing required field 'benchmarks'"),
        (lambda d: d.__setitem__("schema", "other/9"), "schema is"),
        (lambda d: d["benchmarks"][0].pop("events_per_sec"), "events_per_sec"),
        (lambda d: d["benchmarks"][0].__setitem__("kind", "weird"), "unknown kind"),
        (lambda d: d["benchmarks"][0].__setitem__("status", "bad"), "status"),
        (lambda d: d.__setitem__("benchmarks", []), "empty"),
        (lambda d: d["totals"].__setitem__("ok", 7), "disagree"),
        (lambda d: d.__setitem__("workers", True), "workers"),
    ],
)
def test_schema_rejects_mutations(mutate, fragment):
    doc = _valid_doc()
    mutate(doc)
    problems = validate_bench_doc(doc)
    assert problems, f"mutation should have been rejected: {fragment}"
    assert any(fragment in problem for problem in problems), problems


def test_schema_error_status_requires_message():
    doc = _valid_doc()
    doc["benchmarks"][0]["status"] = "error"
    doc["totals"]["ok"] = 0
    doc["totals"]["errors"] = 1
    assert any("error" in p for p in validate_bench_doc(doc))
    doc["benchmarks"][0]["error"] = "ValueError: boom"
    assert validate_bench_doc(doc) == []


def test_schema_duplicate_names_rejected():
    doc = _valid_doc()
    doc["benchmarks"].append(dict(doc["benchmarks"][0]))
    doc["totals"]["ok"] = 2
    assert any("duplicate" in p for p in validate_bench_doc(doc))


# ----------------------------------------------------------------------
# Harness end-to-end (inline worker path)
# ----------------------------------------------------------------------
def test_run_bench_inline_produces_valid_doc(tmp_path):
    doc = run_bench(
        quick=True,
        workers=1,
        only=["engine-churn-heap", "engine-post-batch-storm"],
        root_seed=3,
        scheduler="heap",
    )
    assert validate_bench_doc(doc) == []
    assert doc["root_seed"] == 3
    by_name = {entry["name"]: entry for entry in doc["benchmarks"]}
    assert set(by_name) == {"engine-churn-heap", "engine-post-batch-storm"}
    for entry in by_name.values():
        assert entry["status"] == "ok"
        assert entry["events"] > 0
        assert entry["events_per_sec"] > 0
    path = write_bench_doc(doc, str(tmp_path))
    assert path.endswith(".json") and "BENCH_" in path
    with open(path, "r", encoding="utf-8") as handle:
        assert validate_bench_doc(json.load(handle)) == []


def test_run_bench_headlines_are_seed_deterministic():
    kwargs = dict(quick=True, workers=1, only=["engine-churn-heap"], root_seed=7)
    first = run_bench(**kwargs)
    second = run_bench(**kwargs)
    assert (
        first["benchmarks"][0]["headline"] == second["benchmarks"][0]["headline"]
    )


def test_run_bench_scheduler_flag_reaches_workers():
    import os

    from repro.sim.engine import SCHEDULER_ENV_VAR

    before = os.environ.get(SCHEDULER_ENV_VAR)
    doc = run_bench(
        quick=True, workers=1, only=["engine-post-batch-storm"], scheduler="calendar"
    )
    assert doc["scheduler"] == "calendar"
    assert doc["benchmarks"][0]["status"] == "ok"
    # The inline path must not leak scheduler selection into this process.
    assert os.environ.get(SCHEDULER_ENV_VAR) == before


def test_run_bench_unknown_only_raises():
    with pytest.raises(ValueError, match="unknown benchmark"):
        run_bench(only=["missing-bench"])


# ----------------------------------------------------------------------
# Baseline comparison (the CI perf gate)
# ----------------------------------------------------------------------
def test_compare_identical_docs_passes():
    doc = _valid_doc()
    assert compare_bench_docs(doc, doc) == []


def test_compare_flags_events_per_sec_collapse():
    baseline = _valid_doc()
    current = _valid_doc()
    current["benchmarks"][0]["events_per_sec"] = 100.0  # 10% of baseline
    problems = compare_bench_docs(current, baseline, tolerance=0.5)
    assert len(problems) == 1
    assert "events/sec fell" in problems[0]
    # Within the band: no problem.
    current["benchmarks"][0]["events_per_sec"] = 600.0
    assert compare_bench_docs(current, baseline, tolerance=0.5) == []


def test_compare_flags_missing_and_errored_benchmarks():
    baseline = _valid_doc()
    current = _valid_doc()
    current["benchmarks"][0]["name"] = "engine-churn-calendar"
    problems = compare_bench_docs(current, baseline)
    assert any("missing from this run" in p for p in problems)

    current = _valid_doc()
    current["benchmarks"][0]["status"] = "error"
    current["benchmarks"][0]["error"] = "boom"
    current["totals"]["ok"] = 0
    current["totals"]["errors"] = 1
    problems = compare_bench_docs(current, baseline)
    assert any("error now" in p for p in problems)


def test_compare_ignores_new_benchmarks_and_broken_baseline_entries():
    baseline = _valid_doc()
    current = _valid_doc()
    current["benchmarks"].append(
        dict(_valid_doc()["benchmarks"][0], name="shard-cluster-2", kind="shard")
    )
    current["totals"]["ok"] = 2
    # New benchmark in current: ignored (landing work must not force a
    # baseline regen).
    assert compare_bench_docs(current, baseline) == []
    # Broken baseline entry gates nothing.
    baseline["benchmarks"][0]["status"] = "error"
    baseline["benchmarks"][0]["error"] = "was broken"
    baseline["totals"]["ok"] = 0
    baseline["totals"]["errors"] = 1
    current = _valid_doc()
    current["benchmarks"][0]["events_per_sec"] = 1.0
    assert compare_bench_docs(current, baseline) == []


def test_compare_validates_schema_and_tolerance():
    assert compare_bench_docs(_valid_doc(), _valid_doc(), tolerance=1.5) == [
        "tolerance must be in [0, 1), got 1.5"
    ]
    problems = compare_bench_docs({"nope": True}, _valid_doc())
    assert problems and all(p.startswith("current document:") for p in problems)
