"""Causality-bounded counterparts of the ORD51x violations.

The bound can be proven three ways: a `now + <propagation/lookahead>`
sum, an arrival returned by `Link.reserve` (which charges serialization
and propagation), or a variable that holds one of those on *every* path
(must-analysis — a one-branch bound would not count).
"""


class BoundedOutbox:
    def __init__(self, sim, outbox, link, propagation_us):
        self.sim = sim
        self.outbox = outbox
        self.link = link
        self.propagation_us = propagation_us

    def publish_credit(self, src, flow_index):
        self.outbox.emit(
            self.sim.now + self.propagation_us, "credit", src, (flow_index,)
        )

    def transmit(self, skb, dst):
        arrival = self.link.reserve(skb.wire_size)
        self.outbox.emit(arrival, "skb", dst, skb.payload)

    def publish_either_way(self, express, src):
        if express:
            when = self.link.reserve(64)
        else:
            when = self.sim.now + self.propagation_us
        self.outbox.emit(when, "credit", src, ())


class SanctionedOutbox:
    def __init__(self, src):
        self.src = src
        self._seq = 0

    def emit(self, time, kind, dst, payload):
        self._seq += 1
        return CrossShardEvent(time, self.src, self._seq, kind, dst, payload)


class OwnHandle:
    def advance(self, until):
        # A handle may drive its *own* program — that is its job.
        self._program.run_until(until)
