"""Figure 13 — multi-flow throughput with dedicated Falcon cores.

One client per flow, RSS/RPS enabled everywhere, FALCON_CPUS dedicated
and idle. Panels: (a, b) UDP 16 B packet rate vs flow count on both
kernels; (c, d) TCP 4 KB with GRO splitting, including the Host+
configuration (host network + GRO splitting), where the paper reports
Host+ beating Host by up to 56% and Falcon beating even Host by up to
37%.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations, falcon_config
from repro.metrics.report import Table
from repro.workloads.multiflow import run_multiflow_tcp, run_multiflow_udp

FULL_FLOWS = (1, 2, 4, 6, 8)
QUICK_FLOWS = (2, 4)

#: Multi-flow layout: steering over two cores, Falcon set dedicated.
RPS = [1, 2]
FALCON_CPUS = [3, 4, 5, 6]
APPS = list(range(10, 18))


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 13", "Multi-flow UDP and TCP throughput")
    dur = durations(quick, 15.0, 8.0)
    flows_list = QUICK_FLOWS if quick else FULL_FLOWS
    kernels = ("4.19",) if quick else ("4.19", "5.4")

    for kernel in kernels:
        # --- UDP -----------------------------------------------------------
        table_udp = Table(
            ["flows", "Host kpps", "Con kpps", "Falcon kpps", "Falcon/Con"],
            title=f"UDP 16 B multi-flow, kernel {kernel}",
        )
        udp_series = {}
        for flows in flows_list:
            values = {}
            cases = [
                ("Host", dict(mode="host")),
                ("Con", dict(mode="overlay")),
                ("Falcon", dict(mode="overlay", falcon=falcon_config(cpus=FALCON_CPUS))),
            ]
            for label, kwargs in cases:
                result = run_multiflow_udp(
                    flows,
                    message_size=16,
                    rps_cpus=RPS,
                    app_cpus=APPS,
                    kernel=kernel,
                    **kwargs,
                    **dur,
                )
                values[label] = result.message_rate_pps
            table_udp.add_row(
                flows,
                values["Host"] / 1e3,
                values["Con"] / 1e3,
                values["Falcon"] / 1e3,
                values["Falcon"] / values["Con"] if values["Con"] else 0.0,
            )
            udp_series[flows] = values
        out.tables.append(table_udp)
        out.series[("udp", kernel)] = udp_series

        # --- TCP -----------------------------------------------------------
        table_tcp = Table(
            ["flows", "Host kmsg/s", "Host+ kmsg/s", "Con kmsg/s",
             "Falcon kmsg/s", "Falcon/Host"],
            title=f"TCP 4 KB multi-flow, kernel {kernel} (GRO splitting)",
        )
        tcp_series = {}
        for flows in flows_list:
            values = {}
            cases = [
                ("Host", dict(mode="host")),
                (
                    "Host+",
                    dict(
                        mode="host",
                        falcon=falcon_config(cpus=FALCON_CPUS, split_gro=True),
                    ),
                ),
                ("Con", dict(mode="overlay")),
                (
                    "Falcon",
                    dict(
                        mode="overlay",
                        falcon=falcon_config(cpus=FALCON_CPUS, split_gro=True),
                    ),
                ),
            ]
            for label, kwargs in cases:
                result = run_multiflow_tcp(
                    flows,
                    message_size=4096,
                    rps_cpus=RPS,
                    app_cpus=APPS,
                    window_msgs=64,
                    kernel=kernel,
                    **kwargs,
                    **dur,
                )
                values[label] = result.message_rate_pps
            table_tcp.add_row(
                flows,
                values["Host"] / 1e3,
                values["Host+"] / 1e3,
                values["Con"] / 1e3,
                values["Falcon"] / 1e3,
                values["Falcon"] / values["Host"] if values["Host"] else 0.0,
            )
            tcp_series[flows] = values
        out.tables.append(table_tcp)
        out.series[("tcp", kernel)] = tcp_series
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
