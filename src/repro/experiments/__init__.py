"""Experiment drivers — one module per figure of the paper.

Every module exposes ``run(quick=False) -> ExperimentOutput``; the
benchmark harness in ``benchmarks/`` regenerates each figure by calling
it and printing the rows/series the paper reports. ``quick=True`` runs a
reduced sweep (shorter windows, fewer points) for smoke tests.

| Module                | Paper figure |
|-----------------------|--------------|
| fig02_motivation      | Fig 2 (a–d)  |
| fig04_interrupts      | Fig 4        |
| fig05_serialization   | Fig 5        |
| fig06_flamegraph      | Fig 6        |
| fig09_splitting       | Fig 9a       |
| fig10_udp_stress      | Fig 10       |
| fig11_cpu_util        | Fig 11       |
| fig12_latency         | Fig 12       |
| fig13_multiflow       | Fig 13       |
| fig14_multicontainer  | Fig 14       |
| fig15_threshold       | Fig 15       |
| fig16_adaptability    | Fig 16       |
| fig17_webserving      | Fig 17       |
| fig18_datacaching     | Fig 18       |
| fig19_overhead        | Fig 19       |
"""

from repro.experiments.runner import ExperimentOutput, falcon_config, standard_modes

__all__ = ["ExperimentOutput", "falcon_config", "standard_modes"]
