"""DES201: real OS concurrency inside the simulated system."""

import threading  # expect: DES201


def process_in_background(fn, skb):
    worker = threading.Thread(target=fn, args=(skb,))
    worker.start()
    return worker
