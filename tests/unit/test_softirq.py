"""Unit tests for the softirq/NAPI subsystem."""

import pytest

from repro.hw.nic import Nic
from repro.hw.topology import Machine
from repro.kernel.costs import CostModel
from repro.kernel.skb import FlowKey, Skb
from repro.kernel.softirq import BacklogNapi, SoftirqNet
from repro.kernel.stages import Stage, Step, Transition
from repro.metrics.counters import NET_RX, RES
from repro.metrics.counters import HARDIRQ as IRQ_HARD
from repro.sim.engine import Simulator


class CollectExit(Transition):
    """Terminal transition that records deliveries for assertions."""

    def __init__(self):
        self.delivered = []

    def route(self, skb, cpu_index, stack):
        self.delivered.append((skb, cpu_index))


class DummyStack:
    def __init__(self, softnet=None):
        self.softnet = softnet

    def enqueue_backlog(self, target_cpu, skb, stage, from_cpu):
        self.softnet.enqueue_backlog(target_cpu, skb, stage, from_cpu)

    def deliver_to_socket(self, skb, cpu_index):
        raise AssertionError("not used in these tests")


def make_env(num_cpus=4, **kwargs):
    sim = Simulator()
    machine = Machine(sim, num_cpus=num_cpus)
    stack = DummyStack()
    softnet = SoftirqNet(machine, CostModel(), stack=stack, **kwargs)
    stack.softnet = softnet
    return sim, machine, softnet


def simple_stage(name="stage", cost=1.0, exit=None):
    exit = exit or CollectExit()
    return Stage(name, 2, [Step(name + "_fn", lambda skb: cost)], exit), exit


def make_skb(sport=1):
    return Skb(FlowKey.make(1, 2, sport=sport), size=100)


class TestBacklogEnqueue:
    def test_local_enqueue_processed(self):
        sim, machine, softnet = make_env()
        stage, exit = simple_stage()
        softnet.enqueue_backlog(0, make_skb(), stage, from_cpu=0)
        sim.run()
        assert len(exit.delivered) == 1
        assert exit.delivered[0][1] == 0

    def test_remote_enqueue_pays_ipi_and_res(self):
        sim, machine, softnet = make_env()
        stage, exit = simple_stage()
        softnet.enqueue_backlog(2, make_skb(), stage, from_cpu=0)
        sim.run()
        assert exit.delivered[0][1] == 2
        assert machine.interrupts.on_cpu(RES, 2) == 1
        # The IPI delay plus processing pushed completion past the costs.
        assert sim.now >= CostModel().ipi_delay_us

    def test_remote_overflow_drops(self):
        sim, machine, softnet = make_env(backlog_capacity=4)
        stage, exit = simple_stage(cost=100.0)
        for i in range(10):
            softnet.enqueue_backlog(1, make_skb(sport=i), stage, from_cpu=0)
        assert softnet.backlog_drops() > 0

    def test_local_enqueue_never_drops(self):
        sim, machine, softnet = make_env(backlog_capacity=2)
        stage, exit = simple_stage(cost=100.0)
        for i in range(10):
            softnet.enqueue_backlog(1, make_skb(sport=i), stage, from_cpu=1)
        assert softnet.backlog_drops() == 0
        assert softnet.backlog_depth(1) >= 8

    def test_softirq_raise_demand_counted_per_call(self):
        sim, machine, softnet = make_env()
        stage, _exit = simple_stage()
        for i in range(5):
            softnet.enqueue_backlog(1, make_skb(sport=i), stage, from_cpu=0)
        # Demand side: one raise per enqueued packet.
        assert softnet.softirq_raises == 5
        # /proc/softirqs side: coalesced — the napi was already scheduled
        # after the first packet (kernel ____napi_schedule semantics).
        assert machine.interrupts.on_cpu(NET_RX, 1) == 1

    def test_stage_executions_counted_per_packet(self):
        sim, machine, softnet = make_env()
        stage, _exit = simple_stage("demo")
        for i in range(7):
            softnet.enqueue_backlog(0, make_skb(sport=i), stage, from_cpu=0)
        sim.run()
        assert softnet.stage_executions["demo"] == 7


class TestPolling:
    def test_batch_respects_budget_and_rekicks(self):
        sim, machine, softnet = make_env(budget=8, batch_max=4)
        stage, exit = simple_stage(cost=0.5)
        for i in range(20):
            softnet.enqueue_backlog(0, make_skb(sport=i), stage, from_cpu=0)
        sim.run()
        assert len(exit.delivered) == 20

    def test_fifo_order_within_queue(self):
        sim, machine, softnet = make_env()
        stage, exit = simple_stage()
        skbs = [make_skb(sport=i) for i in range(10)]
        for skb in skbs:
            softnet.enqueue_backlog(0, skb, stage, from_cpu=0)
        sim.run()
        assert [skb for skb, _cpu in exit.delivered] == skbs

    def test_round_robin_between_stage_queues(self):
        """Two stages on one core share the softirq fairly (NAPI rotation)."""
        sim, machine, softnet = make_env(batch_max=2)
        stage_a, exit_a = simple_stage("a", cost=1.0)
        stage_b, exit_b = simple_stage("b", cost=1.0)
        for i in range(8):
            softnet.enqueue_backlog(0, make_skb(sport=i), stage_a, from_cpu=0)
        for i in range(8):
            softnet.enqueue_backlog(0, make_skb(sport=100 + i), stage_b, from_cpu=0)
        # Run just long enough for roughly half the work.
        sim.run(until=10.0)
        assert exit_a.delivered and exit_b.delivered  # neither starved

    def test_chained_stages_across_cpus(self):
        sim, machine, softnet = make_env()
        final, exit = simple_stage("final")

        class HopExit(Transition):
            def route(self, skb, cpu_index, stack):
                stack.enqueue_backlog(2, skb, final, from_cpu=cpu_index)

        first = Stage("first", 2, [Step("fn", lambda skb: 1.0)], HopExit())
        softnet.enqueue_backlog(1, make_skb(), first, from_cpu=0)
        sim.run()
        assert exit.delivered[0][1] == 2

    def test_softirq_switch_charged_on_stage_change(self):
        sim, machine, softnet = make_env()
        stage_a, _ = simple_stage("a")
        stage_b, _ = simple_stage("b")
        softnet.enqueue_backlog(0, make_skb(1), stage_a, from_cpu=0)
        softnet.enqueue_backlog(0, make_skb(2), stage_b, from_cpu=0)
        sim.run()
        assert machine.acct.busy_us_label(0, "softirq_switch") >= 2 * 0.59


class TestNicAttach:
    def test_hardirq_and_driver_poll(self):
        sim, machine, softnet = make_env()
        stage, exit = simple_stage("pnic", cost=0.5)
        nic = Nic(num_queues=1, irq_cpus=[0])
        softnet.attach_nic(nic, stage)
        flow = FlowKey.make(1, 2)
        for i in range(5):
            nic.receive(Skb(flow, size=100, seq=i))
        sim.run()
        assert len(exit.delivered) == 5
        assert machine.interrupts.on_cpu(IRQ_HARD, 0) == 1  # NAPI masked the rest

    def test_irq_reenabled_after_drain(self):
        sim, machine, softnet = make_env()
        stage, exit = simple_stage("pnic", cost=0.5)
        nic = Nic(num_queues=1, irq_cpus=[0])
        softnet.attach_nic(nic, stage)
        flow = FlowKey.make(1, 2)
        nic.receive(Skb(flow, size=100))
        sim.run()
        nic.receive(Skb(flow, size=100))
        sim.run()
        assert machine.interrupts.on_cpu(IRQ_HARD, 0) == 2
        assert len(exit.delivered) == 2

    def test_multi_queue_irq_affinity(self):
        sim, machine, softnet = make_env()
        stage, exit = simple_stage("pnic", cost=0.5)
        nic = Nic(num_queues=2, irq_cpus=[0, 1])
        softnet.attach_nic(nic, stage)
        # Find flows hashing to each queue.
        flows = [FlowKey.make(1, 2, sport=sport) for sport in range(32)]
        for flow in flows:
            nic.receive(Skb(flow, size=64))
        sim.run()
        served_cpus = {cpu for _skb, cpu in exit.delivered}
        assert served_cpus == {0, 1}


class TestBacklogNapi:
    def test_take_respects_limit(self):
        napi = BacklogNapi(capacity=100)
        stage, _ = simple_stage()
        for i in range(10):
            napi.enqueue(make_skb(i), stage)
        items = napi.take(3)
        assert len(items) == 3
        assert napi.has_work()

    def test_capacity_drop(self):
        napi = BacklogNapi(capacity=2)
        stage, _ = simple_stage()
        assert napi.enqueue(make_skb(1), stage)
        assert napi.enqueue(make_skb(2), stage)
        assert not napi.enqueue(make_skb(3), stage)
        assert napi.drops == 1
