"""Clean twin of time502_bad: wall time only times the harness itself."""

import time


def arm_timer(sim, delay_us, handler):
    t_start = time.time()
    sim.schedule(delay_us, handler)
    return time.time() - t_start
