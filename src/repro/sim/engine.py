"""Deterministic discrete-event simulation engine.

The engine is an event loop over a pluggable priority queue: events are
``(time, sequence)``-ordered callbacks held by a
:class:`~repro.sim.scheduler.Scheduler`. Determinism matters — two runs
with the same seed must produce identical results, so ties in event time
are broken by insertion order, never by object identity, and every
scheduler implementation honours that ordering exactly.

Design notes
------------
* Events are lightweight ``__slots__`` objects so that per-packet work
  (which can mean hundreds of thousands of events per run) stays cheap.
* The queue implementation is chosen per :class:`Simulator` — by name
  (``"heap"`` or ``"calendar"``), by instance, or from the
  ``REPRO_SIM_SCHEDULER`` environment variable (default ``"heap"``).
  All implementations produce identical event orders.
* Cancellation is lazy: a cancelled event stays queued and is skipped
  when popped. This keeps :meth:`Simulator.cancel` O(1); the scheduler
  compacts itself when dead entries dominate, so schedule-and-cancel
  workloads no longer grow the queue without bound.
* Fire-and-forget callers that never cancel should prefer
  :meth:`Simulator.post` / :meth:`Simulator.post_at` /
  :meth:`Simulator.post_batch` over ``schedule``: no handle escapes, so
  the engine recycles those events through a freelist instead of
  allocating a fresh object per packet.
* The simulator never advances time backwards; scheduling with a negative
  delay raises :class:`~repro.sim.errors.SimulationError`.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from repro.sim.errors import SimulationError
from repro.sim.events import Event
from repro.sim.scheduler import Scheduler, make_scheduler

__all__ = ["Event", "Simulator", "global_events_processed", "note_external_events"]

#: Environment variable consulted when no scheduler is passed explicitly.
SCHEDULER_ENV_VAR = "REPRO_SIM_SCHEDULER"

#: Upper bound on recycled Event objects kept per simulator.
_FREELIST_CAP = 4096

#: Process-wide count of events executed across every Simulator instance.
#: The bench harness reads this to compute events/sec for workloads that
#: construct their simulators internally.
_global_events = 0


def global_events_processed() -> int:
    """Events executed so far by all simulators in this process."""
    return _global_events


def note_external_events(count: int) -> None:
    """Fold events executed by another process into the global counter.

    The sharded engine runs simulators inside worker processes whose
    counters die with them; the coordinator reports their totals here so
    that events/sec accounting (the bench harness) sees the whole run.
    """
    global _global_events
    if count < 0:
        raise SimulationError(f"cannot note a negative event count ({count})")
    _global_events += count


def _noop() -> None:
    """Placeholder callback installed on freelisted events."""


class Simulator:
    """Event loop with a microsecond clock.

    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.schedule(5.0, hits.append, "a")
    >>> _ = sim.schedule(1.0, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self, scheduler: Union[str, Scheduler, None] = None) -> None:
        self.now: float = 0.0
        if scheduler is None:
            scheduler = os.environ.get(SCHEDULER_ENV_VAR, "heap")
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler)
        self._scheduler: Scheduler = scheduler
        self._seq: int = 0
        self._halted: bool = False
        self._freelist: List[Event] = []
        self.events_processed: int = 0
        #: Ownership ledger hook (REPRO_SANITIZE=1). None in normal runs:
        #: every instrumented site pays one ``is None`` check and nothing
        #: else, and the ledger itself never schedules or reads the
        #: clock, so sanitized traces stay byte-identical.
        self._san: Optional[Any] = None
        if os.environ.get("REPRO_SANITIZE"):
            from repro.validate.sanitize import current_ledger

            self._san = current_ledger()
            if self._san is not None and hasattr(type(self._scheduler), "_san"):
                self._scheduler._san = self._san
        #: Optional :class:`repro.validate.InvariantMonitor` hook. When
        #: None (the default) the event loop pays one attribute check per
        #: event and nothing else.
        self.monitor: Optional[Any] = None

    @property
    def scheduler(self) -> Scheduler:
        """The priority queue backing this simulator."""
        return self._scheduler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        if self._san is not None:
            self._san.acquire("event", id(event), "engine.schedule", event)
        self._scheduler.push(event)
        return event

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, event is recycled.

        Use this on hot paths that never cancel — the event object goes
        back to a freelist after the callback returns instead of being
        garbage.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._scheduler.push(self._acquire(self.now + delay, fn, args))

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        self._scheduler.push(self._acquire(time, fn, args))

    def post_batch(
        self,
        delay: float,
        fn: Callable[..., Any],
        args_list: Iterable[Tuple[Any, ...]],
    ) -> int:
        """Fire-and-forget a burst of ``fn(*args)`` calls at one instant.

        All events share the timestamp ``now + delay`` and run in
        ``args_list`` order (sequence numbers are assigned in iteration
        order). Built for NAPI poll storms, where a single poll round
        fans tens of per-packet continuations into the queue: the
        scheduler gets them as one bulk insert. Returns the number of
        events queued.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        events = [self._acquire(time, fn, args) for args in args_list]
        self._scheduler.push_many(events)
        return len(events)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        if event.queued and not event.cancelled:
            event.cancelled = True
            self._scheduler.note_cancel(event)

    def _acquire(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...]) -> Event:
        """Build a recyclable event, reusing a freelisted one if possible."""
        free = self._freelist
        if free:
            event = free.pop()
            event.time = time
            event.seq = self._seq
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, self._seq, fn, args)
            event.reusable = True
        self._seq += 1
        if self._san is not None:
            self._san.acquire("event", id(event), "engine.post", event)
        return event

    def _recycle(self, event: Event) -> None:
        """Return a fired ``post*`` event to the freelist."""
        event.fn = _noop
        event.args = ()
        if len(self._freelist) < _FREELIST_CAP:
            self._freelist.append(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events in time order.

        Args:
            until: stop once the clock would pass this timestamp. Events at
                exactly ``until`` are still processed; the clock is left at
                ``until`` if the queue ran dry earlier.
            max_events: safety valve — stop after this many events.
        """
        global _global_events
        if self._halted:
            raise SimulationError("simulator has been halted")
        processed = 0
        scheduler = self._scheduler
        while True:
            event = scheduler.peek()
            if event is None:
                break
            if until is not None and event.time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            scheduler.pop()
            if self.monitor is not None:
                self.monitor.on_event(self.now, event.time)
            self.now = event.time
            try:
                event.fn(*event.args)
            finally:
                # A raising callback must not leak the event: recycle on
                # every exit so the pool keeps its object (and the
                # sanitizer sees exactly one release per fire).
                processed += 1
                if self._san is not None:
                    self._san.release("event", id(event), "engine.fired")
                if event.reusable:
                    self._recycle(event)
            if self._halted:
                break
        self.events_processed += processed
        _global_events += processed
        if until is not None and self.now < until and not self._halted:
            self.now = until

    def step(self) -> bool:
        """Process a single event. Returns False when the queue is empty."""
        global _global_events
        event = self._scheduler.pop()
        if event is None:
            return False
        if self.monitor is not None:
            self.monitor.on_event(self.now, event.time)
        self.now = event.time
        try:
            event.fn(*event.args)
        finally:
            # Mirror run(): no leak (and exactly one release) on a
            # raising callback.
            self.events_processed += 1
            _global_events += 1
            if self._san is not None:
                self._san.release("event", id(event), "engine.fired")
            if event.reusable:
                self._recycle(event)
        return True

    def halt(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._halted = True

    def resume(self) -> None:
        """Clear a previous :meth:`halt` so that :meth:`run` works again."""
        self._halted = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Events still queued (cancelled ones count until compacted)."""
        return len(self._scheduler)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None when idle."""
        event = self._scheduler.peek()
        return event.time if event is not None else None
