"""Determinism: a run is a pure function of (code, seed).

Reproducibility underpins both the figure harness (results/ must be
regenerable) and the paper's "consistent across runs" claims; any use of
unseeded randomness or dict-ordering luck breaks it.
"""

import pytest

from repro.core.config import FalconConfig
from repro.workloads.sockperf import Experiment

FAST = dict(duration_ms=6.0, warmup_ms=3.0)


def run_once(seed=0):
    exp = Experiment(mode="overlay", falcon=FalconConfig(), seed=seed)
    return exp.run_udp_stress(16, **FAST)


def fingerprint(result):
    return (
        result.messages_delivered,
        round(result.message_rate_pps, 6),
        round(result.latency["avg"], 9),
        round(result.latency["p99.9"], 9),
        tuple(round(u, 9) for u in result.cpu_util),
        tuple(sorted(result.interrupts.items())),
        result.softirq_raises,
        tuple(sorted(result.drops.items())),
    )


def test_same_seed_same_everything():
    assert fingerprint(run_once(0)) == fingerprint(run_once(0))


def test_different_seed_different_flows():
    first = run_once(0)
    second = run_once(7)
    # Same physics, different flow hashes: rates are close but the exact
    # event interleavings (and so latencies) differ.
    assert first.message_rate_pps == pytest.approx(
        second.message_rate_pps, rel=0.25
    )


def test_tcp_run_deterministic():
    def run():
        exp = Experiment(mode="overlay", falcon=FalconConfig(split_gro=True))
        return exp.run_tcp_stream(4096, window_msgs=16, **FAST)

    assert fingerprint(run()) == fingerprint(run())


def test_memcached_deterministic():
    from repro.workloads.memcached import run_memcached

    first = run_memcached(2, duration_ms=5, warmup_ms=3)
    second = run_memcached(2, duration_ms=5, warmup_ms=3)
    assert first.requests_completed == second.requests_completed
    assert first.latency["p99"] == second.latency["p99"]


# ----------------------------------------------------------------------
# Seed-sweep matrix: bit-identical counters AND golden traces
# ----------------------------------------------------------------------
# The spot checks above catch gross nondeterminism; the matrix pins down
# the full interrupt-counter state and the canonical packet trace for
# every (seed, steering) cell, so a single wandering event anywhere in
# the pipeline fails the exact cell that saw it.

MATRIX_SEEDS = [0, 1, 2, 3, 4]


def _traced_run(seed, use_falcon):
    from repro.metrics.tracing import PacketTracer
    from repro.validate import serialize_traces, trace_doc_to_json
    from repro.workloads.sockperf import Testbed

    bed = Testbed(
        mode="overlay",
        falcon=FalconConfig() if use_falcon else None,
        seed=seed,
    )
    tracer = PacketTracer(sample_every=7, max_messages=48)
    bed.stack.tracer = tracer
    # Constant-rate pacing: stable regardless of process history (the
    # Poisson stream names depend on the process-global flow counter).
    bed.add_udp_flow(512, rate_pps=50_000.0)
    bed.run(warmup_ms=2.0, measure_ms=5.0)
    return (
        tuple(sorted(bed.host.machine.interrupts.snapshot().items())),
        tuple(sorted(bed.stack.drop_counts().items())),
        trace_doc_to_json(serialize_traces(tracer)),
    )


@pytest.mark.slow
@pytest.mark.parametrize("use_falcon", [False, True], ids=["vanilla", "falcon"])
@pytest.mark.parametrize("seed", MATRIX_SEEDS)
def test_seed_matrix_counters_and_traces_bit_identical(seed, use_falcon):
    first = _traced_run(seed, use_falcon)
    second = _traced_run(seed, use_falcon)
    assert first[0] == second[0], "interrupt counters diverged between runs"
    assert first[1] == second[1], "drop counters diverged between runs"
    assert first[2] == second[2], "canonical packet traces diverged between runs"


@pytest.mark.slow
def test_seed_matrix_seeds_actually_differ():
    """The matrix is vacuous if every seed produces the same run."""
    traces = {_traced_run(seed, True)[2] for seed in MATRIX_SEEDS}
    assert len(traces) > 1
