"""Exception hierarchy for the reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised when the simulator is used incorrectly.

    Examples: scheduling an event in the past, or running a simulator
    that has been explicitly halted.
    """


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class ShardError(SimulationError):
    """Raised when the sharded engine loses its synchronization contract.

    Examples: a shard worker that died or stopped answering inside a
    barrier window, a cross-shard event record that decodes to garbage,
    or a record whose timestamp undercuts the window barrier that is
    supposed to bound it (a causality violation — the lookahead was
    misdeclared).
    """


class TopologyError(ReproError):
    """Raised when hosts, devices or containers are wired incorrectly."""
