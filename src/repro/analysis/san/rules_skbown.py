"""Skb ownership-transfer rules (OWN611, OWN612, OWN613).

Every skb has exactly one owner at any program point. Inside one host's
pipeline the stages *borrow* the skb as it moves through them, but two
boundaries genuinely transfer ownership:

* **out across the wire** — encoding an skb into a
  :class:`~repro.sim.shard.records.CrossShardEvent` payload
  (``encode_skb`` / ``to_wire``) relinquishes the local object; the
  remote shard will materialize its own. Touching the local skb after
  the encode means two shards now act on "the same" packet.
* **into a holding structure** — a GRO list, a defrag table, a backlog
  queue. Storing the skb *and* forwarding it leaves two owners: the
  container will replay an object the pipeline already moved on.

``OWN611``  use after relinquish: an skb passed to a wire-encode op is
            used again in the same function (dataflow on the simflow
            CFG engine, must-violation discipline).
``OWN612``  retain and forward: a path stores an skb into an
            attribute/container and then returns that same skb — a
            reference survives the stage transition alongside the
            forwarded one. Path-sensitive on the same CFG dataflow:
            GRO's store-*or*-forward shape (held on one path, returned
            on the disjoint other) is legal and stays silent.
``OWN613``  shared assume: a ``decode_*``/``from_wire`` boundary
            constructor returns a pre-existing object (a cache/attribute
            fetch) instead of constructing a fresh one — the "assumed"
            skb is still owned by whatever structure it came from.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.cfg import Cfg, build_cfg
from repro.analysis.flow.engine import call_sites, fixpoint, walk_block
from repro.analysis.flow.rules_time import _RawFinding
from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Project,
    Rule,
    last_segment,
)

#: Abstract state for OWN611/OWN612: skb local -> ownership tokens
#: (``owned``, ``relinquished``, or ``retained@<line>`` after the skb
#: was stored into a holding structure at that line).
State = Dict[str, FrozenSet[str]]

_OWNED = frozenset(("owned",))
_RELINQUISHED = frozenset(("relinquished",))

#: Callee last-segments that serialize an skb onto the wire — the local
#: object is relinquished the moment these see it.
_RELINQUISH_CALLS = frozenset(("encode_skb", "to_wire"))

#: Names of boundary constructors that must *assume* ownership (OWN613).
_ASSUME_PREFIXES = ("decode_", "from_wire")


def _is_skb_name(name: str, annotation: Optional[ast.expr] = None) -> bool:
    if name == "skb" or name.endswith("_skb") or name.startswith("skb_"):
        return True
    if annotation is not None:
        tail = last_segment(annotation)
        if tail == "Skb":
            return True
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return annotation.value.split(".")[-1] == "Skb"
    return False


class _RelinquishAnalysis:
    """OWN611/OWN612 forward dataflow over skb-typed locals."""

    def __init__(
        self,
        ctx: FileContext,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        report: Optional[List[_RawFinding]] = None,
    ) -> None:
        self.ctx = ctx
        self.func = func
        self.report = report

    # -- engine contract ------------------------------------------------
    def initial(self, cfg: Cfg) -> State:
        state: State = {}
        args = cfg.func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg in ("self", "cls"):
                continue
            if _is_skb_name(arg.arg, arg.annotation):
                state[arg.arg] = _OWNED
        return state

    def join(self, a: State, b: State) -> State:
        if a == b:
            return a
        out = dict(a)
        for key, value in b.items():
            existing = out.get(key)
            out[key] = value if existing is None else existing | value
        return out

    def transfer(self, stmt: ast.stmt, state: State) -> State:
        state = dict(state)
        for call, name in sorted(
            call_sites(stmt),
            key=lambda pair: (pair[0].lineno, pair[0].col_offset),
        ):
            self._apply_call(call, name, state)
        if isinstance(stmt, ast.Assign):
            self._apply_assign(stmt.targets, stmt.value, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._apply_assign([stmt.target], stmt.value, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_fresh(stmt.target, state)
        elif isinstance(stmt, ast.Return) and isinstance(
            stmt.value, ast.Name
        ):
            self._apply_return(stmt, stmt.value.id, state)
        return state

    # -- transfer pieces ------------------------------------------------
    def _apply_assign(
        self, targets: List[ast.expr], value: ast.expr, state: State
    ) -> None:
        fresh = isinstance(value, ast.Call) or (
            isinstance(value, ast.Name) and state.get(value.id) == _OWNED
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if fresh and _is_skb_name(target.id):
                    state[target.id] = _OWNED
                else:
                    state.pop(target.id, None)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._bind_fresh(element, state)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                # Storing the skb into a holding structure: the
                # structure owns it now; the local name only borrows.
                if isinstance(value, ast.Name) and value.id in state:
                    if state[value.id] == _RELINQUISHED:
                        self._emit(
                            target,
                            "OWN611",
                            f"skb '{value.id}' stored after being "
                            "wire-encoded — the remote shard owns this "
                            "packet now; the held copy would replay it",
                        )
                    state[value.id] = frozenset(
                        (f"retained@{target.lineno}",)
                    )

    def _bind_fresh(self, target: ast.expr, state: State) -> None:
        if isinstance(target, ast.Name):
            if _is_skb_name(target.id):
                state[target.id] = _OWNED
            else:
                state.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_fresh(element, state)
        elif isinstance(target, ast.Starred):
            self._bind_fresh(target.value, state)

    def _apply_call(self, call: ast.Call, name: str, state: State) -> None:
        tracked = [
            arg.id
            for arg in (*call.args, *[kw.value for kw in call.keywords])
            if isinstance(arg, ast.Name) and arg.id in state
        ]
        if name in _RELINQUISH_CALLS:
            for var in tracked:
                if state[var] == _RELINQUISHED:
                    self._emit(
                        call,
                        "OWN611",
                        f"skb '{var}' wire-encoded again via '{name}' — "
                        "it was already relinquished to another shard",
                    )
                state[var] = _RELINQUISHED
            return
        # Pipeline calls borrow; only flag when the skb is provably gone.
        for var in tracked:
            if state[var] == _RELINQUISHED:
                self._emit(
                    call,
                    "OWN611",
                    f"skb '{var}' passed to '{name}' after being "
                    "wire-encoded — the remote shard owns this packet "
                    "now; two owners would process it twice",
                )
        # Container mutators take ownership of what is handed to them.
        if name in ("append", "appendleft", "add") and isinstance(
            call.func, ast.Attribute
        ):
            for var in tracked:
                state[var] = frozenset((f"retained@{call.lineno}",))

    def _apply_return(
        self, stmt: ast.Return, name: str, state: State
    ) -> None:
        tokens = state.get(name)
        if not tokens:
            return
        if all(token.startswith("retained@") for token in tokens):
            store_line = min(
                int(token.split("@", 1)[1]) for token in tokens
            )
            self._emit(
                stmt,
                "OWN612",
                f"'{self.func.name}' returns skb '{name}' it retained "
                f"at line {store_line} — a reference survives the "
                "stage transition, so the packet has two owners",
            )
        elif tokens == _RELINQUISHED:
            self._emit(
                stmt,
                "OWN611",
                f"skb '{name}' returned after being wire-encoded — "
                "the remote shard owns this packet now",
            )
        # A return ends the path; the name carries nothing onward.
        state.pop(name, None)

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if self.report is None:
            return
        self.report.append(
            _RawFinding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )


def _own_nodes(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Iterator[ast.AST]:
    """Walk ``func``'s own body — nested defs/lambdas are other scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _assume_findings(
    ctx: FileContext,
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
    report: List[_RawFinding],
) -> None:
    """OWN613: a decode/from_wire boundary must construct, not share."""
    if not any(
        func.name.startswith(prefix) or func.name == prefix.rstrip("_")
        for prefix in _ASSUME_PREFIXES
    ):
        return
    # Names bound from a fetch (attribute/subscript load) — returning
    # one of these shares an object some structure still owns. Collected
    # in a first pass: the tree walk is not in source order.
    fetched: Set[str] = set()
    for node in _own_nodes(func):
        if isinstance(node, ast.Assign) and isinstance(
            node.value, (ast.Attribute, ast.Subscript)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    fetched.add(target.id)
    for node in _own_nodes(func):
        if isinstance(node, ast.Return) and node.value is not None:
            value = node.value
            shared = isinstance(value, (ast.Attribute, ast.Subscript)) or (
                isinstance(value, ast.Name) and value.id in fetched
            )
            if shared:
                report.append(
                    _RawFinding(
                        path=ctx.path,
                        line=value.lineno,
                        col=value.col_offset,
                        rule="OWN613",
                        message=(
                            f"boundary constructor '{func.name}' returns "
                            "a pre-existing object instead of "
                            "constructing a fresh one — assuming "
                            "ownership from the wire requires a new "
                            "instance, not a shared reference"
                        ),
                    )
                )


#: Per-project memo so all three OWN61x rules walk once.
_FINDINGS_CACHE: Dict[int, List[_RawFinding]] = {}


def skbown_findings(project: Project) -> List[_RawFinding]:
    key = id(project)
    cached = _FINDINGS_CACHE.get(key)
    if cached is not None:
        return cached
    report: List[_RawFinding] = []
    for ctx in project.files:
        if ctx.tree is None:
            continue
        for func in ctx.functions():
            cfg = build_cfg(func)
            silent = _RelinquishAnalysis(ctx, func, report=None)
            states = fixpoint(cfg, silent)
            reporter = _RelinquishAnalysis(ctx, func, report=report)
            walk_block(cfg, states, reporter, lambda stmt, state: None)
            _assume_findings(ctx, func, report)
    unique = sorted(
        set(report), key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
    )
    _FINDINGS_CACHE.clear()
    _FINDINGS_CACHE[key] = unique
    return unique


class _SkbOwnRuleBase(Rule):
    scope = None  # all analyzed files; the in-tree sources must stay clean

    def check_project(self, project: Project) -> Iterator[Finding]:
        by_path = {ctx.path: ctx for ctx in project.files}
        for raw in skbown_findings(project):
            if raw.rule != self.id:
                continue
            ctx = by_path.get(raw.path)
            if ctx is not None and not self.applies_to(ctx.module):
                continue
            yield Finding(
                path=raw.path,
                line=raw.line,
                col=raw.col,
                rule=raw.rule,
                message=raw.message,
            )


class UseAfterRelinquishRule(_SkbOwnRuleBase):
    id = "OWN611"
    title = "no use of an skb after it was wire-encoded"
    rationale = (
        "encode_skb flattens the packet into a CrossShardEvent payload; "
        "from that point the receiving shard's decode_skb owns the "
        "packet. A sender that keeps mutating its local copy diverges "
        "from what actually crossed the wire — the shard-equivalence "
        "suite can only catch the symptom, not the site."
    )


class RetainAndForwardRule(_SkbOwnRuleBase):
    id = "OWN612"
    title = "a stage must not retain an skb it forwards"
    rationale = (
        "GRO lists, defrag tables and backlogs take ownership of what "
        "is appended to them; returning the same skb hands a second "
        "owner to the next stage. The held copy later replays a packet "
        "the pipeline already delivered — double-counted against the "
        "conservation invariant."
    )


class SharedAssumeRule(_SkbOwnRuleBase):
    id = "OWN613"
    title = "decode/from_wire must construct a fresh object"
    rationale = (
        "The wire is a copy boundary: from_wire/decode_skb assume "
        "ownership by building a new instance from primitives. "
        "Returning a cached or shared object couples two shards through "
        "mutable state the barrier protocol knows nothing about."
    )


SKBOWN_RULES: Tuple[Rule, ...] = (
    UseAfterRelinquishRule(),
    RetainAndForwardRule(),
    SharedAssumeRule(),
)
