"""Falcon configuration.

Mirrors the tunables the paper exposes: the Falcon CPU set
(``FALCON_CPUS``), the load threshold that enables/disables Falcon
(``FALCON_LOAD_THRESHOLD``, Section 6.1 finds 80–90% works best), the
balancing policy (two-choice vs the static ablation of Figure 16), and
whether GRO splitting is active (Section 5's "GRO-splitting").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.errors import ConfigurationError

#: Balancing policies understood by :func:`repro.core.balancing.make_balancer`.
POLICY_TWO_CHOICE = "two_choice"
POLICY_STATIC = "static"
POLICY_LEAST_LOADED = "least_loaded"

_POLICIES = (POLICY_TWO_CHOICE, POLICY_STATIC, POLICY_LEAST_LOADED)


@dataclass
class FalconConfig:
    """All Falcon knobs, with the paper's defaults."""

    #: Master switch. When False the stack behaves like vanilla Linux.
    enabled: bool = True
    #: FALCON_CPUS — the cores softirq stages may be pipelined onto.
    #: Defaults avoid the conventional IRQ (0), RPS (1) and application
    #: (2) cores, matching the paper's use of dedicated cores for flow
    #: parallelization in the micro-benchmarks (Section 6.1).
    cpus: List[int] = field(default_factory=lambda: [3, 4, 5, 6])
    #: FALCON_LOAD_THRESHOLD. Falcon is bypassed when the average load of
    #: the Falcon CPU set is at or above this fraction (Algorithm 1 line 6).
    load_threshold: float = 0.85
    #: ``None`` means "always on" — the ablation of Figure 15.
    threshold_enabled: bool = True
    #: Balancing policy: two_choice (paper), static (first choice only),
    #: or least_loaded (an aggressive strawman for ablation).
    policy: str = POLICY_TWO_CHOICE
    #: Enable softirq splitting of the physical NIC's GRO work.
    split_gro: bool = False
    #: Workaround from Section 6.4: pin the split function back onto the
    #: core it came from (effectively disabling the split's parallelism).
    split_same_core: bool = False

    def validate(self, num_cpus: int) -> None:
        if not self.cpus:
            raise ConfigurationError("FALCON_CPUS must not be empty")
        for cpu in self.cpus:
            if not 0 <= cpu < num_cpus:
                raise ConfigurationError(
                    f"Falcon CPU {cpu} outside machine (0..{num_cpus - 1})"
                )
        if not 0.0 < self.load_threshold <= 1.0:
            raise ConfigurationError("load threshold must be in (0, 1]")
        if self.policy not in _POLICIES:
            raise ConfigurationError(
                f"unknown balancing policy {self.policy!r}; pick one of {_POLICIES}"
            )

    @classmethod
    def disabled(cls) -> "FalconConfig":
        """Vanilla-overlay configuration (Falcon compiled out)."""
        return cls(enabled=False, cpus=[0])


@dataclass
class FlowCacheConfig:
    """ONCache-style per-flow fast-path cache knobs.

    The cache is a *datapath* selection orthogonal to Falcon's steering:
    a cache hit removes the device-chain work entirely, Falcon
    parallelizes whatever work remains. Both can be on at once.
    """

    #: Master switch. When False the stack builds no flow tables.
    enabled: bool = True
    #: LRU entry budget, per direction (the ingress and egress tables
    #: each hold this many flows).
    capacity: int = 128

    def validate(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError("flow cache capacity must be >= 1")

    @classmethod
    def disabled(cls) -> "FlowCacheConfig":
        """Explicit cache-off configuration."""
        return cls(enabled=False)
