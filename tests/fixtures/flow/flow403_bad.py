"""FLOW403: double free and use-after-free of an skb."""


def use_after_free(stack, skb):
    stack.consume_skb(skb)
    stack.netif_rx(skb)  # expect: FLOW403


def double_free(stack, skb):
    stack.consume_skb(skb)
    stack.free_skb(skb)  # expect: FLOW403
