"""Network devices on the overlay receive path.

Each module builds the step list for one device's softirq stage, using
the function names the paper's Figure 3 call graph shows:

* :mod:`~repro.kernel.devices.physical` — the NIC driver
  (``mlx5e_napi_poll``: skb allocation + ``napi_gro_receive``),
* :mod:`~repro.kernel.devices.vxlan`    — outer UDP receive +
  ``vxlan_rcv`` decapsulation, and the VXLAN device's ``gro_cell_poll``,
* :mod:`~repro.kernel.devices.bridge`   — ``br_handle_frame``,
* :mod:`~repro.kernel.devices.veth`     — ``veth_xmit`` into the
  container's network namespace.

Device indexes (``ifindex``) are what Falcon mixes into its CPU hash.
"""

from repro.kernel.devices.base import (
    IFINDEX_BRIDGE,
    IFINDEX_PNIC,
    IFINDEX_PNIC_SPLIT,
    IFINDEX_VETH,
    IFINDEX_VXLAN,
    NetDevice,
)

__all__ = [
    "NetDevice",
    "IFINDEX_PNIC",
    "IFINDEX_VXLAN",
    "IFINDEX_BRIDGE",
    "IFINDEX_VETH",
    "IFINDEX_PNIC_SPLIT",
]
