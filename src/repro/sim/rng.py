"""Named, deterministic random-number streams.

Experiments must be reproducible *and* individually perturbable: changing
how many random draws the workload generator makes must not change the
packet sizes drawn by an unrelated component. Each subsystem therefore
asks the registry for its own independently-seeded stream by name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a root seed and a name."""
    digest = hashlib.sha256(f"{root_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory for named :class:`random.Random` streams.

    >>> reg = RngRegistry(seed=7)
    >>> a = reg.stream("workload")
    >>> b = reg.stream("workload")
    >>> a is b
    True
    >>> reg2 = RngRegistry(seed=7)
    >>> reg2.stream("workload").random() == RngRegistry(7).stream("workload").random()
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            # The registry is the one sanctioned construction site for
            # Random instances; everyone else draws from named streams.
            stream = random.Random(_derive_seed(self.seed, name))  # simlint: disable=SIM102
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose streams are independent of ours."""
        return RngRegistry(_derive_seed(self.seed, f"fork/{name}"))
