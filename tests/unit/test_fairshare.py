"""Unit tests for tenant-fair CPU allocation (Section 6.4 future work)."""

import pytest

from repro.core.config import FalconConfig
from repro.core.falcon import FalconSteering
from repro.core.fairshare import FairShareBalancer, partition_cpus, use_fair_share
from repro.hw.topology import Machine
from repro.kernel.skb import FlowKey
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError


class TestPartition:
    def test_proportional_split(self):
        assert partition_cpus([3, 4, 5, 6], {"a": 3, "b": 1}) == {
            "a": [3, 4, 5],
            "b": [6],
        }

    def test_equal_weights(self):
        parts = partition_cpus([1, 2, 3, 4], {"a": 1, "b": 1})
        assert len(parts["a"]) == 2 and len(parts["b"]) == 2

    def test_every_tenant_gets_a_cpu(self):
        parts = partition_cpus([1, 2, 3], {"big": 100, "small": 1, "tiny": 1})
        assert all(len(slice_) >= 1 for slice_ in parts.values())
        assert sum(len(slice_) for slice_ in parts.values()) == 3

    def test_partitions_cover_and_disjoint(self):
        cpus = list(range(10))
        parts = partition_cpus(cpus, {"a": 5, "b": 3, "c": 2})
        flat = [cpu for slice_ in parts.values() for cpu in slice_]
        assert sorted(flat) == cpus

    def test_deterministic(self):
        first = partition_cpus([1, 2, 3, 4, 5], {"x": 2, "y": 3})
        second = partition_cpus([1, 2, 3, 4, 5], {"x": 2, "y": 3})
        assert first == second

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            partition_cpus([1], {"a": 1, "b": 1})
        with pytest.raises(ConfigurationError):
            partition_cpus([1, 2], {})
        with pytest.raises(ConfigurationError):
            partition_cpus([1, 2], {"a": 0, "b": 1})


class TestBalancer:
    def make(self):
        machine = Machine(Simulator(), num_cpus=8)
        balancer = FairShareBalancer()
        balancer.set_tenants({"gold": 3, "bronze": 1}, [3, 4, 5, 6])
        return machine, balancer

    def test_tenant_confined_to_partition(self):
        machine, balancer = self.make()
        gold_part = set(balancer.partition_of("gold"))
        bronze_part = set(balancer.partition_of("bronze"))
        assert len(gold_part) == 3 and len(bronze_part) == 1
        gold_flow = FlowKey.make(1, 2, sport=1)
        bronze_flow = FlowKey.make(1, 2, sport=2)
        balancer.assign_flow(gold_flow, "gold")
        balancer.assign_flow(bronze_flow, "bronze")
        for ifindex in range(2, 40):
            assert balancer.select(
                machine, [3, 4, 5, 6], gold_flow.hash, ifindex
            ) in gold_part
            assert balancer.select(
                machine, [3, 4, 5, 6], bronze_flow.hash, ifindex
            ) in bronze_part

    def test_second_choice_stays_in_partition(self):
        machine, balancer = self.make()
        gold_part = balancer.partition_of("gold")
        flow = FlowKey.make(1, 2, sport=7)
        balancer.assign_flow(flow, "gold")
        for cpu in gold_part:
            machine.cpus[cpu].load = 0.99
        pick = balancer.select(machine, [3, 4, 5, 6], flow.hash, 5)
        assert pick in gold_part  # never steals bronze's CPU
        assert balancer.second_choices >= 1

    def test_unassigned_flow_uses_full_set(self):
        machine, balancer = self.make()
        flow = FlowKey.make(9, 9)
        pick = balancer.select(machine, [3, 4, 5, 6], flow.hash, 3)
        assert pick in (3, 4, 5, 6)
        assert balancer.unassigned_selections == 1

    def test_assign_unknown_tenant_rejected(self):
        _machine, balancer = self.make()
        with pytest.raises(ConfigurationError):
            balancer.assign_flow(FlowKey.make(1, 2), "silver")


class TestUseFairShare:
    def test_swaps_balancer_on_steering(self):
        machine = Machine(Simulator(), num_cpus=8)
        steering = FalconSteering(machine, FalconConfig(cpus=[3, 4, 5, 6]))
        balancer = use_fair_share(steering, {"a": 1, "b": 1})
        assert steering.balancer is balancer
        assert sorted(balancer.partition_of("a") + balancer.partition_of("b")) == [
            3, 4, 5, 6,
        ]


class TestFairnessEndToEnd:
    @staticmethod
    def _run(fair: bool):
        from repro.workloads.sockperf import Testbed

        bed = Testbed(mode="overlay", falcon=FalconConfig(cpus=[3, 4, 5, 6]))
        balancer = None
        if fair:
            balancer = use_fair_share(bed.stack.falcon, {"victim": 1, "noisy": 1})
        victim_lat = []
        victim = bed.add_udp_flow(
            512,
            clients=1,
            rate_pps=50_000,
            on_message=lambda s, skb, lat: victim_lat.append(lat),
        )
        noisy = bed.add_udp_flow(16, clients=3)  # saturating flood
        if balancer is not None:
            balancer.assign_flow(victim, "victim")
            balancer.assign_flow(noisy, "noisy")
        bed.run(warmup_ms=4, measure_ms=10)
        return balancer, victim_lat

    def test_noisy_neighbour_contained(self):
        """The flooding tenant must not consume the victim tenant's CPUs.

        The partitions only govern Falcon-managed stages — the driver and
        RPS cores stay shared — so the fairness claim is relative: the
        victim's latency under fair-share must beat the free-for-all
        two-choice baseline, where the flood's stages can land on (and
        saturate) the victim's cores.
        """
        balancer, fair_lat = self._run(fair=True)
        _none, base_lat = self._run(fair=False)
        assert fair_lat and base_lat
        victim_cpus = set(balancer.partition_of("victim"))
        noisy_cpus = set(balancer.partition_of("noisy"))
        assert victim_cpus.isdisjoint(noisy_cpus)
        fair_avg = sum(fair_lat) / len(fair_lat)
        base_avg = sum(base_lat) / len(base_lat)
        assert fair_avg < base_avg
