"""Property tests: the two scheduler implementations are observationally equal.

The calendar queue is only admissible because it is *indistinguishable*
from the binary heap: same fire order, same clocks, same
``events_processed`` for any schedule/cancel/run sequence. These tests
drive both implementations with identical programs — hypothesis-generated
op lists and seeded self-sustaining churn (the ``repro bench`` workload
shape) — and compare the full traces.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.scheduler import SCHEDULER_NAMES

_DELAY = st.floats(min_value=0.0, max_value=2000.0, allow_nan=False)

_OP = st.one_of(
    st.tuples(st.just("schedule"), _DELAY),
    st.tuples(st.just("post"), _DELAY),
    st.tuples(st.just("post_at"), _DELAY),
    # spawn: an event that, when fired, posts a child — exercises pushes
    # below the calendar cursor after the clock has advanced.
    st.tuples(st.just("spawn"), _DELAY, st.floats(0.0, 50.0, allow_nan=False)),
    st.tuples(st.just("batch"), _DELAY, st.integers(1, 8)),
    st.tuples(st.just("cancel"), st.integers(0, 10_000)),
)


def _run_program(scheduler, ops):
    """Apply one op sequence to a fresh simulator; return its full trace."""
    sim = Simulator(scheduler)
    trace = []
    handles = []

    def fire(tag):
        trace.append((sim.now, tag))

    def spawn(tag, child_delay):
        trace.append((sim.now, tag))
        sim.post(child_delay, fire, ("child", tag))

    for tag, op in enumerate(ops):
        kind = op[0]
        if kind == "schedule":
            handles.append(sim.schedule(op[1], fire, tag))
        elif kind == "post":
            sim.post(op[1], fire, tag)
        elif kind == "post_at":
            sim.post_at(op[1], fire, tag)
        elif kind == "spawn":
            sim.post(op[1], spawn, tag, op[2])
        elif kind == "batch":
            sim.post_batch(op[1], fire, [((tag, i),) for i in range(op[2])])
        elif kind == "cancel" and handles:
            sim.cancel(handles[op[1] % len(handles)])
    sim.run()
    return trace, sim.now, sim.events_processed


@given(st.lists(_OP, max_size=120))
@settings(max_examples=60, deadline=None)
def test_heap_and_calendar_traces_identical(ops):
    results = [_run_program(name, ops) for name in SCHEDULER_NAMES]
    assert results[0] == results[1]


@given(st.lists(_DELAY, max_size=80), st.floats(0.0, 2000.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_run_until_agrees_across_schedulers(delays, bound):
    outcomes = []
    for name in SCHEDULER_NAMES:
        sim = Simulator(name)
        fired = []
        for tag, delay in enumerate(delays):
            sim.post(delay, lambda t=tag: fired.append((sim.now, t)))
        sim.run(until=bound)
        mid = (list(fired), sim.now, sim.pending())
        sim.run()
        outcomes.append((mid, list(fired), sim.now, sim.events_processed))
    assert outcomes[0] == outcomes[1]


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1337])
def test_seeded_churn_identical_across_schedulers(seed):
    """The bench churn shape: self-sustaining ticks + cancellable timers.

    Heavy lazy cancellation drives both implementations through their
    compaction paths; the far-future delays drive the calendar queue
    through its overflow/rebase path.
    """

    def churn(scheduler):
        sim = Simulator(scheduler)
        rng = random.Random(seed)
        trace = []
        remaining = 2_000

        def fire(tag):
            trace.append((sim.now, tag))

        def tick():
            nonlocal remaining
            trace.append((sim.now, "tick"))
            if remaining <= 0:
                return
            remaining -= 1
            delay = rng.random() * 4.0 if rng.random() < 0.9 else 400.0 + rng.random() * 600.0
            sim.post(delay, tick)
            if rng.random() < 0.5:
                handle = sim.schedule(rng.random() * 50.0, fire, remaining)
                if rng.random() < 0.8:
                    sim.cancel(handle)

        for _ in range(16):
            sim.post(rng.random(), tick)
        sim.run()
        return trace, sim.now, sim.events_processed

    results = [churn(name) for name in SCHEDULER_NAMES]
    assert results[0] == results[1]
