"""Cross-validation: the closed-form model vs the simulator.

If the analytical capacities drift away from the simulated ones, either
the stage compositions in :mod:`repro.analysis.pipeline` no longer match
the stack builder or a cost change broke calibration — both worth
failing loudly on.
"""

import pytest

from repro.analysis import PipelineModel, mm1_waiting_time_us, predict_capacity_pps
from repro.core.config import FalconConfig
from repro.kernel.costs import CostModel
from repro.kernel.skb import PROTO_UDP
from repro.workloads.sockperf import Experiment

FAST = dict(duration_ms=10.0, warmup_ms=5.0)


class TestFormulas:
    def test_mm1_zero_at_zero_load(self):
        assert mm1_waiting_time_us(0.0, 1.0) == 0.0

    def test_mm1_diverges_at_saturation(self):
        assert mm1_waiting_time_us(1_000_000.0, 1.0) == float("inf")

    def test_mm1_grows_with_load(self):
        low = mm1_waiting_time_us(200_000.0, 1.0)
        high = mm1_waiting_time_us(800_000.0, 1.0)
        assert high > low > 0

    def test_bottleneck_identification(self):
        model = PipelineModel(CostModel(), 16, overlay=True)
        assert model.bottleneck("overlay").name == "rps_core(stacked)"
        # Falcon breaks the stack apart; the bottleneck moves to the
        # user-space copy or one of the smaller stages.
        assert model.bottleneck("falcon").service_us < model.bottleneck(
            "overlay"
        ).service_us

    def test_capacity_ordering(self):
        host = predict_capacity_pps("host", 16)
        overlay = predict_capacity_pps("overlay", 16)
        falcon = predict_capacity_pps("falcon", 16)
        assert overlay < falcon <= host * 1.2


class TestCrossValidation:
    @pytest.mark.parametrize("mode", ["host", "overlay", "falcon"])
    def test_capacity_matches_simulator(self, mode):
        """Predicted saturation rate within ±25% of the simulated one."""
        model = PipelineModel(
            CostModel(), 16, proto=PROTO_UDP, overlay=mode != "host"
        )
        predicted = model.capacity_pps(mode)
        kwargs = {"mode": "host"} if mode == "host" else {"mode": "overlay"}
        if mode == "falcon":
            kwargs["falcon"] = FalconConfig()
        measured = Experiment(**kwargs).run_udp_stress(16, clients=4, **FAST)
        ratio = measured.message_rate_pps / predicted
        assert 0.75 < ratio < 1.25, (mode, predicted, measured.message_rate_pps)

    def test_latency_prediction_brackets_simulator(self):
        """At 60% of overlay capacity, predicted sojourn (M/M/1, an
        upper-leaning bound for deterministic service) must land within
        a factor-3 band of the simulated average receive latency."""
        model = PipelineModel(CostModel(), 16, overlay=True)
        capacity = model.capacity_pps("overlay")
        rate = 0.6 * capacity
        predicted = model.latency_us("overlay", rate)
        measured = Experiment(mode="overlay").run_udp_fixed(
            16, rate_pps=rate, poisson=True, **FAST
        )
        # The simulated number includes sender + wire + wakeup constants
        # the queueing model ignores; compare within a loose band.
        assert predicted < measured.avg_latency_us < predicted * 6 + 30
