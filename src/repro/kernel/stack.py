"""The assembled receive path of one host.

:class:`NetworkStack` wires the pieces together into the stage graph of
Figure 8:

Host (native) mode::

    NIC ring ──napi──> [pnic: skb_alloc, gro, rps_steer]
        ──RPS──> [hoststack: backlog, ip, defrag, l4, sock] ──> socket

Overlay mode::

    NIC ring ──napi──> [pnic]
        ──RPS──>    [hoststack_outer: backlog, ip, udp, vxlan_rcv, netif_rx]
        ──FALCON──> [vxlan: gro_cell_poll, br_handle_frame, veth_xmit, netif_rx]
        ──FALCON──> [container: backlog, ip, defrag, l4, sock] ──> socket

The two ``FALCON`` transition points are where Algorithm 1's
``get_falcon_cpu`` runs; in a vanilla stack the same points exist but
always target the current core (the stock ``netif_rx`` behaviour), which
serializes all three softirq stages on the RPS target core.

GRO splitting inserts one more transition inside the pnic stage (before
``napi_gro_receive``), turning it into two stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import FalconConfig, FlowCacheConfig
from repro.core.falcon import FalconSteering, VanillaSteering
from repro.core.splitting import GRO_SPLIT, validate_split
from repro.hw.nic import Nic
from repro.hw.topology import Machine
from repro.kernel.costs import CostModel
from repro.kernel.defrag import DefragEngine
from repro.kernel.devices import base as devices
from repro.kernel.devices import bridge as bridge_dev
from repro.kernel.devices import physical as pnic_dev
from repro.kernel.devices import veth as veth_dev
from repro.kernel.devices import vxlan as vxlan_dev
from repro.kernel.flowcache import FlowCache, fastpath_step
from repro.kernel.gro import GroCluster
from repro.kernel.protocol import stack_tail_steps
from repro.kernel.skb import FlowKey, Skb
from repro.kernel.sockets import MessageCallback, Socket, SocketTable
from repro.kernel.softirq import SoftirqNet
from repro.kernel.stages import (
    EnqueueTransition,
    FastPathTransition,
    SocketDeliver,
    Stage,
    Step,
    Transition,
)
from repro.kernel.steering import Rfs, Rps
from repro.kernel.timers import LoadTracker
from repro.sim.context import SimContext
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError

MODE_HOST = "host"
MODE_OVERLAY = "overlay"


@dataclass
class StackConfig:
    """Configuration of one host's receive stack."""

    #: ``host`` (native network) or ``overlay`` (Docker/VXLAN).
    mode: str = MODE_OVERLAY
    #: Kernel version cost profile: ``4.19`` or ``5.4``.
    kernel: str = "4.19"
    #: Explicit cost model (overrides ``kernel`` when given).
    costs: Optional[CostModel] = None
    #: Hardware queue count and IRQ affinity of the NIC.
    nic_queues: int = 1
    ring_capacity: int = 1024
    irq_cpus: Optional[List[int]] = None
    #: RPS CPU set (the kernel's ``rps_cpus`` mask); None disables RPS.
    rps_cpus: Optional[List[int]] = field(default_factory=lambda: [1])
    #: Steering flavour over ``rps_cpus``: "rps" (hash) or "rfs"
    #: (flow table pointing at the consuming application's core).
    steering: str = "rps"
    backlog_capacity: int = 1000
    napi_weight: int = 64
    napi_budget: int = 300
    #: Max packets bundled into one simulated work item.
    batch_max: int = 16
    gro_enabled: bool = True
    rmem_packets: int = 4096
    load_tick_us: float = 500.0
    load_alpha: float = 0.5
    #: Falcon configuration; None builds a vanilla stack.
    falcon: Optional[FalconConfig] = None
    #: ONCache-style flow cache; None (or disabled) keeps two datapaths.
    flowcache: Optional[FlowCacheConfig] = None

    def resolve_costs(self) -> CostModel:
        return self.costs if self.costs is not None else CostModel.for_kernel(
            self.kernel
        )


class NetworkStack:
    """One host's in-kernel receive pipeline.

    The first argument accepts either the run's :class:`SimContext` (the
    preferred form — the stack joins that context) or a bare
    :class:`Simulator` (legacy form — the stack joins ``machine.ctx``,
    which wraps the same simulator).
    """

    def __init__(
        self,
        sim: "Simulator | SimContext",
        machine: Machine,
        config: StackConfig,
    ) -> None:
        if config.mode not in (MODE_HOST, MODE_OVERLAY):
            raise ConfigurationError(f"unknown stack mode {config.mode!r}")
        if isinstance(sim, SimContext):
            self.ctx = sim
        else:
            self.ctx = machine.ctx
        self.sim = self.ctx.sim
        self.machine = machine
        self.config = config
        self.costs = config.resolve_costs()
        if self.ctx.costs is None:
            self.ctx.costs = self.costs
        self.is_overlay = config.mode == MODE_OVERLAY

        # --- hardware ----------------------------------------------------
        irq_cpus = config.irq_cpus or [0] * config.nic_queues
        self.nic = Nic(
            num_queues=config.nic_queues,
            ring_capacity=config.ring_capacity,
            irq_cpus=irq_cpus,
        )

        # --- steering ----------------------------------------------------
        if config.rps_cpus:
            if config.steering == "rfs":
                self.rps: Optional[Rps] = Rfs(config.rps_cpus)
            elif config.steering == "rps":
                self.rps = Rps(config.rps_cpus)
            else:
                raise ConfigurationError(
                    f"unknown steering flavour {config.steering!r}"
                )
        else:
            self.rps = None
        if config.falcon is not None:
            self.falcon: Optional[FalconSteering] = FalconSteering(
                machine, config.falcon
            )
        else:
            self.falcon = None
        self._vanilla = VanillaSteering()

        # --- merge engines -------------------------------------------------
        self.gro = GroCluster(machine.num_cpus) if config.gro_enabled else None
        self.defrag = DefragEngine(self.sim)

        # --- flow cache (third datapath; overlay only) ---------------------
        if (
            config.flowcache is not None
            and config.flowcache.enabled
            and self.is_overlay
        ):
            self.flowcache: Optional[FlowCache] = FlowCache(config.flowcache)
        else:
            self.flowcache = None
        self.defrag.flowcache = self.flowcache

        # --- softirq subsystem ---------------------------------------------
        self.softnet = SoftirqNet(
            machine,
            self.costs,
            stack=self,
            budget=config.napi_budget,
            napi_weight=config.napi_weight,
            batch_max=config.batch_max,
            backlog_capacity=config.backlog_capacity,
        )
        self.softnet.flowcache = self.flowcache

        # --- sockets ---------------------------------------------------------
        self.sockets = SocketTable()
        self.delivered_packets = 0
        #: Wire segments delivered via the cached fast path.
        self.fastpath_deliveries = 0
        self.unroutable_packets = 0
        #: Pure-ACK packets consumed by the stack (request/response loads).
        self.control_packets = 0
        #: Optional :class:`repro.validate.InvariantMonitor`; attached via
        #: the context (see the ``monitor`` property), None in normal runs.
        self._monitor = None
        self.ctx.register_monitored(self, self.softnet, self.defrag)

        # --- stage graph -------------------------------------------------
        self.stages: dict = {}
        self._build_stages()
        self.softnet.attach_nic(
            self.nic, self.stages["pnic"], napi_weight=config.napi_weight
        )

        # --- timers ------------------------------------------------------
        self.load_tracker = LoadTracker(
            machine,
            self.costs,
            tick_us=config.load_tick_us,
            alpha=config.load_alpha,
        )
        self.load_tracker.start()

    # ------------------------------------------------------------------
    # Context-managed hooks
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The run's packet tracer (owned by the :class:`SimContext`)."""
        return self.ctx.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.ctx.attach_tracer(value)

    @property
    def monitor(self):
        """The run's invariant monitor (owned by the :class:`SimContext`)."""
        return self._monitor

    @monitor.setter
    def monitor(self, value) -> None:
        self._monitor = value
        # Assigning through the stack attaches context-wide; the context's
        # own fan-out lands here too, guarded against re-entry.
        if self.ctx.monitor is not value:
            if value is None:
                self.ctx.detach_monitor()
            else:
                self.ctx.attach_monitor(value)

    # ------------------------------------------------------------------
    # Stage-graph construction
    # ------------------------------------------------------------------
    def _steering(self):
        return self.falcon if self.falcon is not None else self._vanilla

    def _rps_selector(self):
        if self.rps is not None:
            return self.rps.get_rps_cpu
        return lambda skb, current_cpu: current_cpu

    def _build_stages(self) -> None:
        costs = self.costs
        steering = self._steering()

        # Terminal stage: the stack tail that delivers into a socket.
        tail_name = "container" if self.is_overlay else "hoststack"
        tail_ifindex = devices.IFINDEX_VETH if self.is_overlay else devices.IFINDEX_PNIC
        tail_steps = [
            Step.simple("process_backlog", costs.backlog_dequeue)
        ] + stack_tail_steps(costs, self.defrag)
        tail = Stage(tail_name, tail_ifindex, tail_steps, SocketDeliver())
        self.stages[tail_name] = tail

        if self.is_overlay:
            # veth/bridge stage (softirq #2): gro_cell_poll → bridge → veth.
            vxlan_stage = Stage(
                "vxlan",
                devices.IFINDEX_VXLAN,
                [
                    vxlan_dev.gro_cell_poll_step(costs),
                    bridge_dev.bridge_step(costs),
                ]
                + veth_dev.veth_steps(costs),
                EnqueueTransition(
                    tail,
                    steering.selector(devices.IFINDEX_VETH),
                    name="netif_rx[veth]",
                ),
            )
            self.stages["vxlan"] = vxlan_stage

            # Outer host stack ending in vxlan_rcv (raises softirq #2).
            hoststack = Stage(
                "hoststack_outer",
                devices.IFINDEX_PNIC,
                vxlan_dev.outer_stack_steps(costs),
                EnqueueTransition(
                    vxlan_stage,
                    steering.selector(devices.IFINDEX_VXLAN),
                    name="netif_rx[vxlan]",
                ),
            )
            self.stages["hoststack_outer"] = hoststack
            after_driver: Stage = hoststack

            if self.flowcache is not None:
                # Fast-path stage: one cached-cost step, then straight to
                # the container tail through a FALCON transition point —
                # the cache removes work, Falcon parallelizes the rest.
                fastpath = Stage(
                    "fastpath",
                    devices.IFINDEX_FASTPATH,
                    [fastpath_step(costs)],
                    EnqueueTransition(
                        tail,
                        steering.selector(devices.IFINDEX_VETH),
                        name="netif_rx[fastpath]",
                    ),
                )
                self.stages["fastpath"] = fastpath
        else:
            after_driver = tail

        rps_transition: Transition = EnqueueTransition(
            after_driver, self._rps_selector(), name="rps"
        )
        if self.flowcache is not None:
            # The driver exit consults the flow cache: hits jump to the
            # fast-path stage (still RPS-steered off the driver core),
            # misses ride the unchanged slow device chain.
            rps_transition = FastPathTransition(
                self.flowcache,
                hit=EnqueueTransition(
                    self.stages["fastpath"],
                    self._rps_selector(),
                    name="rps[fastpath]",
                ),
                miss=rps_transition,
            )

        split = (
            self.falcon is not None
            and self.falcon.config.enabled
            and self.falcon.config.split_gro
        )
        if split:
            validate_split(GRO_SPLIT)
            gro_flush = self.gro.flush if self.gro is not None else None
            second_half = Stage(
                "pnic_gro",
                devices.IFINDEX_PNIC_SPLIT,
                pnic_dev.driver_second_half_steps(costs, self.gro),
                rps_transition,
                flush=gro_flush,
            )
            self.stages["pnic_gro"] = second_half
            driver = Stage(
                "pnic",
                devices.IFINDEX_PNIC,
                pnic_dev.driver_first_half_steps(costs),
                EnqueueTransition(
                    second_half,
                    self.falcon.split_selector(
                        devices.IFINDEX_PNIC_SPLIT,
                        self.falcon.config.split_same_core,
                    ),
                    name="netif_rx[gro-split]",
                ),
            )
        else:
            gro_flush = self.gro.flush if self.gro is not None else None
            driver = Stage(
                "pnic",
                devices.IFINDEX_PNIC,
                pnic_dev.driver_steps(costs, self.gro),
                rps_transition,
                flush=gro_flush,
            )
        self.stages["pnic"] = driver

    # ------------------------------------------------------------------
    # StackPort interface (used by stage transitions)
    # ------------------------------------------------------------------
    def enqueue_backlog(
        self, target_cpu: int, skb: Skb, stage: Stage, from_cpu: int
    ) -> None:
        tracer = self.ctx.tracer
        if tracer is not None and tracer.wants(skb):
            tracer.record(skb, self.sim.now, "enqueue", stage.name, target_cpu)
        self.softnet.enqueue_backlog(target_cpu, skb, stage, from_cpu)

    def deliver_to_socket(self, skb: Skb, cpu_index: int) -> None:
        tracer = self.ctx.tracer
        monitor = self._monitor
        flowcache = self.flowcache
        if flowcache is not None:
            # Whatever the outcome below, the packet leaves the pipeline
            # here: settle its slow-path reservation first.
            flowcache.packet_terminated(skb)
        if tracer is not None and tracer.wants(skb):
            tracer.record(skb, self.sim.now, "deliver", "socket", cpu_index)
        if skb.meta == "ctl":
            # Control traffic (pure ACKs): consumed by tcp_v4_rcv after
            # riding the whole receive pipeline; nothing reaches the app.
            self.control_packets += 1
            if monitor is not None:
                monitor.on_terminal(skb, "control")
            return
        socket = self.sockets.lookup(skb.flow)
        if socket is None:
            self.unroutable_packets += 1
            self.sockets.unroutable += 1
            if monitor is not None:
                monitor.on_terminal(skb, "unroutable")
            return
        skb.last_cpu = cpu_index
        if socket.enqueue(skb):
            self.delivered_packets += 1
            if flowcache is not None and skb.fastpath is not None:
                if skb.fastpath:
                    self.fastpath_deliveries += skb.fastpath
                    if monitor is not None:
                        monitor.on_fastpath_delivery(cpu_index, skb.fastpath)
                # A completed slow traversal (re)populates the entry.
                flowcache.delivered(skb)
            if monitor is not None:
                monitor.on_terminal(skb, "delivered")
        elif monitor is not None:
            monitor.on_terminal(skb, "socket_drop")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def open_socket(
        self,
        flow: FlowKey,
        app_cpu: int,
        on_message: Optional[MessageCallback] = None,
        rmem_packets: Optional[int] = None,
        name: str = "sock",
    ) -> Socket:
        """Create a socket bound to ``flow`` with its reader on ``app_cpu``."""
        socket = Socket(
            self.sim,
            app_cpu,
            self.costs,
            on_message=on_message,
            rmem_packets=rmem_packets or self.config.rmem_packets,
            name=name,
        )
        socket.machine = self.machine
        self.sockets.bind(flow, socket)
        self._record_rfs_consumer(flow, socket)
        return socket

    def bind_flow(self, flow: FlowKey, socket: Socket) -> None:
        """Attach an additional flow to an existing socket (TCP server)."""
        self.sockets.bind(flow, socket)
        self._record_rfs_consumer(flow, socket)

    def _record_rfs_consumer(self, flow: FlowKey, socket: Socket) -> None:
        # RFS learns where the application reads each flow; our reader
        # threads are pinned, so the table entry is known at bind time.
        if isinstance(self.rps, Rfs):
            self.rps.record_consumer(flow.flow_id, socket.app_cpu_index)

    def inject(self, skb: Skb) -> bool:
        """A frame arrived from the wire (called at link delivery time)."""
        skb.t_nic = self.sim.now
        accepted = self.nic.receive(skb)
        if self._monitor is not None:
            self._monitor.on_inject(skb, accepted)
        return accepted

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def cache_counters(self) -> dict:
        """Flow-cache hit/miss/eviction/invalidation counters (empty when
        the cache is off)."""
        return self.flowcache.counters() if self.flowcache is not None else {}

    def drop_counts(self) -> dict:
        socket_drops = sum(sock.drops for sock in self.sockets.sockets())
        return {
            "ring": self.nic.total_drops,
            "backlog": self.softnet.backlog_drops(),
            "socket": socket_drops,
            "unroutable": self.unroutable_packets,
            "defrag_timeout": self.defrag.defrag_timeouts,
        }

    @property
    def overlay_ifindexes(self) -> List[int]:
        """Device indexes at Falcon transition points, in path order."""
        return [devices.IFINDEX_VXLAN, devices.IFINDEX_VETH]
