"""Unit/integration tests for the packet tracer."""

import pytest

from repro.core.config import FalconConfig
from repro.metrics.tracing import MessageTrace, PacketTracer, TraceEvent
from repro.workloads.sockperf import Testbed


class TestTracerUnit:
    def test_sampling(self):
        tracer = PacketTracer(sample_every=10)

        class FakeSkb:
            def __init__(self, msg_id):
                self.msg_id = msg_id
                self.flow = type("F", (), {"flow_id": 1})()

        assert tracer.wants(FakeSkb(0))
        assert not tracer.wants(FakeSkb(3))
        assert tracer.wants(FakeSkb(20))

    def test_max_messages_cap(self):
        tracer = PacketTracer(sample_every=1, max_messages=2)

        class FakeSkb:
            def __init__(self, flow_id, msg_id):
                self.msg_id = msg_id
                self.flow = type("F", (), {"flow_id": flow_id})()

        for flow_id in range(5):
            skb = FakeSkb(flow_id, 0)
            if tracer.wants(skb):
                tracer.record(skb, 0.0, "exec", "s", 0)
        assert len(tracer.traces(complete_only=False)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketTracer(sample_every=0)

    def test_stage_spans(self):
        trace = MessageTrace(1, 0)
        trace.events = [
            TraceEvent(10.0, "exec", "pnic", 0),
            TraceEvent(14.0, "enqueue", "vxlan", 3),
            TraceEvent(19.0, "deliver", "socket", 3),
        ]
        spans = trace.stage_spans()
        assert spans[0] == ("exec:pnic->enqueue:vxlan", 4.0)
        assert trace.total_us() == 9.0
        assert trace.complete


class TestTracerOnStack:
    def run_traced(self, falcon=None):
        bed = Testbed(mode="overlay", falcon=falcon)
        tracer = PacketTracer(sample_every=5)
        bed.stack.tracer = tracer
        bed.add_udp_flow(128, clients=1, rate_pps=40_000)
        bed.run(warmup_ms=2, measure_ms=8)
        return tracer

    def test_traces_cover_all_overlay_stages(self):
        tracer = self.run_traced()
        cores = tracer.cores_seen()
        for stage in ("pnic", "hoststack_outer", "vxlan", "container"):
            assert stage in cores, stage

    def test_vanilla_overlay_stages_share_one_core(self):
        tracer = self.run_traced()
        cores = tracer.cores_seen()
        stacked = cores["hoststack_outer"] | cores["vxlan"] | cores["container"]
        assert stacked == {1}  # the RPS core

    def test_falcon_stages_spread(self):
        tracer = self.run_traced(falcon=FalconConfig())
        cores = tracer.cores_seen()
        spread = cores["vxlan"] | cores["container"]
        assert spread <= {3, 4, 5, 6}

    def test_breakdown_sums_to_pipeline_time(self):
        tracer = self.run_traced()
        assert tracer.mean_pipeline_us() > 0
        breakdown = tracer.stage_breakdown()
        assert breakdown
        total = sum(mean for mean, _count in breakdown.values())
        # Segment means sum approximately to the mean pipeline time
        # (exactly, when every trace has the same segment sequence).
        assert total == pytest.approx(tracer.mean_pipeline_us(), rel=0.2)
