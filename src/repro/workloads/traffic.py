"""Arrival processes for traffic generation.

Each process answers one question: given the last send at time *t*, when
is the next message due? Deterministic (CBR) arrivals reproduce
sockperf's paced mode; Poisson arrivals model independent clients;
:class:`HotspotSchedule` reproduces the adaptability test of Figure 16,
where one flow's intensity suddenly increases to create a hotspot.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple


class ConstantRate:
    """Constant-bit-rate arrivals at ``rate_pps`` messages per second."""

    def __init__(self, rate_pps: float) -> None:
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.interval_us = 1e6 / rate_pps

    def next_gap_us(self, rng: random.Random) -> float:
        return self.interval_us


class PoissonRate:
    """Poisson arrivals with mean ``rate_pps``."""

    def __init__(self, rate_pps: float) -> None:
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.mean_interval_us = 1e6 / rate_pps

    def next_gap_us(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_interval_us)


class Saturating:
    """Back-to-back sending: the next message leaves as soon as the
    sender finishes the previous one (sockperf's max-rate stress mode)."""

    def next_gap_us(self, rng: random.Random) -> float:
        return 0.0


class HotspotSchedule:
    """A rate that steps between a base and a burst level over time.

    ``phases`` is a list of ``(start_us, rate_pps)`` entries sorted by
    start time; the rate in force is the last phase whose start has
    passed. Used to suddenly intensify one flow (Figure 16).
    """

    def __init__(self, phases: List[Tuple[float, float]]) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        starts = [start for start, _rate in phases]
        if starts != sorted(starts):
            raise ValueError("phases must be sorted by start time")
        self.phases = phases

    def rate_at(self, now_us: float) -> float:
        rate = self.phases[0][1]
        for start, phase_rate in self.phases:
            if now_us >= start:
                rate = phase_rate
            else:
                break
        return rate

    def next_gap_us(self, rng: random.Random, now_us: float = 0.0) -> float:
        return 1e6 / self.rate_at(now_us)
