"""Generic Receive Offload (GRO) model.

``napi_gro_receive`` merges consecutive same-flow TCP segments into one
super-packet so the rest of the stack pays per-packet costs once instead
of per-segment. The paper's Figure 9a shows this function (together with
skb allocation) saturating the first core for TCP with 4 KB messages —
the motivation for softirq splitting.

Model: segments of one application message merge into a single skb.
Merging is keyed per (engine, flow, message); a merge completes when the
last segment of the message arrives, and any partial merges are flushed
at the end of a NAPI batch (the kernel flushes at ``napi_complete`` or
after 64 held segments — batch-end flushing is the same idea at our
granularity).

Each CPU owns a private engine instance (GRO state is per-NAPI in the
kernel, and after Falcon's GRO splitting the merge work may run on a
different core than the driver poll).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kernel.skb import Skb


class GroEngine:
    """Per-CPU GRO merge state."""

    def __init__(self) -> None:
        # (flow_id, msg_id) -> accumulating skb
        self._held: Dict[Tuple[int, int], Skb] = {}
        self.merged_packets = 0
        self.flushes = 0

    def feed(self, skb: Skb, _cpu_index: int = 0) -> Optional[Skb]:
        """Offer a wire packet to GRO.

        Returns the packet (or the completed merged super-packet) when it
        should continue down the stack, or None when it was absorbed into
        an in-progress merge.
        """
        if not skb.is_tcp or skb.frag_count == 1:
            return skb  # nothing to coalesce (UDP, or single-segment message)
        key = (skb.flow.flow_id, skb.msg_id)
        held = self._held.get(key)
        if held is None:
            if skb.is_last_fragment:
                return skb  # sole outstanding segment; nothing to wait for
            self._held[key] = skb
            skb.segs = 1
            return None
        # Merge into the held skb.
        held.size += skb.size
        held.wire_size += skb.wire_size
        held.segs += 1
        held.frag_index = skb.frag_index
        self.merged_packets += 1
        if skb.is_last_fragment:
            del self._held[key]
            held.frag_count = 1  # the merged skb is a complete message
            return held
        return None

    def flush(self, _cpu_index: int = 0) -> List[Skb]:
        """End-of-batch flush: release all partial merges."""
        if not self._held:
            return []
        released = list(self._held.values())
        self._held.clear()
        self.flushes += len(released)
        return released

    @property
    def held_count(self) -> int:
        return len(self._held)

    @property
    def held_segs(self) -> int:
        """Wire packets currently absorbed into in-progress merges."""
        return sum(skb.segs for skb in self._held.values())


class GroCluster:
    """One GRO engine per core.

    GRO state is per-NAPI-context in the kernel; after Falcon's GRO
    splitting, the merge function may run on any Falcon CPU, so each core
    gets its own engine. A flow's segments always meet the same engine
    because steering is per-flow sticky.
    """

    def __init__(self, num_cpus: int) -> None:
        self.engines = [GroEngine() for _ in range(num_cpus)]

    def feed(self, skb, cpu_index: int):
        return self.engines[cpu_index].feed(skb, cpu_index)

    def flush(self, cpu_index: int):
        return self.engines[cpu_index].flush(cpu_index)

    @property
    def merged_packets(self) -> int:
        return sum(engine.merged_packets for engine in self.engines)

    @property
    def held_count(self) -> int:
        return sum(engine.held_count for engine in self.engines)

    @property
    def held_segs(self) -> int:
        return sum(engine.held_segs for engine in self.engines)
