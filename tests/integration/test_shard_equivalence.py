"""Shard-count equivalence: N shards must reproduce the 1-shard run.

The sharded engine's core guarantee is partition invariance: splitting a
cluster's hosts across shards (and even across worker processes) is an
implementation detail that must not change one byte of the simulated
outcome. These tests pin that down by comparing canonical trace JSON —
the same serialization the golden suite uses — between a 1-shard
reference and 2/4-shard runs, across a seed matrix and both scheduler
implementations.

On divergence the failing pair of trace documents is written to
``$SHARD_DIVERGENCE_DIR`` (when set) so CI can upload them as artifacts.
"""

import json
import os

import pytest

from repro.overlay.cluster import (
    run_cluster,
    tcp_ring_spec,
    udp_double_ring_spec,
    udp_ring_spec,
)
from repro.validate.golden import diff_trace_docs, trace_doc_to_json

#: Short but non-trivial horizon: ~hundreds of messages, several
#: thousand barrier windows per run.
DURATION_US = 2500.0
WARMUP_US = 1000.0


def _run(spec, shards, transport="inline"):
    result = run_cluster(spec, shards=shards, transport=transport)
    assert result.trace_doc is not None
    return result


def _dump_divergence(name, reference_doc, actual_doc):
    """Write the diverging trace pair for CI artifact upload."""
    out_dir = os.environ.get("SHARD_DIVERGENCE_DIR")
    if not out_dir:
        return None
    os.makedirs(out_dir, exist_ok=True)
    ref_path = os.path.join(out_dir, f"{name}.reference.json")
    act_path = os.path.join(out_dir, f"{name}.actual.json")
    with open(ref_path, "w", encoding="utf-8") as handle:
        handle.write(trace_doc_to_json(reference_doc))
    with open(act_path, "w", encoding="utf-8") as handle:
        handle.write(trace_doc_to_json(actual_doc))
    diff_path = os.path.join(out_dir, f"{name}.diff.txt")
    with open(diff_path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(diff_trace_docs(reference_doc, actual_doc)))
    return out_dir


def _assert_equivalent(name, reference, actual):
    """Byte-identical traces plus identical headline results."""
    ref_json = trace_doc_to_json(reference.trace_doc)
    act_json = trace_doc_to_json(actual.trace_doc)
    if ref_json != act_json:
        where = _dump_divergence(name, reference.trace_doc, actual.trace_doc)
        diff = diff_trace_docs(reference.trace_doc, actual.trace_doc)
        pytest.fail(
            f"{name}: {actual.shards}-shard trace diverged from the "
            f"1-shard reference ({len(diff)} difference(s); "
            f"artifacts in {where or 'unset $SHARD_DIVERGENCE_DIR'}):\n"
            + "\n".join(diff[:10])
        )
    assert actual.messages_delivered == reference.messages_delivered
    assert actual.events_processed == reference.events_processed
    assert [h["messages_delivered"] for h in actual.per_host] == [
        h["messages_delivered"] for h in reference.per_host
    ]


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
@pytest.mark.parametrize("seed", [0, 7, 1234])
@pytest.mark.parametrize("shards", [2, 4])
def test_udp_ring_shards_match_reference(scheduler, seed, shards):
    spec = udp_ring_spec(
        num_hosts=4,
        message_size=512,
        rate_pps=60_000.0,
        seed=seed,
        scheduler=scheduler,
        warmup_us=WARMUP_US,
        duration_us=DURATION_US,
        trace=True,
    )
    reference = _run(spec, shards=1)
    actual = _run(spec, shards=shards)
    _assert_equivalent(
        f"udp-{scheduler}-seed{seed}-shards{shards}", reference, actual
    )
    # Sharding must do real work to be a meaningful test: every window
    # of this scenario crosses shard boundaries (it is a ring).
    assert actual.records_exchanged > 0
    assert actual.windows_run > 0


@pytest.mark.parametrize("shards", [2, 3])
def test_tcp_ring_shards_match_reference(shards):
    """Closed-loop TCP: data and credits cross shards in both directions."""
    spec = tcp_ring_spec(
        num_hosts=3,
        message_size=2048,
        window_msgs=4,
        seed=11,
        warmup_us=WARMUP_US,
        duration_us=DURATION_US,
        trace=True,
    )
    reference = _run(spec, shards=1)
    actual = _run(spec, shards=shards)
    _assert_equivalent(f"tcp-shards{shards}", reference, actual)
    assert actual.records_exchanged > 0


def test_falcon_cluster_shards_match_reference():
    """Falcon's softirq balancing is per-host state; sharding must not
    perturb its decisions."""
    spec = udp_ring_spec(
        num_hosts=4,
        message_size=512,
        rate_pps=80_000.0,
        seed=3,
        falcon=True,
        warmup_us=WARMUP_US,
        duration_us=DURATION_US,
        trace=True,
    )
    reference = _run(spec, shards=1)
    actual = _run(spec, shards=2)
    _assert_equivalent("falcon-shards2", reference, actual)


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
@pytest.mark.parametrize("shards", [2, 3])
def test_flowcache_churn_shards_match_reference(scheduler, shards):
    """The flow-cache datapath under churn: a capacity-1 ingress table
    thrashes (miss → hit → evict), then mid-run churn on host 1 sends
    RECORD_INVAL to its senders across a shard boundary. Cache state is
    per-host, so partitioning must not move a single lookup."""
    spec = udp_double_ring_spec(
        num_hosts=3,
        message_size=512,
        rate_pps=40_000.0,
        rate2_pps=12_000.0,
        seed=9,
        scheduler=scheduler,
        flowcache=True,
        flowcache_capacity=1,
        churn=((1800.0, 1),),
        warmup_us=WARMUP_US,
        duration_us=DURATION_US,
        trace=True,
    )
    reference = _run(spec, shards=1)
    actual = _run(spec, shards=shards)
    _assert_equivalent(
        f"flowcache-{scheduler}-shards{shards}", reference, actual
    )
    # Per-host cache counters (hits/misses/evictions/invalidations) are
    # part of the equivalence contract too.
    assert [h["flowcache"] for h in actual.per_host] == [
        h["flowcache"] for h in reference.per_host
    ]
    churned = reference.per_host[1]["flowcache"]
    assert churned["ingress_invalidations"] >= 1
    assert churned["ingress_hits"] > 0
    assert churned["ingress_evictions"] > 0
    assert actual.records_exchanged > 0


def test_process_transport_matches_inline():
    """Spawn workers + pipes must equal the in-process reference exactly
    (fresh interpreters, own RNG registries, wire (de)serialization)."""
    spec = udp_ring_spec(
        num_hosts=4,
        message_size=512,
        rate_pps=60_000.0,
        seed=42,
        warmup_us=WARMUP_US,
        duration_us=DURATION_US,
        trace=True,
    )
    reference = _run(spec, shards=1, transport="inline")
    actual = _run(spec, shards=2, transport="process")
    _assert_equivalent("process-shards2", reference, actual)
    assert actual.transport == "process"


def test_uneven_partition_matches_reference():
    """Host counts that do not divide evenly (3 hosts over 2 shards)."""
    spec = udp_ring_spec(
        num_hosts=3,
        message_size=256,
        rate_pps=50_000.0,
        seed=5,
        warmup_us=WARMUP_US,
        duration_us=DURATION_US,
        trace=True,
    )
    reference = _run(spec, shards=1)
    actual = _run(spec, shards=2)
    _assert_equivalent("uneven-shards2", reference, actual)


def test_repeated_runs_are_identical():
    """The same (spec, shards) pair is bit-stable run to run — the
    equivalence assertions above would be meaningless otherwise."""
    spec = udp_ring_spec(
        num_hosts=4,
        seed=0,
        warmup_us=WARMUP_US,
        duration_us=DURATION_US,
        trace=True,
    )
    first = _run(spec, shards=2)
    second = _run(spec, shards=2)
    assert trace_doc_to_json(first.trace_doc) == trace_doc_to_json(
        second.trace_doc
    )
