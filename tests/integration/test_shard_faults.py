"""Fault injection against the worker-process shard transport.

A worker dying mid-window, hanging past the step timeout, or replying a
corrupt record must surface as a clear :class:`ShardError` naming the
shard — never as a hang or a silent partial result. Each test is
wall-clock bounded: the transport's every wait goes through
``conn.poll(timeout)``.
"""

import pytest

from repro.experiments.run_all import wall_seconds
from repro.overlay.cluster import run_cluster, udp_ring_spec
from repro.sim.errors import ShardError
from repro.sim.shard.records import CrossShardEvent
from repro.sim.shard.transport import ProcessShardHandle, resolve_builder

#: Generous real-time ceiling for every fault to resolve (the hang test
#: uses a much smaller step timeout internally).
WALL_BUDGET_S = 60.0


def _spec():
    return udp_ring_spec(
        num_hosts=4,
        message_size=512,
        rate_pps=40_000.0,
        seed=0,
        warmup_us=500.0,
        duration_us=1500.0,
    )


def _assert_bounded(started):
    assert wall_seconds() - started < WALL_BUDGET_S


def test_worker_dying_mid_window_raises_shard_error():
    started = wall_seconds()
    with pytest.raises(ShardError, match="shard 1.*(died|gone)"):
        run_cluster(
            _spec(),
            shards=2,
            transport="process",
            faults={1: ("die", 3)},
        )
    _assert_bounded(started)


def test_malformed_record_raises_shard_error():
    started = wall_seconds()
    with pytest.raises(ShardError, match="shard 0"):
        run_cluster(
            _spec(),
            shards=2,
            transport="process",
            faults={0: ("malformed", 2)},
        )
    _assert_bounded(started)


def test_hanging_worker_times_out_with_shard_error():
    started = wall_seconds()
    with pytest.raises(ShardError, match="did not answer.*within"):
        run_cluster(
            _spec(),
            shards=2,
            transport="process",
            timeout_s=2.0,
            faults={1: ("hang", 2)},
        )
    _assert_bounded(started)


def test_fault_needs_process_transport():
    from repro.sim.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="process transport"):
        run_cluster(_spec(), shards=2, transport="inline", faults={0: ("die", 1)})


def test_healthy_shards_are_torn_down_after_a_fault():
    """No orphaned workers: the coordinator's close() runs even when a
    sibling shard fails (the run_cluster try/finally)."""
    import multiprocessing

    with pytest.raises(ShardError):
        run_cluster(
            _spec(), shards=2, transport="process", faults={0: ("die", 2)}
        )
    leftovers = [
        p for p in multiprocessing.active_children()
        if p.name.startswith("repro-shard-")
    ]
    for proc in leftovers:  # pragma: no cover - cleanup on failure
        proc.terminate()
    assert not leftovers


# ----------------------------------------------------------------------
# Transport-level failures outside the fault hooks
# ----------------------------------------------------------------------
def test_bad_builder_reference_is_rejected():
    with pytest.raises(ShardError, match="invalid shard builder"):
        resolve_builder("no-colon-here")
    with pytest.raises(ShardError, match="does not name a callable"):
        resolve_builder("repro.overlay.cluster:THIS_DOES_NOT_EXIST")


def test_worker_build_failure_surfaces_at_startup():
    started = wall_seconds()
    with pytest.raises(ShardError, match="failed to (start|build)"):
        ProcessShardHandle(
            index=0,
            hosts=(0,),
            builder_ref="repro.overlay.cluster:build_shard_world",
            builder_args=(("definitely", "not", "a", "spec"), (0,)),
            timeout_s=20.0,
        )
    _assert_bounded(started)


def test_wire_record_validation_rejects_corruption():
    good = CrossShardEvent(10.0, 1, 2, "skb", 3, (4, 5.0, "x"))
    assert CrossShardEvent.from_wire(good.to_wire()).sort_key == good.sort_key
    cases = [
        ("not", "a", "record"),               # wrong arity
        ("10.0", 1, 2, "skb", 3, ()),         # non-numeric time
        (10.0, 1.5, 2, "skb", 3, ()),         # non-int src
        (10.0, 1, 2, "", 3, ()),              # empty kind
        (10.0, 1, 2, "skb", 3, (object(),)),  # non-primitive payload
        (10.0, True, 2, "skb", 3, ()),        # bool masquerading as int
    ]
    for wire in cases:
        with pytest.raises(ShardError):
            CrossShardEvent.from_wire(wire)
