"""Static registry of simsan rule ids.

Kept free of imports so :mod:`repro.analysis.lint.runner` can learn the
ownership rule ids (for pragma validation — all four passes share the
``# simlint: disable=`` suppression machinery) without importing the
dataflow engine, and vice versa.
"""

from __future__ import annotations

from typing import Tuple

#: Event-lifecycle linearity rules (rules_event.py).
EVENT_RULE_IDS: Tuple[str, ...] = ("OWN601", "OWN602", "OWN603")

#: Skb ownership-transfer rules (rules_skbown.py).
SKB_RULE_IDS: Tuple[str, ...] = ("OWN611", "OWN612", "OWN613")

#: Flow-cache entry-lifecycle rules (rules_cache.py).
CACHE_RULE_IDS: Tuple[str, ...] = ("OWN621", "OWN622", "OWN623")

#: Every rule id the ``repro san`` pass can report.
SAN_RULE_IDS: Tuple[str, ...] = (
    EVENT_RULE_IDS + SKB_RULE_IDS + CACHE_RULE_IDS
)
