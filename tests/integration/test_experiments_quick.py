"""Smoke tests: every figure experiment runs end to end (quick mode).

The benchmarks assert each figure's headline shape on full sweeps; these
tests guarantee every driver stays runnable and structurally sound (one
table minimum, non-empty series) so a refactor can't silently break a
figure.
"""

import importlib

import pytest

# The figure sweeps dominate suite wall-clock; they run in the slow tier.
pytestmark = pytest.mark.slow

FIGURES = [
    "fig02_motivation",
    "fig04_interrupts",
    "fig05_serialization",
    "fig06_flamegraph",
    "fig09_splitting",
    "fig10_udp_stress",
    "fig11_cpu_util",
    "fig12_latency",
    "fig13_multiflow",
    "fig14_multicontainer",
    "fig15_threshold",
    "fig16_adaptability",
    "fig17_webserving",
    "fig18_datacaching",
    "fig19_overhead",
]


@pytest.mark.parametrize("name", FIGURES)
def test_figure_driver_runs(name):
    module = importlib.import_module(f"repro.experiments.{name}")
    out = module.run(quick=True)
    assert out.tables, name
    assert out.series, name
    rendered = out.render()
    assert out.figure in rendered
    for table in out.tables:
        assert table.rows, f"{name}: empty table {table.title!r}"
