# expect: LINT001 -- this file deliberately does not parse
def broken(:
    return
