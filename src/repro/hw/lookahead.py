"""Lookahead extraction for conservative parallel simulation.

The sharded engine (:mod:`repro.sim.shard`) advances every shard up to a
window barrier bounded by the *lookahead*: the minimum simulated latency
any event needs to cross from one shard to another. In this model the
only shard-crossing path is an inter-host link, and a frame handed to a
link at time ``t`` cannot arrive before ``t + propagation_us`` (the
serialization time only adds to that), so the propagation delay of the
fastest inter-host link is a safe lookahead.

Zero lookahead would collapse the barrier window to a point and the
parallel run to a lockstep crawl — worse, it breaks the conservative
guarantee that everything a window produces for a remote shard lands at
or after the next barrier. Cluster topologies must therefore keep a
strictly positive inter-host propagation delay; this module is where
that requirement is enforced.
"""

from __future__ import annotations

from typing import Iterable

from repro.hw.link import Link
from repro.sim.errors import ConfigurationError


def lookahead_from_links(links: Iterable[Link]) -> float:
    """Minimum propagation delay (µs) over the shard-crossing links.

    Raises :class:`ConfigurationError` when no link is given or any link
    has a non-positive propagation delay — both would make conservative
    synchronization unsound.
    """
    return lookahead_from_latencies(link.propagation_us for link in links)


def lookahead_from_latencies(latencies_us: Iterable[float]) -> float:
    """Minimum over explicit inter-host latencies (µs), validated > 0."""
    values = list(latencies_us)
    if not values:
        raise ConfigurationError(
            "cannot derive a lookahead from an empty set of inter-host links"
        )
    lookahead = min(values)
    if lookahead <= 0:
        raise ConfigurationError(
            f"conservative synchronization needs a strictly positive "
            f"inter-host latency; got minimum {lookahead}"
        )
    return lookahead
