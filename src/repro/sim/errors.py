"""Exception hierarchy for the reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised when the simulator is used incorrectly.

    Examples: scheduling an event in the past, or running a simulator
    that has been explicitly halted.
    """


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class TopologyError(ReproError):
    """Raised when hosts, devices or containers are wired incorrectly."""
