"""All three suppression forms, each silencing exactly one finding.

This file must lint clean: a line pragma, a file pragma and a
``@lint_exempt`` decorator each cover one would-be violation.
"""

# simlint: disable-file=SIM102

import random
import time

from repro.analysis.pragmas import lint_exempt


def host_timestamp():
    return time.time()  # simlint: disable=SIM101


def salt():
    return random.random()


@lint_exempt("DES202", reason="fixture: demonstrates the decorator form")
def nap():
    time.sleep(0.01)
