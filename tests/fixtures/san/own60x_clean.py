"""Linear counterparts of the OWN60x shapes.

Mirrors the real engine discipline: acquire from the freelist (or mint
a fresh object), then move ownership exactly once — to the scheduler,
back to the pool, to the caller via return, or into a helper.
"""


class PooledEngine:
    def acquire_for_caller(self, time_us, fn):
        if self._freelist:
            ev = self._freelist.pop()
        else:
            ev = Event()
        return ev

    def post_event(self, time_us, fn, args):
        ev = _acquire(time_us, fn, args)
        self._scheduler.push(ev)

    def reap_or_requeue(self):
        ev = self._freelist.pop()
        if ev.cancelled:
            self._recycle(ev)
        else:
            self._scheduler.push(ev)

    def drain_one(self):
        ev = self._freelist.pop()
        self._recycle(ev)

    def hand_to_helper(self, time_us, fn):
        ev = Event()
        self._dispatch(ev)
