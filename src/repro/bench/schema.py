"""Schema for ``BENCH_*.json`` documents.

CI's perf-smoke job fails on *schema* regressions — a benchmark that
stopped running, lost its events/sec measurement, or errored — never on
timing changes, which vary with the host. :func:`validate_bench_doc`
returns a list of human-readable problems; an empty list means the
document is valid.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set

#: Bump on any backwards-incompatible change to the document layout.
SCHEMA_ID = "repro-bench/1"

_BENCH_KINDS = ("engine", "scenario", "figure", "shard", "flowcache")

#: Required per-benchmark fields and their types.
_ENTRY_FIELDS = (
    ("name", str),
    ("kind", str),
    ("seed", int),
    ("status", str),
    ("wall_s", (int, float)),
    ("events", int),
    ("events_per_sec", (int, float)),
    ("headline", dict),
)

#: Required top-level fields and their types.
_TOP_FIELDS = (
    ("schema", str),
    ("created_utc", str),
    ("quick", bool),
    ("workers", int),
    ("root_seed", int),
    ("scheduler", str),
    ("benchmarks", list),
    ("totals", dict),
)

_TOTALS_FIELDS = (
    ("wall_s", (int, float)),
    ("events", int),
    ("events_per_sec", (int, float)),
    ("ok", int),
    ("errors", int),
)


def _check_fields(
    obj: Dict[str, Any], fields: Any, where: str, problems: List[str]
) -> None:
    for key, types in fields:
        if key not in obj:
            problems.append(f"{where}: missing required field {key!r}")
        elif not isinstance(obj[key], types) or isinstance(obj[key], bool) != (
            types is bool
        ):
            problems.append(
                f"{where}: field {key!r} has type "
                f"{type(obj[key]).__name__}, expected "
                f"{types.__name__ if isinstance(types, type) else 'number'}"
            )


def validate_bench_doc(doc: Any) -> List[str]:
    """All schema problems with ``doc`` (empty list == valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    _check_fields(doc, _TOP_FIELDS, "document", problems)
    if doc.get("schema") not in (None, SCHEMA_ID):
        problems.append(
            f"document: schema is {doc.get('schema')!r}, expected {SCHEMA_ID!r}"
        )
    benchmarks = doc.get("benchmarks")
    if isinstance(benchmarks, list):
        if not benchmarks:
            problems.append("document: benchmarks list is empty")
        seen: Set[str] = set()
        for index, entry in enumerate(benchmarks):
            where = f"benchmarks[{index}]"
            if not isinstance(entry, dict):
                problems.append(f"{where}: not an object")
                continue
            _check_fields(entry, _ENTRY_FIELDS, where, problems)
            name = entry.get("name")
            if isinstance(name, str):
                if name in seen:
                    problems.append(f"{where}: duplicate benchmark name {name!r}")
                seen.add(name)
            kind = entry.get("kind")
            if isinstance(kind, str) and kind not in _BENCH_KINDS:
                problems.append(f"{where}: unknown kind {kind!r}")
            status = entry.get("status")
            if status not in ("ok", "error"):
                problems.append(f"{where}: status must be 'ok' or 'error'")
            elif status == "error" and not isinstance(entry.get("error"), str):
                problems.append(f"{where}: error status requires an 'error' string")
    totals = doc.get("totals")
    if isinstance(totals, dict):
        _check_fields(totals, _TOTALS_FIELDS, "totals", problems)
        if isinstance(benchmarks, list) and all(
            isinstance(entry, dict) for entry in benchmarks
        ):
            ok = sum(1 for entry in benchmarks if entry.get("status") == "ok")
            errors = sum(1 for entry in benchmarks if entry.get("status") == "error")
            if totals.get("ok") != ok or totals.get("errors") != errors:
                problems.append(
                    "totals: ok/errors counts disagree with benchmark entries"
                )
    return problems


#: Default allowed fractional events/sec slowdown vs the baseline. CI
#: hosts differ wildly in single-core speed, so the band is wide: the
#: gate exists to catch order-of-magnitude collapses (an accidentally
#: quadratic scheduler, a run that silently did no work), not 10% noise.
DEFAULT_TOLERANCE = 0.5


def compare_bench_docs(
    current: Any, baseline: Any, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Regressions in ``current`` relative to a committed ``baseline``.

    Three classes of failure, all human-readable strings (empty list ==
    pass):

    * a benchmark that was ``ok`` in the baseline is missing or errored;
    * a benchmark's ``events_per_sec`` fell below ``(1 - tolerance)`` of
      the baseline's;
    * either document fails schema validation outright.

    Benchmarks added since the baseline are ignored — new work must not
    require regenerating the baseline to land.
    """
    problems: List[str] = []
    if not 0.0 <= tolerance < 1.0:
        return [f"tolerance must be in [0, 1), got {tolerance}"]
    for label, doc in (("current", current), ("baseline", baseline)):
        schema_problems = validate_bench_doc(doc)
        if schema_problems:
            problems.extend(f"{label} document: {p}" for p in schema_problems)
    if problems:
        return problems
    current_by_name = {
        entry["name"]: entry for entry in current["benchmarks"]
    }
    floor = 1.0 - tolerance
    for entry in baseline["benchmarks"]:
        name = entry["name"]
        if entry["status"] != "ok":
            continue  # a broken baseline entry gates nothing
        now = current_by_name.get(name)
        if now is None:
            problems.append(f"{name}: in baseline but missing from this run")
            continue
        if now["status"] != "ok":
            problems.append(
                f"{name}: ok in baseline but {now['status']} now "
                f"({now.get('error', 'no detail')})"
            )
            continue
        base_eps = float(entry["events_per_sec"])
        now_eps = float(now["events_per_sec"])
        if base_eps > 0 and now_eps < base_eps * floor:
            problems.append(
                f"{name}: events/sec fell to {now_eps:,.0f} from baseline "
                f"{base_eps:,.0f} ({now_eps / base_eps:.1%}; floor is "
                f"{floor:.0%} of baseline)"
            )
    return problems
