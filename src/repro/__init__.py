"""repro — a simulation-based reproduction of Falcon (EuroSys '21).

Falcon ("Parallelizing Packet Processing in Container Overlay Networks",
Lei, Munikar, Suo, Lu & Rao) pipelines the software interrupts of a
single overlay-network flow across CPU cores. The original artifact is a
Linux kernel patch; this library reproduces the system and its entire
evaluation on a discrete-event model of the kernel's receive pipeline.

Quickstart
----------
>>> from repro import Experiment, FalconConfig
>>> exp = Experiment(mode="overlay", falcon=FalconConfig(cpus=[1, 3, 4, 5]))
>>> result = exp.run_udp_stress(message_size=16, duration_ms=5)
>>> result.packet_rate_pps > 0
True

See ``examples/quickstart.py`` for a guided tour and DESIGN.md for the
architecture.
"""

from repro.core.config import FalconConfig, FlowCacheConfig
from repro.core.falcon import FalconSteering
from repro.kernel.costs import CostModel
from repro.kernel.skb import FlowKey, Skb
from repro.kernel.stack import NetworkStack, StackConfig
from repro.overlay.host import Host
from repro.overlay.network import OverlayNetwork
from repro.sim.engine import Simulator
from repro.workloads.sockperf import Experiment

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "Experiment",
    "FalconConfig",
    "FalconSteering",
    "FlowCacheConfig",
    "FlowKey",
    "Host",
    "NetworkStack",
    "OverlayNetwork",
    "Simulator",
    "Skb",
    "StackConfig",
    "__version__",
]
