"""Clean twin of sim102_bad: draws come from a named registry stream."""


def jitter_us(machine, base):
    rng = machine.rng.stream("jitter")
    return base + rng.random()
