"""OWN601-603: event freelist lifecycle violations.

Every shape here corrupts the engine's pooled-event discipline: a
double release hands one object to two callers, a use-after-release
races the pool's rebind, and a leak on any path silently shrinks the
freelist every time that path is hit.
"""


class DoubleFreePoster:
    def reap_twice(self):
        ev = self._freelist.pop()
        self._recycle(ev)
        self._recycle(ev)  # expect: OWN601

    def recycle_and_return_to_pool(self):
        ev = self._freelist.pop()
        self._recycle(ev)
        self._freelist.append(ev)  # expect: OWN601


class UseAfterFreePoster:
    def requeue_cancelled(self, scheduler):
        ev = self._freelist.pop()
        self._recycle(ev)
        scheduler.push(ev)  # expect: OWN602

    def patch_after_free(self, now):
        ev = Event()
        self._recycle(ev)
        ev.time = now  # expect: OWN602


class LeakyPoster:
    def post_if_armed(self, armed, time_us, fn):
        ev = self._freelist.pop()  # expect: OWN603
        if armed:
            self._scheduler.push(ev)

    def rebind_over_live(self):
        ev = Event()  # expect: OWN603
        ev = Event()
        self._scheduler.push(ev)

    def mint_and_drop(self, time_us, fn):
        ev = _acquire(time_us, fn)  # expect: OWN603
        self._pending += 1
