"""TIME501: arithmetic across different time units."""


def total_latency(delay_us, gap_ns):
    return delay_us + gap_ns  # expect: TIME501


def remaining_budget():
    window_ms = 5.0
    slack_us = 250.0
    return window_ms - slack_us  # expect: TIME501
