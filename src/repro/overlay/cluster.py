"""Multi-host cluster scenario for the sharded engine.

A :class:`ClusterSpec` describes a set of hosts exchanging sockperf-style
flows over inter-host links. The cluster is *partition-invariant by
construction*: every cross-host interaction — frames and TCP credits —
travels as a :class:`~repro.sim.shard.records.CrossShardEvent` through
the coordinator's barrier/merge path even when source and destination
happen to live in the same shard. A 1-shard run therefore exercises the
exact same record sequence as an N-shard run, which is what lets the
shard-equivalence suite demand byte-identical traces.

Determinism over process boundaries requires two departures from the
single-host :class:`~repro.workloads.sockperf.Testbed`:

* flow ids are assigned from a fixed base (``FLOW_ID_BASE + flow
  index``) instead of the process-global counter — worker processes
  start from a fresh interpreter, and RNG stream names embed the flow
  id;
* every host owns its own :class:`~repro.sim.context.SimContext`, RNG
  registry and overlay control plane, seeded from ``(spec.seed, host
  index)`` — hosts co-located in a shard share a simulator clock but no
  mutable state, so their traces cannot depend on which hosts they were
  co-located with.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import FalconConfig, FlowCacheConfig
from repro.hw.link import Link
from repro.hw.lookahead import lookahead_from_latencies
from repro.kernel.skb import PROTO_TCP, PROTO_UDP, FlowKey, Skb
from repro.kernel.stack import MODE_OVERLAY, StackConfig
from repro.metrics.meters import MeasurementWindow
from repro.metrics.tracing import PacketTracer
from repro.overlay.host import Host
from repro.overlay.network import OverlayNetwork
from repro.sim.engine import Simulator, note_external_events
from repro.sim.errors import ConfigurationError, ShardError
from repro.sim.shard import CrossShardEvent, InlineShardHandle, ShardCoordinator
from repro.validate.golden import SCHEMA_VERSION, TIME_PRECISION
from repro.workloads.flows import TcpSender, UdpSender
from repro.workloads.traffic import ConstantRate, Saturating

#: Cluster flow ids live far above anything the process-global counter
#: reaches, so deterministic ids can never collide with testbed flows.
FLOW_ID_BASE = 1 << 20

RECORD_SKB = "skb"
RECORD_CREDIT = "credit"
#: Flow-cache invalidation: container churn on the destination host
#: tells each sender host to drop its egress fast-path entry.
RECORD_INVAL = "inval"


def host_ip(host: int) -> int:
    """10.0.0.(host+1) — the underlay address of a cluster host."""
    return 0x0A000000 + host + 1


def container_ip(host: int) -> int:
    """172.17.host.2 — the private address of a host's server container."""
    return 0xAC110000 + (host << 8) + 2


# ----------------------------------------------------------------------
# Specification (wire-friendly: everything round-trips through tuples)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterFlow:
    """One directed flow between two cluster hosts."""

    kind: str  # "udp" | "tcp"
    src: int
    dst: int
    message_size: int
    #: UDP offered rate; None saturates. Ignored for TCP.
    rate_pps: Optional[float] = None
    window_msgs: int = 16

    def to_wire(self) -> Tuple[Any, ...]:
        return (
            self.kind,
            self.src,
            self.dst,
            self.message_size,
            self.rate_pps,
            self.window_msgs,
        )

    @classmethod
    def from_wire(cls, wire: Tuple[Any, ...]) -> "ClusterFlow":
        return cls(*wire)


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster scenario, restricted to primitives so it crosses pipes."""

    num_hosts: int
    flows: Tuple[ClusterFlow, ...]
    seed: int = 0
    scheduler: str = "heap"
    falcon: bool = False
    num_cpus: int = 8
    bandwidth_gbps: float = 10.0
    #: Inter-host propagation delay — the sharded engine's lookahead.
    propagation_us: float = 5.0
    warmup_us: float = 2000.0
    duration_us: float = 5000.0
    trace: bool = False
    trace_sample_every: int = 10
    trace_max: int = 64
    #: Enable the per-flow fast-path cache on every host's stack.
    flowcache: bool = False
    flowcache_capacity: int = 128
    #: Container churn events: ``(time_us, host)`` — at that time the
    #: host's server container restarts (migration / FDB flush), which
    #: invalidates its local cache entries and sends ``RECORD_INVAL`` to
    #: every sender targeting it (possibly across a shard boundary).
    churn: Tuple[Tuple[float, int], ...] = ()

    def validate(self) -> None:
        if self.num_hosts < 1:
            raise ConfigurationError("cluster needs at least one host")
        lookahead_from_latencies([self.propagation_us])
        if self.flowcache and self.flowcache_capacity < 1:
            raise ConfigurationError("flowcache capacity must be >= 1")
        for index, (time_us, h) in enumerate(self.churn):
            if time_us < 0:
                raise ConfigurationError(f"churn {index}: negative time")
            if not 0 <= h < self.num_hosts:
                raise ConfigurationError(
                    f"churn {index}: host {h} outside cluster"
                )
        for index, flow in enumerate(self.flows):
            if flow.kind not in ("udp", "tcp"):
                raise ConfigurationError(f"flow {index}: unknown kind {flow.kind!r}")
            for label, h in (("src", flow.src), ("dst", flow.dst)):
                if not 0 <= h < self.num_hosts:
                    raise ConfigurationError(
                        f"flow {index}: {label} host {h} outside cluster"
                    )
            if flow.src == flow.dst:
                raise ConfigurationError(
                    f"flow {index}: src and dst must be distinct hosts"
                )

    @property
    def end_us(self) -> float:
        return self.warmup_us + self.duration_us

    def to_wire(self) -> Tuple[Any, ...]:
        return (
            self.num_hosts,
            tuple(flow.to_wire() for flow in self.flows),
            self.seed,
            self.scheduler,
            self.falcon,
            self.num_cpus,
            self.bandwidth_gbps,
            self.propagation_us,
            self.warmup_us,
            self.duration_us,
            self.trace,
            self.trace_sample_every,
            self.trace_max,
            self.flowcache,
            self.flowcache_capacity,
            tuple(tuple(entry) for entry in self.churn),
        )

    @classmethod
    def from_wire(cls, wire: Tuple[Any, ...]) -> "ClusterSpec":
        fields = list(wire)
        fields[1] = tuple(ClusterFlow.from_wire(f) for f in fields[1])
        fields[-1] = tuple(tuple(entry) for entry in fields[-1])
        return cls(*fields)


def udp_ring_spec(
    num_hosts: int = 4,
    message_size: int = 512,
    rate_pps: float = 40_000.0,
    **overrides: Any,
) -> ClusterSpec:
    """Each host streams UDP to its ring successor — the standard
    equivalence/golden scenario (every host both sends and receives)."""
    flows = tuple(
        ClusterFlow("udp", h, (h + 1) % num_hosts, message_size, rate_pps)
        for h in range(num_hosts)
    )
    return ClusterSpec(num_hosts=num_hosts, flows=flows, **overrides)


def udp_double_ring_spec(
    num_hosts: int = 3,
    message_size: int = 512,
    rate_pps: float = 40_000.0,
    rate2_pps: float = 12_000.0,
    **overrides: Any,
) -> ClusterSpec:
    """Two interleaved UDP rings (stride 1 and stride 2), so every host
    *receives two flows* — with a small ``flowcache_capacity`` this
    thrashes the ingress table and exercises the full cache lifecycle
    (miss → hit → evict → invalidate when combined with churn)."""
    if num_hosts < 3:
        raise ConfigurationError("double ring needs at least three hosts")
    flows = tuple(
        ClusterFlow("udp", h, (h + 1) % num_hosts, message_size, rate_pps)
        for h in range(num_hosts)
    ) + tuple(
        ClusterFlow("udp", h, (h + 2) % num_hosts, message_size, rate2_pps)
        for h in range(num_hosts)
    )
    return ClusterSpec(num_hosts=num_hosts, flows=flows, **overrides)


def tcp_ring_spec(
    num_hosts: int = 4,
    message_size: int = 4096,
    window_msgs: int = 8,
    **overrides: Any,
) -> ClusterSpec:
    """Closed-loop TCP ring: credits flow against the data direction."""
    flows = tuple(
        ClusterFlow(
            "tcp", h, (h + 1) % num_hosts, message_size, window_msgs=window_msgs
        )
        for h in range(num_hosts)
    )
    return ClusterSpec(num_hosts=num_hosts, flows=flows, **overrides)


# ----------------------------------------------------------------------
# Cross-shard payload codecs
# ----------------------------------------------------------------------
def encode_skb(flow_index: int, skb: Skb) -> Tuple[Any, ...]:
    return (
        flow_index,
        skb.size,
        skb.wire_size,
        skb.msg_id,
        skb.msg_size,
        skb.frag_index,
        skb.frag_count,
        skb.seq,
        skb.t_send,
        skb.encapsulated,
    )


def decode_skb(flow: FlowKey, payload: Tuple[Any, ...]) -> Skb:
    if len(payload) != 10:
        raise ShardError(
            f"malformed skb record payload: expected 10 fields, got "
            f"{len(payload)}"
        )
    (size, wire_size, msg_id, msg_size, frag_index, frag_count,
     seq, t_send, encapsulated) = payload[1:]
    return Skb(
        flow,
        size=size,
        wire_size=wire_size,
        msg_id=msg_id,
        msg_size=msg_size,
        frag_index=frag_index,
        frag_count=frag_count,
        seq=seq,
        t_send=t_send,
        encapsulated=encapsulated,
    )


class _HostOutbox:
    """Per-host staging area for records leaving this host.

    The sequence counter is per *source host*, so the merge key's
    ``(src, seq)`` component is assigned identically no matter how hosts
    are grouped into shards.
    """

    def __init__(self, host_index: int) -> None:
        self.host_index = host_index
        self._seq = 0
        self.pending: List[CrossShardEvent] = []
        #: Ownership ledger hook (REPRO_SANITIZE=1); None in normal runs.
        self._san: Optional[Any] = None
        if os.environ.get("REPRO_SANITIZE"):
            from repro.validate.sanitize import current_ledger

            self._san = current_ledger()

    def emit(self, time: float, kind: str, dst: int, payload: Tuple[Any, ...]) -> None:
        self.pending.append(
            CrossShardEvent(time, self.host_index, self._seq, kind, dst, payload)
        )
        if self._san is not None:
            self._san.acquire(
                "record", (self.host_index, self._seq), "outbox.emit"
            )
        self._seq += 1

    def drain(self) -> List[CrossShardEvent]:
        records, self.pending = self.pending, []
        return records


class ClusterUdpSender(UdpSender):
    """UDP sender whose frames leave through the cross-shard record path."""

    def __init__(self, *args: Any, outbox: _HostOutbox, flow_index: int,
                 dst_host: int, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.outbox = outbox
        self.flow_index = flow_index
        self.dst_host = dst_host

    def _transmit(self, skb: Skb) -> None:
        arrival = self.link.reserve(skb.wire_size)
        self.outbox.emit(
            arrival, RECORD_SKB, self.dst_host, encode_skb(self.flow_index, skb)
        )


class ClusterTcpSender(TcpSender):
    """TCP sender driven by credit records instead of a local callback."""

    def __init__(self, *args: Any, outbox: _HostOutbox, flow_index: int,
                 dst_host: int, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.outbox = outbox
        self.flow_index = flow_index
        self.dst_host = dst_host

    def _transmit(self, skb: Skb) -> None:
        arrival = self.link.reserve(skb.wire_size)
        self.outbox.emit(
            arrival, RECORD_SKB, self.dst_host, encode_skb(self.flow_index, skb)
        )

    def remote_credit(self) -> None:
        """A credit record arrived — the ACK's flight time is already in
        the record timestamp, so the window refills immediately."""
        self.completed_messages += 1
        self._last_activity = self.sim.now
        self.outstanding = max(self.outstanding - 1, 0)
        if self.process is None and self._allowed():
            self._fill_window()


# ----------------------------------------------------------------------
# The shard program
# ----------------------------------------------------------------------
class _ClusterHost:
    """One host's world: stack, measurement window, senders, codecs."""

    def __init__(self, sim: Simulator, spec: ClusterSpec, index: int) -> None:
        self.index = index
        falcon = FalconConfig() if spec.falcon else None
        flowcache = (
            FlowCacheConfig(capacity=spec.flowcache_capacity)
            if spec.flowcache
            else None
        )
        config = StackConfig(
            mode=MODE_OVERLAY,
            irq_cpus=[0],
            rps_cpus=[1],
            steering="rps",
            falcon=falcon,
            flowcache=flowcache,
        )
        self.host = Host(
            sim,
            config,
            num_cpus=spec.num_cpus,
            host_ip=host_ip(index),
            name=f"host{index}",
            seed=spec.seed * 1_000_003 + index,
        )
        self.host._next_container_ip = container_ip(index)
        self.network = OverlayNetwork(name=f"overlay/host{index}")
        self.container = self.host.launch_container("server")
        self.network.join(self.container)
        self.outbox = _HostOutbox(index)
        self.uplink = Link(sim, spec.bandwidth_gbps, spec.propagation_us)
        self.window = MeasurementWindow(self.host.machine, self.host.stack)
        self.tracer: Optional[PacketTracer] = None
        if spec.trace:
            self.tracer = PacketTracer(
                sample_every=spec.trace_sample_every, max_messages=spec.trace_max
            )
            self.host.stack.tracer = self.tracer
        #: flow index → this host's FlowKey instance (receive side).
        self.rx_flows: Dict[int, FlowKey] = {}
        #: flow index → sender living on this host (transmit side).
        self.senders: Dict[int, ClusterUdpSender | ClusterTcpSender] = {}
        self.messages_sent_at_open = 0

    def snapshot_open(self) -> None:
        self.messages_sent_at_open = sum(
            sender.messages_sent for sender in self.senders.values()
        )

    def result(self) -> Dict[str, Any]:
        window = self.window
        sent = (
            sum(sender.messages_sent for sender in self.senders.values())
            - self.messages_sent_at_open
        )
        doc: Dict[str, Any] = {
            "host": self.index,
            "messages_delivered": window.rate.count,
            "message_rate_pps": window.rate.rate_per_sec(),
            "goodput_gbps": window.rate.gbps(),
            "messages_sent": sent,
            "latency": window.latency.summary(),
            "drops": dict(self.host.stack.drop_counts()),
            "reordered_messages": sum(
                sock.reordered_messages
                for sock in self.host.stack.sockets.sockets()
            ),
        }
        flowcache = self.host.stack.flowcache
        if flowcache is not None:
            doc["flowcache"] = dict(sorted(flowcache.counters().items()))
            doc["fastpath_deliveries"] = self.host.stack.fastpath_deliveries
        if self.tracer is not None:
            doc["trace_entries"] = [
                [
                    trace.flow_id,
                    trace.msg_id,
                    [
                        [
                            round(event.time_us, TIME_PRECISION),
                            event.kind,
                            event.stage,
                            event.cpu,
                        ]
                        for event in trace.events
                    ],
                ]
                for trace in self.tracer.traces(complete_only=False)
            ]
        return doc


def _make_flow_key(spec: ClusterSpec, flow_index: int) -> FlowKey:
    flow = spec.flows[flow_index]
    key = FlowKey(
        src_ip=host_ip(flow.src),
        dst_ip=container_ip(flow.dst),
        proto=PROTO_TCP if flow.kind == "tcp" else PROTO_UDP,
        sport=40_000 + flow_index,
        dport=5_000 + flow_index,
    )
    # The process-global id counter differs between the parent and a
    # fresh spawn worker; pin ids so RNG stream names and socket binding
    # agree across every shard layout.
    key.flow_id = FLOW_ID_BASE + flow_index
    return key


class ClusterWorld:
    """ShardProgram simulating a subset of the cluster's hosts."""

    def __init__(self, spec: ClusterSpec, hosts: Sequence[int]) -> None:
        spec.validate()
        self.spec = spec
        self.sim = Simulator(spec.scheduler)
        #: Ownership ledger hook (REPRO_SANITIZE=1); None in normal runs.
        self._san: Optional[Any] = None
        if os.environ.get("REPRO_SANITIZE"):
            from repro.validate.sanitize import current_ledger

            self._san = current_ledger()
        self._hosts = tuple(hosts)
        self.by_index: Dict[int, _ClusterHost] = {
            h: _ClusterHost(self.sim, spec, h) for h in self._hosts
        }
        for flow_index, flow in enumerate(spec.flows):
            if flow.dst in self.by_index:
                self._build_receiver(flow_index, flow)
            if flow.src in self.by_index:
                self._build_sender(flow_index, flow)
        end = spec.end_us
        for h in self._hosts:
            world_host = self.by_index[h]
            self.sim.post_at(spec.warmup_us, self._open_window, world_host)
            self.sim.post_at(end, world_host.window.close)
            for sender in world_host.senders.values():
                sender.start(until_us=end)
        # Container churn runs on the churned host's shard; the sender
        # side learns about it through RECORD_INVAL records, which cross
        # shard boundaries like any other record.
        for time_us, h in spec.churn:
            if h in self.by_index:
                self.sim.post_at(time_us, self._churn, self.by_index[h])

    def _churn(self, world_host: _ClusterHost) -> None:
        """The host's server container restarts (migration/FDB flush).

        Locally every cached flow touching the container's IP is stale;
        remotely, each sender that targets this host must drop its egress
        template — the invalidation travels one propagation delay, the
        same causality bound the TCP credits use.
        """
        flowcache = world_host.host.stack.flowcache
        if flowcache is not None:
            flowcache.invalidate_ip(container_ip(world_host.index))
        propagation = self.spec.propagation_us
        for flow_index, flow in enumerate(self.spec.flows):
            if flow.dst == world_host.index:
                world_host.outbox.emit(
                    self.sim.now + propagation,
                    RECORD_INVAL,
                    flow.src,
                    (flow_index,),
                )

    @staticmethod
    def _open_window(world_host: _ClusterHost) -> None:
        world_host.window.open()
        world_host.snapshot_open()

    # ------------------------------------------------------------------
    def _build_receiver(self, flow_index: int, flow: ClusterFlow) -> None:
        world_host = self.by_index[flow.dst]
        key = _make_flow_key(self.spec, flow_index)
        world_host.rx_flows[flow_index] = key
        # Encap-time resolution, done once at build so the control plane
        # state never mutates mid-run.
        world_host.network.resolve_host(key.dst_ip)
        outbox = world_host.outbox
        window = world_host.window
        propagation = self.spec.propagation_us
        is_tcp = flow.kind == "tcp"
        src_host = flow.src
        sim = self.sim

        def on_message(socket: Any, skb: Skb, latency_us: float) -> None:
            window.on_message(socket, skb, latency_us)
            if is_tcp:
                # The credit's flight back is one propagation delay —
                # >= the lookahead, so it is causality-safe to emit from
                # inside a window.
                outbox.emit(
                    sim.now + propagation, RECORD_CREDIT, src_host, (flow_index,)
                )

        world_host.host.stack.open_socket(
            key, app_cpu=2, on_message=on_message, name=f"sock{flow_index}"
        )

    def _build_sender(self, flow_index: int, flow: ClusterFlow) -> None:
        world_host = self.by_index[flow.src]
        key = _make_flow_key(self.spec, flow_index)
        stack = world_host.host.stack
        common = dict(
            outbox=world_host.outbox,
            flow_index=flow_index,
            dst_host=flow.dst,
        )
        if flow.kind == "udp":
            process = (
                Saturating()
                if flow.rate_pps is None
                else ConstantRate(flow.rate_pps)
            )
            sender: ClusterUdpSender | ClusterTcpSender = ClusterUdpSender(
                self.sim,
                world_host.uplink,
                stack,
                key,
                flow.message_size,
                stack.costs,
                world_host.host.machine.rng.stream(f"sender/{key.flow_id}/0"),
                process,
                name=f"udp{flow_index}",
                **common,
            )
        else:
            sender = ClusterTcpSender(
                self.sim,
                world_host.uplink,
                stack,
                key,
                flow.message_size,
                stack.costs,
                world_host.host.machine.rng.stream(f"sender/{key.flow_id}"),
                window_msgs=flow.window_msgs,
                name=f"tcp{flow_index}",
                **common,
            )
        world_host.senders[flow_index] = sender

    # ------------------------------------------------------------------
    # ShardProgram interface
    # ------------------------------------------------------------------
    def hosts(self) -> Sequence[int]:
        return self._hosts

    def next_time(self) -> Optional[float]:
        return self.sim.peek_time()

    def advance(self, bound: float, inclusive: bool = False) -> List[CrossShardEvent]:
        sim = self.sim
        if inclusive:
            sim.run(until=bound)
        else:
            while True:
                t = sim.peek_time()
                if t is None or t >= bound:
                    break
                sim.run(until=t)
        produced: List[CrossShardEvent] = []
        for h in self._hosts:
            produced.extend(self.by_index[h].outbox.drain())
        return produced

    def inject(self, records: Sequence[CrossShardEvent]) -> None:
        san = self._san
        for record in records:
            if san is not None:
                # Delivery to the destination shard ends the record's
                # flight; from here the payload lives in local events.
                san.release("record", (record.src, record.seq), "world.inject")
            world_host = self.by_index.get(record.dst)
            if world_host is None:
                raise ShardError(
                    f"record for host {record.dst} routed to a shard that "
                    f"simulates {self._hosts}"
                )
            if record.kind == RECORD_SKB:
                flow_index = record.payload[0]
                key = world_host.rx_flows.get(flow_index)
                if key is None:
                    raise ShardError(
                        f"skb record for unknown flow {flow_index!r} on "
                        f"host {record.dst}"
                    )
                skb = decode_skb(key, record.payload)
                self.sim.post_at(record.time, world_host.host.stack.inject, skb)
            elif record.kind == RECORD_CREDIT:
                flow_index = record.payload[0] if record.payload else None
                sender = world_host.senders.get(flow_index)  # type: ignore[arg-type]
                if not isinstance(sender, ClusterTcpSender):
                    raise ShardError(
                        f"credit record for unknown TCP flow {flow_index!r} "
                        f"on host {record.dst}"
                    )
                self.sim.post_at(record.time, sender.remote_credit)
            elif record.kind == RECORD_INVAL:
                flow_index = record.payload[0] if record.payload else None
                sender = world_host.senders.get(flow_index)  # type: ignore[arg-type]
                if sender is None:
                    raise ShardError(
                        f"inval record for unknown flow {flow_index!r} on "
                        f"host {record.dst}"
                    )
                self.sim.post_at(
                    record.time, self._sender_inval, world_host, sender.flow
                )
            else:
                raise ShardError(f"unknown cross-shard record kind {record.kind!r}")

    @staticmethod
    def _sender_inval(world_host: _ClusterHost, flow: FlowKey) -> None:
        flowcache = world_host.host.stack.flowcache
        if flowcache is not None:
            flowcache.invalidate_flow(flow)

    def finalize(self) -> Dict[str, Any]:
        return {
            "hosts": [self.by_index[h].result() for h in self._hosts],
            "events_processed": self.sim.events_processed,
        }


def build_shard_world(
    spec_wire: Tuple[Any, ...], hosts: Tuple[int, ...]
) -> ClusterWorld:
    """Builder resolved inside spawn workers (see shard.transport)."""
    return ClusterWorld(ClusterSpec.from_wire(spec_wire), hosts)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def partition_hosts(num_hosts: int, shards: int) -> List[Tuple[int, ...]]:
    """Contiguous, near-even host groups; every shard gets >= 1 host."""
    if shards < 1:
        raise ConfigurationError("need at least one shard")
    if shards > num_hosts:
        raise ConfigurationError(
            f"cannot split {num_hosts} hosts into {shards} shards"
        )
    base, extra = divmod(num_hosts, shards)
    groups: List[Tuple[int, ...]] = []
    start = 0
    for slot in range(shards):
        size = base + (1 if slot < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return groups


@dataclass
class ClusterResult:
    """Aggregated outcome of one cluster run."""

    spec: ClusterSpec
    shards: int
    transport: str
    messages_delivered: int
    message_rate_pps: float
    goodput_gbps: float
    avg_latency_us: float
    per_host: List[Dict[str, Any]]
    events_processed: int
    windows_run: int
    records_exchanged: int
    trace_doc: Optional[Dict[str, Any]] = None


def _merge_trace_doc(
    per_host: List[Dict[str, Any]], meta: Dict[str, Any]
) -> Dict[str, Any]:
    """Combine per-host raw trace entries into one canonical document.

    Same canonicalization as :func:`repro.validate.golden.serialize_traces`:
    dense flow indexes in ascending flow-id order, entries sorted by
    (flow, msg).
    """
    entries: List[Tuple[int, int, List[Any]]] = []
    for host_doc in per_host:
        for flow_id, msg_id, events in host_doc.get("trace_entries", []):
            entries.append((flow_id, msg_id, events))
    flow_order = sorted({flow_id for flow_id, _, _ in entries})
    flow_index = {flow_id: index for index, flow_id in enumerate(flow_order)}
    entries.sort(key=lambda entry: (flow_index[entry[0]], entry[1]))
    return {
        "schema": SCHEMA_VERSION,
        "meta": dict(meta),
        "traces": [
            {"flow": flow_index[flow_id], "msg": msg_id, "events": events}
            for flow_id, msg_id, events in entries
        ],
    }


def run_cluster(
    spec: ClusterSpec,
    shards: int = 1,
    transport: str = "inline",
    timeout_s: Optional[float] = None,
    faults: Optional[Dict[int, Tuple[str, int]]] = None,
    record_windows: bool = False,
) -> ClusterResult:
    """Run a cluster scenario split over ``shards`` shards.

    ``transport="inline"`` keeps every shard in this process (the
    deterministic reference and test configuration);
    ``transport="process"`` spawns one worker per shard and exchanges
    records over pipes. Both produce identical results by design.
    """
    spec.validate()
    groups = partition_hosts(spec.num_hosts, shards)
    lookahead = lookahead_from_latencies([spec.propagation_us])
    handles: List[Any] = []
    if transport == "inline":
        if faults:
            raise ConfigurationError("fault injection needs the process transport")
        for slot, group in enumerate(groups):
            handles.append(InlineShardHandle(slot, ClusterWorld(spec, group)))
    elif transport == "process":
        # The only OS-facing corner of the engine; imported lazily so
        # the pure-DES path never loads it.
        from repro.sim.shard.transport import (
            DEFAULT_STEP_TIMEOUT_S,
            ProcessShardHandle,
        )

        for slot, group in enumerate(groups):
            handles.append(
                ProcessShardHandle(
                    slot,
                    group,
                    "repro.overlay.cluster:build_shard_world",
                    (spec.to_wire(), group),
                    timeout_s=timeout_s or DEFAULT_STEP_TIMEOUT_S,
                    fault=(faults or {}).get(slot),
                )
            )
    else:
        raise ConfigurationError(f"unknown shard transport {transport!r}")

    coordinator = ShardCoordinator(handles, lookahead, record_windows=record_windows)
    try:
        coordinator.run(until=spec.end_us)
        shard_results = coordinator.finalize()
    finally:
        coordinator.close()

    per_host: List[Dict[str, Any]] = []
    events = 0
    for shard_doc in shard_results:
        per_host.extend(shard_doc["hosts"])
        events += int(shard_doc["events_processed"])
    per_host.sort(key=lambda doc: doc["host"])
    if transport == "process":
        # Worker simulators counted their events in their own process;
        # fold them into this one for events/sec accounting.
        note_external_events(events)

    delivered = sum(doc["messages_delivered"] for doc in per_host)
    rate = sum(doc["message_rate_pps"] for doc in per_host)
    goodput = sum(doc["goodput_gbps"] for doc in per_host)
    weighted = sum(
        doc["latency"].get("avg", 0.0) * doc["messages_delivered"]
        for doc in per_host
    )
    trace_doc: Optional[Dict[str, Any]] = None
    if spec.trace:
        trace_doc = _merge_trace_doc(
            per_host,
            meta={
                "scenario": "cluster",
                "num_hosts": spec.num_hosts,
                "seed": spec.seed,
                "scheduler": spec.scheduler,
                "falcon": spec.falcon,
                "flows": [list(flow.to_wire()) for flow in spec.flows],
                "warmup_us": spec.warmup_us,
                "duration_us": spec.duration_us,
                # Only stamped when the cache datapath is on, so the
                # pre-cache goldens stay byte-identical.
                **(
                    {
                        "flowcache": True,
                        "flowcache_capacity": spec.flowcache_capacity,
                        "churn": [list(entry) for entry in spec.churn],
                    }
                    if spec.flowcache
                    else {}
                ),
            },
        )
        for doc in per_host:
            doc.pop("trace_entries", None)
    return ClusterResult(
        spec=spec,
        shards=shards,
        transport=transport,
        messages_delivered=delivered,
        message_rate_pps=rate,
        goodput_gbps=goodput,
        avg_latency_us=weighted / delivered if delivered else 0.0,
        per_host=per_host,
        events_processed=events,
        windows_run=coordinator.windows_run,
        records_exchanged=coordinator.records_exchanged,
        trace_doc=trace_doc,
    )
