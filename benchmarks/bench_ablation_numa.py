"""Ablation: NUMA placement of FALCON_CPUS.

The testbed machines are dual-socket (2×10 cores). Every cross-core hop
Falcon introduces costs more when it crosses the socket boundary
(`LocalityModel.cross_socket` > `cross_core`), so where the operator
places FALCON_CPUS matters: same socket as the NIC/steering cores, the
remote socket, or straddling both. The paper pins its Falcon cores
implicitly; this ablation makes the placement cost explicit.
"""

import pytest
from conftest import QUICK

from repro.core.config import FalconConfig
from repro.metrics.report import Table
from repro.workloads.sockperf import Testbed

DUR = dict(warmup_ms=4 if QUICK else 8, measure_ms=8 if QUICK else 20)

#: cores 0-9 are socket 0 (NIC, RPS, app); 10-19 are socket 1.
PLACEMENTS = [
    ("local socket", [3, 4, 5, 6]),
    ("remote socket", [13, 14, 15, 16]),
    ("straddling", [3, 4, 13, 14]),
]


def run_case(cpus):
    bed = Testbed(mode="overlay", falcon=FalconConfig(cpus=list(cpus)))
    bed.add_udp_flow(16, clients=3)
    stress = bed.run(**DUR)
    bed2 = Testbed(mode="overlay", falcon=FalconConfig(cpus=list(cpus)))
    bed2.add_udp_flow(16, clients=1, rate_pps=300_000, poisson=True)
    latency = bed2.run(**DUR)
    return stress, latency


def test_ablation_numa_placement(benchmark):
    def run():
        return {name: run_case(cpus) for name, cpus in PLACEMENTS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["FALCON_CPUS", "stress kpps", "avg us @300k", "p99 us @300k"],
        title="Falcon CPU placement across sockets (16 B UDP)",
    )
    for name, _cpus in PLACEMENTS:
        stress, latency = results[name]
        table.add_row(
            name,
            stress.message_rate_pps / 1e3,
            latency.latency["avg"],
            latency.latency["p99"],
        )
    print()
    print(table.render())

    local_rate = results["local socket"][0].message_rate_pps
    remote_rate = results["remote socket"][0].message_rate_pps
    # Remote placement pays the cross-socket tax on every stage hop but
    # must remain a large win over the vanilla overlay (~0.44 Mpps).
    assert remote_rate <= local_rate * 1.02
    assert remote_rate > 700_000.0
    # Latency orders the same way.
    assert (
        results["local socket"][1].latency["avg"]
        <= results["remote socket"][1].latency["avg"] * 1.05
    )
