"""Determinism: a run is a pure function of (code, seed).

Reproducibility underpins both the figure harness (results/ must be
regenerable) and the paper's "consistent across runs" claims; any use of
unseeded randomness or dict-ordering luck breaks it.
"""

import pytest

from repro.core.config import FalconConfig
from repro.workloads.sockperf import Experiment

FAST = dict(duration_ms=6.0, warmup_ms=3.0)


def run_once(seed=0):
    exp = Experiment(mode="overlay", falcon=FalconConfig(), seed=seed)
    return exp.run_udp_stress(16, **FAST)


def fingerprint(result):
    return (
        result.messages_delivered,
        round(result.message_rate_pps, 6),
        round(result.latency["avg"], 9),
        round(result.latency["p99.9"], 9),
        tuple(round(u, 9) for u in result.cpu_util),
        tuple(sorted(result.interrupts.items())),
        result.softirq_raises,
        tuple(sorted(result.drops.items())),
    )


def test_same_seed_same_everything():
    assert fingerprint(run_once(0)) == fingerprint(run_once(0))


def test_different_seed_different_flows():
    first = run_once(0)
    second = run_once(7)
    # Same physics, different flow hashes: rates are close but the exact
    # event interleavings (and so latencies) differ.
    assert first.message_rate_pps == pytest.approx(
        second.message_rate_pps, rel=0.25
    )


def test_tcp_run_deterministic():
    def run():
        exp = Experiment(mode="overlay", falcon=FalconConfig(split_gro=True))
        return exp.run_tcp_stream(4096, window_msgs=16, **FAST)

    assert fingerprint(run()) == fingerprint(run())


def test_memcached_deterministic():
    from repro.workloads.memcached import run_memcached

    first = run_memcached(2, duration_ms=5, warmup_ms=3)
    second = run_memcached(2, duration_ms=5, warmup_ms=3)
    assert first.requests_completed == second.requests_completed
    assert first.latency["p99"] == second.latency["p99"]
