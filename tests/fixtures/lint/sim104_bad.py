"""SIM104: scheduling events while iterating a set."""


def wake_waiters(sim, delay, notify):
    pending = {"udp-flow", "tcp-flow", "timer"}
    for waiter in pending:  # expect: SIM104
        sim.schedule(delay, notify, waiter)
