"""Figure 14 — multi-container throughput in busy systems.

One flow per container; receiving CPUs limited to six cores that also
form FALCON_CPUS, so Falcon must scavenge idle cycles. As the container
count grows from 6 to 40 the receive cores go from ~70% busy to
saturated: Falcon's gain (up to ~27% UDP / 17% TCP) shrinks with load
and disappears — but never becomes a loss — once the system is
overloaded and the load gate disables it.
"""

from __future__ import annotations

from repro.core.config import FalconConfig
from repro.experiments.runner import ExperimentOutput, durations
from repro.metrics.report import Table
from repro.workloads.multiflow import run_multicontainer

FULL_COUNTS = (6, 10, 20, 30, 40)
QUICK_COUNTS = (6, 20)
RECEIVING = [1, 2, 3, 4, 5, 6]


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 14", "Multi-container throughput in busy systems")
    dur = durations(quick, 15.0, 8.0)
    counts = QUICK_COUNTS if quick else FULL_COUNTS
    protos = ("udp",) if quick else ("udp", "tcp")

    for proto in protos:
        rate = 220_000.0 if proto == "udp" else None
        table = Table(
            ["containers", "Con kpps", "Falcon kpps", "gain %",
             "Con util %", "Falcon util %"],
            title=f"{proto.upper()} one flow per container, 6 receive cores",
        )
        series = {}
        for count in counts:
            values = {}
            utils = {}
            for label, falcon in (
                ("Con", None),
                ("Falcon", FalconConfig(cpus=list(RECEIVING))),
            ):
                result = run_multicontainer(
                    count,
                    message_size=1024,
                    proto=proto,
                    falcon=falcon,
                    receiving_cpus=list(RECEIVING),
                    rate_per_flow=rate,
                    **dur,
                )
                values[label] = result.message_rate_pps
                utils[label] = (
                    sum(result.cpu_util[cpu] for cpu in RECEIVING) / len(RECEIVING)
                )
            gain = (values["Falcon"] / values["Con"] - 1.0) * 100 if values["Con"] else 0.0
            table.add_row(
                count,
                values["Con"] / 1e3,
                values["Falcon"] / 1e3,
                gain,
                utils["Con"] * 100,
                utils["Falcon"] * 100,
            )
            series[count] = dict(values=values, utils=utils, gain=gain)
        out.tables.append(table)
        out.series[proto] = series
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
