"""Figure 19 — overhead analysis: CPU usage and softirq counts at fixed rates.

16 B single-flow UDP at fixed packet rates. Falcon's costs come from
interrupt redistribution (more, smaller softirqs — ~45% more raises in
the paper) and loss of locality; total CPU stays close to the vanilla
overlay (≤10% more at high rates) because the vanilla path's own
softirq-context thrashing already wrecks locality.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations, standard_modes
from repro.metrics.report import Table
from repro.workloads.sockperf import Experiment

RATES_FULL = (100_000, 200_000, 300_000, 400_000)
RATES_QUICK = (200_000,)


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 19", "Overhead of Falcon at fixed packet rates")
    dur = durations(quick, 20.0, 10.0)
    rates = RATES_QUICK if quick else RATES_FULL

    table_cpu = Table(
        ["rate kpps", "Host cores", "Con cores", "Falcon cores", "Falcon/Con"],
        title="(a) total CPU usage (core-equivalents) at fixed rate",
    )
    table_irq = Table(
        ["rate kpps", "Con handlers/s", "Falcon handlers/s", "extra %"],
        title="(b) softirq handler invocations per second",
    )
    series = {}
    for rate in rates:
        usage = {}
        raises = {}
        for label, kwargs in standard_modes():
            result = Experiment(**kwargs).run_udp_fixed(
                16, rate_pps=float(rate), **dur
            )
            usage[label] = sum(result.cpu_util)
            raises[label] = result.softirq_handler_runs / (
                result.duration_us * 1e-6
            )
        table_cpu.add_row(
            rate / 1e3,
            usage["Host"],
            usage["Con"],
            usage["Falcon"],
            usage["Falcon"] / usage["Con"] if usage["Con"] else 0.0,
        )
        table_irq.add_row(
            rate / 1e3,
            raises["Con"],
            raises["Falcon"],
            (raises["Falcon"] / raises["Con"] - 1.0) * 100 if raises["Con"] else 0.0,
        )
        series[rate] = dict(cpu=usage, raises=raises)
    out.tables.extend([table_cpu, table_irq])
    out.series["by_rate"] = series
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
