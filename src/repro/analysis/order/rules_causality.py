"""Cross-shard causality rules (ORD511, ORD512, ORD513).

The shard coordinator advances every shard to a window barrier and only
then exchanges records; the conservative-lookahead contract is that a
record emitted during a window carries a timestamp at least one
lookahead past the emitting shard's clock — otherwise it lands in the
receiving shard's past and :class:`~repro.sim.shard.coordinator.
ShardCoordinator` raises ``ShardError`` at runtime *for the partitions
that happen to split the two hosts*. These rules make the contract hold
statically for every partition:

``ORD511``  every outbox ``emit(time, kind, dst, payload)`` must pass a
            timestamp **provably bounded below** by now + lookahead: a
            ``... + <propagation/lookahead>`` sum, a value returned by
            ``Link.reserve`` (which charges serialization *and*
            propagation), or a variable that provably holds one. The
            proof is a must-dataflow over the simflow CFG: a name is
            bounded only when **every** path assigns it a bounded value
            (intersection join).
``ORD512``  reaching through another handle's ``._program`` — mutating a
            world the coordinator did not hand you bypasses the barrier
            entirely. Only a handle touches its *own* program
            (``self._program``).
``ORD513``  constructing a :class:`CrossShardEvent` anywhere other than
            an ``emit``/``from_wire`` function or the records module
            itself — ad-hoc records skip the per-source sequence counter
            that makes the (time, src, seq) merge key total.

Checked against the ``coordinator.py`` / ``transport.py`` /
``cluster.py`` call surface, including the ``RECORD_INVAL`` churn path
(``ClusterWorld._churn`` emits invalidations at ``now + propagation`` —
the same causality bound the TCP credits use).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.flow.cfg import Cfg, build_cfg
from repro.analysis.flow.engine import call_sites, fixpoint, walk_block
from repro.analysis.flow.rules_time import _RawFinding
from repro.analysis.lint.core import FileContext, Finding, Project, Rule

#: Must-state: names that provably hold a causality-bounded timestamp on
#: every path reaching the statement.
BoundedState = FrozenSet[str]

EMPTY_BOUNDED: BoundedState = frozenset()

#: Name segments that spell a lookahead-sized delay. ``now + <one of
#: these>`` is exactly the conservative-sync bound.
_LOOKAHEAD_SEGMENTS = frozenset(("propagation", "lookahead", "rtt", "flight"))

#: Calls returning an arrival time >= now + propagation (Link.reserve
#: charges the serialization *and* the propagation delay).
_BOUNDED_CALLS = ("reserve",)

#: Functions sanctioned to construct CrossShardEvent directly: the
#: outbox's own ``emit`` (which owns the per-source seq counter) and the
#: wire decoder ``from_wire`` (which re-validates every field).
_SANCTIONED_CONSTRUCTORS = frozenset(("emit", "from_wire"))

#: The records module defines the class; its own constructions are home.
_RECORDS_MODULE = "repro.sim.shard.records"


def _is_lookahead_name(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    else:
        return False
    segments = set(name.lower().strip("_").split("_"))
    return bool(segments & _LOOKAHEAD_SEGMENTS)


def _is_emit_call(call: ast.Call, name: str) -> bool:
    """An outbox-style emission: ``emit(time, kind, dst, payload)``."""
    return name == "emit" and len(call.args) >= 3


class _BoundedAnalysis:
    """Must-analysis: which names hold barrier+lookahead-bounded times."""

    def __init__(
        self,
        ctx: FileContext,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        report: Optional[List[_RawFinding]] = None,
    ) -> None:
        self.ctx = ctx
        self.func = func
        self.report = report

    # -- engine contract ------------------------------------------------
    def initial(self, cfg: Cfg) -> BoundedState:
        return EMPTY_BOUNDED

    def join(self, a: BoundedState, b: BoundedState) -> BoundedState:
        # Intersection: bounded only when bounded on EVERY incoming path.
        return a & b

    def transfer(self, stmt: ast.stmt, state: BoundedState) -> BoundedState:
        for call, name in call_sites(stmt):
            if _is_emit_call(call, name) and not self._bounded(
                call.args[0], state
            ):
                self._emit(
                    call.args[0],
                    "ORD511",
                    "cross-shard emit timestamp is not provably >= the "
                    "window barrier plus lookahead — use now + propagation "
                    "(or Link.reserve's arrival), or the record lands in "
                    "the receiving shard's past under some partitions",
                )
        if isinstance(stmt, ast.Assign):
            bounded = self._bounded(stmt.value, state)
            for target in stmt.targets:
                state = self._bind(target, bounded, state)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                state = self._bind(
                    stmt.target, self._bounded(stmt.value, state), state
                )
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                if isinstance(stmt.op, ast.Add) and (
                    _is_lookahead_name(stmt.value)
                    or self._bounded(stmt.value, state)
                ):
                    state = state | {stmt.target.id}
                else:
                    state = state - {stmt.target.id}
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            state = self._bind(stmt.target, False, state)
        return state

    # -- helpers --------------------------------------------------------
    def _bind(
        self, target: ast.expr, bounded: bool, state: BoundedState
    ) -> BoundedState:
        if isinstance(target, ast.Name):
            return state | {target.id} if bounded else state - {target.id}
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                state = self._bind(element, False, state)
        return state

    def _bounded(self, expr: ast.expr, state: BoundedState) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in state
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            return (
                _is_lookahead_name(expr.left)
                or _is_lookahead_name(expr.right)
                or self._bounded(expr.left, state)
                or self._bounded(expr.right, state)
            )
        if isinstance(expr, ast.Call):
            callee = expr.func
            name = (
                callee.attr
                if isinstance(callee, ast.Attribute)
                else callee.id if isinstance(callee, ast.Name) else None
            )
            return name in _BOUNDED_CALLS
        return False

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if self.report is None:
            return
        self.report.append(
            _RawFinding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )


def _enclosing_function_name(
    ctx: FileContext, node: ast.AST
) -> Optional[str]:
    current = ctx.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current.name
        current = ctx.parents.get(current)
    return None


#: Per-project memo so all three ORD51x rules run the walks once.
_FINDINGS_CACHE: Dict[int, List[_RawFinding]] = {}


def causality_findings(project: Project) -> List[_RawFinding]:
    key = id(project)
    cached = _FINDINGS_CACHE.get(key)
    if cached is not None:
        return cached
    report: List[_RawFinding] = []
    for ctx in project.files:
        if ctx.tree is None:
            continue
        # ORD511: must-dataflow per function.
        for func in ctx.functions():
            cfg = build_cfg(func)
            silent = _BoundedAnalysis(ctx, func, report=None)
            states = fixpoint(cfg, silent)
            reporter = _BoundedAnalysis(ctx, func, report=report)
            walk_block(cfg, states, reporter, lambda stmt, state: None)
        # ORD512/ORD513: syntactic walks over the whole file.
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "_program"
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
            ):
                report.append(
                    _RawFinding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="ORD512",
                        message=(
                            "reaching through another handle's '_program' "
                            "mutates a foreign shard's world outside the "
                            "window barrier — route the interaction through "
                            "a CrossShardEvent record instead"
                        ),
                    )
                )
            if isinstance(node, ast.Call):
                callee = node.func
                name = (
                    callee.attr
                    if isinstance(callee, ast.Attribute)
                    else callee.id if isinstance(callee, ast.Name) else None
                )
                if name != "CrossShardEvent":
                    continue
                if ctx.module == _RECORDS_MODULE:
                    continue
                enclosing = _enclosing_function_name(ctx, node)
                if enclosing in _SANCTIONED_CONSTRUCTORS:
                    continue
                report.append(
                    _RawFinding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="ORD513",
                        message=(
                            "CrossShardEvent constructed outside an "
                            "emit/from_wire function — ad-hoc records skip "
                            "the per-source seq counter and can break the "
                            "(time, src, seq) total merge order"
                        ),
                    )
                )
    unique = sorted(
        set(report), key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
    )
    _FINDINGS_CACHE.clear()
    _FINDINGS_CACHE[key] = unique
    return unique


class _CausalityRuleBase(Rule):
    scope = ("repro.sim", "repro.overlay")

    def check_project(self, project: Project) -> Iterator[Finding]:
        by_path = {ctx.path: ctx for ctx in project.files}
        for raw in causality_findings(project):
            if raw.rule != self.id:
                continue
            ctx = by_path.get(raw.path)
            if ctx is not None and not self.applies_to(ctx.module):
                continue
            yield Finding(
                path=raw.path,
                line=raw.line,
                col=raw.col,
                rule=raw.rule,
                message=raw.message,
            )


class EmitBelowLookaheadRule(_CausalityRuleBase):
    id = "ORD511"
    title = "cross-shard emits must be timestamped >= barrier + lookahead"
    rationale = (
        "The coordinator validates records against the window bound at "
        "runtime, but only for the shard layouts actually run; a bare "
        "sim.now emit is invisible at shards=1 (same-shard delivery) and "
        "explodes as ShardError the first time the two hosts land in "
        "different shards. The static bound proof covers every layout."
    )


class ForeignWorldMutationRule(_CausalityRuleBase):
    id = "ORD512"
    title = "no reaching into another shard handle's program"
    rationale = (
        "handle._program is the coordinator's private line to its own "
        "shard; code that dereferences someone else's handle mutates a "
        "world mid-window with no barrier, no record and no causality "
        "check — the sharded equivalent of writing to another core's "
        "per-CPU state without an IPI."
    )


class AdHocRecordRule(_CausalityRuleBase):
    id = "ORD513"
    title = "CrossShardEvent construction is reserved to emit/from_wire"
    rationale = (
        "The (time, src, seq) merge key is total only because every "
        "outbox assigns seq from its own counter and from_wire "
        "re-validates wire tuples. A record constructed elsewhere can "
        "duplicate or skip a seq and silently corrupt the merge order "
        "for some partitions."
    )


CAUSALITY_RULES: Tuple[Rule, ...] = (
    EmitBelowLookaheadRule(),
    ForeignWorldMutationRule(),
    AdHocRecordRule(),
)
