#!/usr/bin/env python3
"""Scenario: an 'elephant' UDP flow — live HD video streaming.

Section 6.4 names real-time applications built on heavy UDP flows (live
HD streaming, VoIP, video conferencing, game servers) as the workloads
that benefit most from Falcon. This example models a containerized media
relay ingesting a single high-bitrate UDP stream and compares jitter and
loss between the vanilla overlay and Falcon.

Run:  python examples/video_streaming.py
"""

from repro import FalconConfig
from repro.metrics.report import Table
from repro.workloads.sockperf import Testbed

#: A 4K live stream: ~25 Mbps of 1200-byte RTP packets is a light load;
#: an ingest node multiplexing many channels sees hundreds of thousands
#: of packets per second on one tunnel. We model a 300 kpps ingest flow.
PACKET_BYTES = 1200
PACKET_RATE = 300_000.0


def run_case(name: str, falcon) -> list:
    bed = Testbed(mode="overlay", falcon=falcon)
    bed.add_udp_flow(
        PACKET_BYTES, clients=1, rate_pps=PACKET_RATE, poisson=True
    )
    result = bed.run(warmup_ms=10, measure_ms=30)
    # Jitter: spread between median and tail latency — what the decoder's
    # dejitter buffer must absorb.
    jitter = result.latency["p99.9"] - result.latency["p50"]
    loss = sum(result.drops.values()) / max(result.messages_delivered, 1)
    return [
        name,
        result.message_rate_pps / 1e3,
        result.latency["p50"],
        result.latency["p99.9"],
        jitter,
        f"{loss:.2%}",
    ]


def main() -> None:
    table = Table(
        ["case", "kpps", "p50 us", "p99.9 us", "jitter us", "loss"],
        title=f"Live-stream ingest: {PACKET_BYTES} B @ {PACKET_RATE/1e3:.0f} kpps",
    )
    table.add_row(*run_case("vanilla overlay", None))
    table.add_row(*run_case("Falcon", FalconConfig()))
    print(table.render())
    print()
    print(
        "Falcon's softirq pipelining keeps the tunnel's three processing\n"
        "stages on separate cores, so bursts don't queue behind a single\n"
        "saturated softirq core — the dejitter buffer can shrink."
    )


if __name__ == "__main__":
    main()
