"""Message senders: UDP open-loop and TCP closed-loop flows.

A sender turns application *messages* into wire packets (IP fragments or
TCP segments, see :func:`repro.kernel.costs.fragment_sizes`), charges the
sender-side stack cost (serialized per client — the sender machine has
"abundant resources" in the paper, so only its per-message pacing
matters), and pushes frames onto the ingress link of the receiving host.

Message ids are allocated when frames enter the link, so they are
monotone in wire order and the receive-side reorder detector is exact.
Latency is measured from message *initiation* (before the sender stack),
matching how sockperf timestamps its payloads.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.hw.link import ETHERNET_OVERHEAD_BYTES, Link
from repro.kernel.costs import (
    IP_HEADER,
    TCP_HEADER,
    UDP_HEADER,
    VXLAN_OVERHEAD,
    CostModel,
    fragment_sizes,
)
from repro.kernel.skb import PROTO_TCP, FlowKey, Skb
from repro.kernel.stack import NetworkStack


class FlowState:
    """Per-flow wire counters shared by all clients of the flow."""

    __slots__ = ("msg_counter", "seq_counter")

    def __init__(self) -> None:
        self.msg_counter = 0
        self.seq_counter = 0


class BaseSender:
    """Shared mechanics: fragmentation, tx pacing, link push."""

    def __init__(
        self,
        sim,
        link: Link,
        stack: NetworkStack,
        flow: FlowKey,
        message_size: int,
        costs: CostModel,
        rng: random.Random,
        name: str = "sender",
    ) -> None:
        self.sim = sim
        self.link = link
        self.stack = stack
        self.flow = flow
        self.message_size = message_size
        self.costs = costs
        self.rng = rng
        self.name = name
        self.overlay = stack.is_overlay
        self.state = FlowState()
        self._tx_free = 0.0
        self.messages_sent = 0
        self.frames_sent = 0
        self.until_us: Optional[float] = None
        self.stopped = False

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self.stopped = True

    def _allowed(self) -> bool:
        if self.stopped:
            return False
        return self.until_us is None or self.sim.now < self.until_us

    def _fragment_payloads(self) -> tuple:
        return fragment_sizes(
            self.message_size, self.overlay, tcp=self.flow.proto == PROTO_TCP
        )

    def _tx_cost_us(self, num_fragments: int) -> float:
        cached = False
        if self.overlay and self.stack.flowcache is not None:
            # Egress flow cache: a warm entry replaces the encap header
            # construction with the cached template (checked per message;
            # the sender is serialized per flow, so no ordering gate).
            cached = self.stack.flowcache.access_tx(self.flow)
        cost = self.costs.tx_cost_us(self.message_size, self.overlay, cached=cached)
        if num_fragments > 1:
            per_fragment = (
                self.costs.tx_per_fragment_tcp
                if self.flow.proto == PROTO_TCP
                else self.costs.tx_per_fragment_udp
            )
            cost += per_fragment.fixed * (num_fragments - 1)
        return cost

    def _initiate_message(self, on_pushed: Optional[Callable] = None) -> float:
        """Start sending one message; returns the sender-completion time."""
        t_send = self.sim.now
        payloads = self._fragment_payloads()
        tx_done = max(self.sim.now, self._tx_free) + self._tx_cost_us(len(payloads))
        self._tx_free = tx_done
        self.sim.post_at(tx_done, self._push_message, t_send, payloads, on_pushed)
        return tx_done

    def _push_message(
        self, t_send: float, payloads: tuple, on_pushed: Optional[Callable]
    ) -> None:
        state = self.state
        msg_id = state.msg_counter
        state.msg_counter += 1
        l4_header = TCP_HEADER if self.flow.proto == PROTO_TCP else UDP_HEADER
        for index, payload in enumerate(payloads):
            inner = payload + IP_HEADER + l4_header
            size = inner + (VXLAN_OVERHEAD if self.overlay else 0)
            skb = Skb(
                self.flow,
                size=size,
                wire_size=size + ETHERNET_OVERHEAD_BYTES,
                msg_id=msg_id,
                msg_size=self.message_size,
                frag_index=index,
                frag_count=len(payloads),
                seq=state.seq_counter,
                t_send=t_send,
                encapsulated=self.overlay,
            )
            state.seq_counter += 1
            self._transmit(skb)
            self.frames_sent += 1
        self.messages_sent += 1
        if on_pushed is not None:
            on_pushed(msg_id)

    def _transmit(self, skb: Skb) -> None:
        """Hand one frame to the wire.

        The default is a same-simulator link delivery into the receiving
        stack. The sharded cluster senders override this to route frames
        through the cross-shard record path instead (the receiving host
        may live in another process).
        """
        self.link.send(skb.wire_size, self._make_delivery(skb))

    def _make_delivery(self, skb: Skb):
        stack = self.stack

        def deliver() -> None:
            stack.inject(skb)

        return deliver


class UdpSender(BaseSender):
    """Open-loop UDP client.

    ``process`` decides pacing (see :mod:`repro.workloads.traffic`); a
    ``Saturating`` process reproduces sockperf's stress mode, where the
    client's own stack cost is the only pacing. Several ``UdpSender``
    instances may share one flow (the paper uses 3 clients to overload a
    single UDP flow) — pass the same ``shared_state``.
    """

    def __init__(
        self,
        sim,
        link: Link,
        stack: NetworkStack,
        flow: FlowKey,
        message_size: int,
        costs: CostModel,
        rng: random.Random,
        process,
        shared_state: Optional[FlowState] = None,
        name: str = "udp-client",
    ) -> None:
        super().__init__(sim, link, stack, flow, message_size, costs, rng, name)
        if shared_state is not None:
            self.state = shared_state
        self.process = process

    def start(self, until_us: Optional[float] = None) -> None:
        self.until_us = until_us
        self._tick()

    def _tick(self) -> None:
        if not self._allowed():
            return
        tx_done = self._initiate_message()
        gap = self._next_gap()
        if gap <= 0.0:
            # Saturating mode: the client's own stack is the pacer.
            next_at = tx_done
        else:
            # Paced mode: arrivals follow the process; bursts queue at
            # the (work-conserving) sender and drain at its line rate.
            next_at = self.sim.now + gap
        self.sim.post_at(next_at, self._tick)

    def _next_gap(self) -> float:
        process = self.process
        if hasattr(process, "rate_at"):  # HotspotSchedule
            return process.next_gap_us(self.rng, self.sim.now)
        return process.next_gap_us(self.rng)


class TcpSender(BaseSender):
    """Closed-loop TCP client with a message window.

    Keeps up to ``window_msgs`` messages in flight; delivery of a message
    at the server (signalled via :meth:`credit`) releases the window —
    TCP's self-clocking. An optional ``process`` paces injections below
    the window limit for underloaded latency tests.
    """

    def __init__(
        self,
        sim,
        link: Link,
        stack: NetworkStack,
        flow: FlowKey,
        message_size: int,
        costs: CostModel,
        rng: random.Random,
        window_msgs: int = 16,
        process=None,
        ack_delay_us: float = 3.0,
        retransmit_timeout_us: Optional[float] = None,
        name: str = "tcp-client",
    ) -> None:
        super().__init__(sim, link, stack, flow, message_size, costs, rng, name)
        if window_msgs < 1:
            raise ValueError("window must be >= 1")
        self.window_msgs = window_msgs
        self.process = process
        self.ack_delay_us = ack_delay_us
        #: When set, a stalled window (no delivery for this long) is
        #: treated as packet loss: the message is retransmitted, modelling
        #: TCP's RTO recovery. Without it, a dropped request would wedge a
        #: closed-loop client forever.
        self.retransmit_timeout_us = retransmit_timeout_us
        self.outstanding = 0
        self.completed_messages = 0
        self.retransmits = 0
        self._last_activity = 0.0

    def start(self, until_us: Optional[float] = None) -> None:
        self.until_us = until_us
        self._last_activity = self.sim.now
        if self.process is None:
            self._fill_window()
        else:
            self._paced_tick()
        if self.retransmit_timeout_us is not None:
            self.sim.schedule(self.retransmit_timeout_us, self._watchdog)

    def _watchdog(self) -> None:
        if self.stopped:
            return
        rto = self.retransmit_timeout_us
        stalled = (
            self.outstanding >= self.window_msgs
            and self.sim.now - self._last_activity >= rto
        )
        if stalled and self._allowed():
            # Declare the oldest in-flight message lost and resend.
            self.retransmits += 1
            self.outstanding -= 1
            self._last_activity = self.sim.now
            self._fill_window()
        self.sim.schedule(rto, self._watchdog)

    # --- closed loop ---------------------------------------------------
    def _fill_window(self) -> None:
        while self.outstanding < self.window_msgs and self._allowed():
            self.outstanding += 1
            self._initiate_message()

    def credit(self) -> None:
        """A message was fully delivered to the server application."""
        self.completed_messages += 1
        self._last_activity = self.sim.now
        self.outstanding = max(self.outstanding - 1, 0)
        if self.process is None and self._allowed():
            # The ACK's flight back and processing delay self-clock us.
            self.sim.schedule(self.ack_delay_us, self._fill_window)

    # --- paced (underloaded latency tests) ------------------------------
    def _paced_tick(self) -> None:
        if not self._allowed():
            return
        if self.outstanding < self.window_msgs:
            self.outstanding += 1
            self._initiate_message()
        gap = self.process.next_gap_us(self.rng)
        self.sim.schedule(gap, self._paced_tick)
