"""Property tests for the CPU model: accounting and serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cpu import HARDIRQ, SOFTIRQ, USER, Cpu
from repro.metrics.cpuacct import CpuAccounting
from repro.sim.engine import Simulator

work_items = st.lists(
    st.tuples(
        st.sampled_from([HARDIRQ, SOFTIRQ, USER]),
        st.floats(min_value=0.0, max_value=50.0),
    ),
    min_size=1,
    max_size=50,
)


@given(work_items)
def test_busy_time_equals_sum_of_charges(items):
    sim = Simulator()
    acct = CpuAccounting()
    cpu = Cpu(sim, 0, acct)
    for context, duration in items:
        cpu.submit(context, f"fn{context}", duration)
    sim.run()
    total = sum(duration for _ctx, duration in items)
    assert abs(cpu.busy_us_total - total) < 1e-6
    assert abs(acct.busy_us(0) - total) < 1e-6


@given(work_items)
def test_serialized_execution_finishes_at_sum(items):
    """One core never overlaps work: completion time == total work when
    everything is submitted up front."""
    sim = Simulator()
    cpu = Cpu(sim, 0, CpuAccounting())
    done = []
    for context, duration in items:
        cpu.submit(context, "fn", duration, lambda: done.append(sim.now))
    sim.run()
    total = sum(duration for _ctx, duration in items)
    assert abs(sim.now - total) < 1e-6
    assert len(done) == len(items)
    assert done == sorted(done)


@given(work_items)
def test_context_accounting_partition(items):
    """Per-context busy time partitions the total exactly."""
    sim = Simulator()
    acct = CpuAccounting()
    cpu = Cpu(sim, 0, acct)
    for context, duration in items:
        cpu.submit(context, "fn", duration)
    sim.run()
    split = sum(
        acct.busy_us_context(0, context) for context in (HARDIRQ, SOFTIRQ, USER)
    )
    assert abs(split - acct.busy_us(0)) < 1e-6


@given(
    st.lists(
        st.tuples(st.floats(0.1, 10.0), st.floats(0.1, 10.0)), min_size=1, max_size=20
    )
)
def test_hardirq_always_preempts_queue_order(pairs):
    """Whenever hardirq and user work are queued together, all hardirq
    work starts before any queued user work."""
    sim = Simulator()
    cpu = Cpu(sim, 0, CpuAccounting())
    order = []
    cpu.submit(USER, "warm", 1.0, lambda: order.append(("warm", sim.now)))
    for user_d, irq_d in pairs:
        cpu.submit(USER, "user", user_d, lambda: order.append(("user", sim.now)))
        cpu.submit(HARDIRQ, "irq", irq_d, lambda: order.append(("irq", sim.now)))
    sim.run()
    # Everything was queued while "warm" ran, so after it completes the
    # dispatcher must drain every hardirq before the first user item.
    kinds = [kind for kind, _t in order if kind != "warm"]
    assert kinds == ["irq"] * len(pairs) + ["user"] * len(pairs)
