"""RACE301: cross-core write into per-CPU state with no serialization.

``enqueue`` juggles two core identities and reaches straight into the
target core's backlog — state teleports between cores with no IPI, no
softirq raise and no latency.
"""


class MiniSoftirq:
    def __init__(self, sim, num_cpus):
        self.sim = sim
        self.backlogs = [[] for _ in range(num_cpus)]

    def enqueue(self, target_cpu, skb, from_cpu):
        self.backlogs[target_cpu].append(skb)  # expect: RACE301
