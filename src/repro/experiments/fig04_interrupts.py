"""Figure 4 — hardware and software interrupt rates, native vs overlay.

Fixed-rate UDP traffic. Three views of "how many interrupts":

* **device softirqs per packet** — the paper's call-graph claim
  (Section 3.1/3.2): one device softirq per packet natively (the pNIC
  driver poll) vs three in the overlay (pNIC, VXLAN, veth) — the ratio
  the NET_RX bars of Figure 4 (≈3.6x) reflect;
* **NET_RX raises** — the demand side (one per packet per device stage);
* **/proc/softirqs NET_RX** — kernel-accurate scheduling events, which
  coalesce while a poll chain stays busy (reported for completeness; at
  equal offered rate the overloaded overlay core coalesces *more*).

RES counts cover softirq wake-IPIs only; the paper's RES spike is
scheduler rebalancing, which is out of scope (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations
from repro.metrics.report import Table
from repro.workloads.sockperf import Testbed

KINDS = ("hardirq", "NET_RX", "RES", "TIMER")

#: Stage names that are device softirq executions (the RPS backlog hop is
#: packet steering inside softirq #1, not an extra device).
DEVICE_STAGES = {
    "host": ("pnic",),
    "overlay": ("pnic", "vxlan", "container"),
}


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput(
        "Figure 4", "Interrupt rates in native vs overlay networks"
    )
    dur = durations(quick, 25.0, 10.0)
    rate = 250_000.0
    results = {}
    executions = {}
    for label, mode in (("Host", "host"), ("Con", "overlay")):
        bed = Testbed(mode=mode)
        bed.add_udp_flow(16, clients=1, rate_pps=rate)
        result = bed.run(warmup_ms=dur["warmup_ms"], measure_ms=dur["duration_ms"])
        results[label] = result
        executions[label] = (result.stage_executions, mode)

    window_s = results["Host"].duration_us * 1e-6
    table = Table(
        ["interrupt", "Host /s", "Con /s", "Con/Host"],
        title=f"interrupt rates at {rate/1e3:.0f} kpps UDP (16 B)",
    )
    series = {}
    for kind in KINDS:
        host = results["Host"].interrupts.get(kind, 0) / window_s
        con = results["Con"].interrupts.get(kind, 0) / window_s
        ratio = con / host if host else 0.0
        table.add_row(kind, host, con, ratio)
        series[kind] = (host, con)

    host_raises = results["Host"].softirq_raises / window_s
    con_raises = results["Con"].softirq_raises / window_s
    table.add_row("NET_RX raises", host_raises, con_raises, con_raises / host_raises)
    series["NET_RX_raises"] = (host_raises, con_raises)

    # Device softirq executions per delivered packet.
    per_packet = {}
    for label, (execs, mode) in executions.items():
        delivered = max(results[label].messages_delivered, 1)
        device_execs = sum(execs.get(name, 0) for name in DEVICE_STAGES[mode])
        per_packet[label] = device_execs / delivered
    table.add_row(
        "device softirqs/pkt",
        per_packet["Host"],
        per_packet["Con"],
        per_packet["Con"] / per_packet["Host"] if per_packet["Host"] else 0.0,
    )
    series["device_softirqs"] = (per_packet["Host"], per_packet["Con"])
    out.tables.append(table)
    out.series["interrupts"] = series
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
