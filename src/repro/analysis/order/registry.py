"""Static registry of simorder rule ids.

Kept free of imports so :mod:`repro.analysis.lint.runner` can learn the
order rule ids (for pragma validation — all three passes share the
``# simlint: disable=`` suppression machinery) without importing the
dataflow engine, and vice versa.
"""

from __future__ import annotations

from typing import Tuple

#: Partition-invariance taint rules (rules_partition.py).
PARTITION_RULE_IDS: Tuple[str, ...] = ("ORD501", "ORD502", "ORD503")

#: Cross-shard causality rules (rules_causality.py).
CAUSALITY_RULE_IDS: Tuple[str, ...] = ("ORD511", "ORD512", "ORD513")

#: Flowcache ordering-typestate rules (rules_flowcache.py).
FLOWCACHE_RULE_IDS: Tuple[str, ...] = ("ORD521", "ORD522", "ORD523")

#: Every rule id the ``repro order`` pass can report.
ORDER_RULE_IDS: Tuple[str, ...] = (
    PARTITION_RULE_IDS + CAUSALITY_RULE_IDS + FLOWCACHE_RULE_IDS
)
