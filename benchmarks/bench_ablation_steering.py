"""Ablation: steering flavours — RPS vs RFS vs Falcon.

RFS (Receive Flow Steering) is the kernel's locality-first answer: steer
the whole flow to the core its application reads from. For an overlay
flow that means *four* serialized softirq stages plus the app share one
core — locality maximized, parallelism zero. Falcon makes the opposite
trade. This ablation quantifies both against plain RPS for a single
overlay flow driven from light load to stress.
"""

import pytest
from conftest import QUICK

from repro.core.config import FalconConfig
from repro.metrics.report import Table
from repro.workloads.sockperf import Testbed

DUR = dict(warmup_ms=4 if QUICK else 8, measure_ms=8 if QUICK else 20)

CASES = [
    ("RPS", dict(steering="rps")),
    ("RFS", dict(steering="rfs")),
    ("Falcon", dict(steering="rps", falcon=FalconConfig())),
]


def run_case(kwargs, rate):
    # App readers on their own core: with steering over [1, 2] a flow
    # must never land on the reader's core, or softirq work (higher
    # priority) starves the application outright.
    bed = Testbed(mode="overlay", rps_cpus=[1, 2], app_cpus=[9], **kwargs)
    if rate is None:
        bed.add_udp_flow(16, clients=3)
    else:
        bed.add_udp_flow(16, clients=1, rate_pps=rate, poisson=True)
    return bed.run(**DUR)


def test_ablation_steering(benchmark):
    def run():
        results = {}
        for name, kwargs in CASES:
            results[(name, "light")] = run_case(kwargs, rate=150_000)
            results[(name, "stress")] = run_case(kwargs, rate=None)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["steering", "light avg us", "light p99 us", "stress kpps"],
        title="single overlay flow: locality-first (RFS) vs parallel (Falcon)",
    )
    for name, _kwargs in CASES:
        light = results[(name, "light")]
        stress = results[(name, "stress")]
        table.add_row(
            name,
            light.latency["avg"],
            light.latency["p99"],
            stress.message_rate_pps / 1e3,
        )
    print()
    print(table.render())

    # Under stress, Falcon's parallelism dominates either steering flavour.
    falcon_rate = results[("Falcon", "stress")].message_rate_pps
    assert falcon_rate > 1.5 * results[("RPS", "stress")].message_rate_pps
    assert falcon_rate > 1.5 * results[("RFS", "stress")].message_rate_pps
    # RFS pathology for overlay flows: steering the whole 3-stage softirq
    # pipeline onto the application's core means softirqs (higher
    # priority) starve the reader outright once the flow saturates the
    # core — locality-first steering collapses where Falcon scales.
    assert (
        results[("RFS", "stress")].message_rate_pps
        < 0.5 * results[("RPS", "stress")].message_rate_pps
    )
    # At light load the locality trade is small either way.
    assert (
        results[("RFS", "light")].latency["avg"]
        < results[("RPS", "light")].latency["avg"] * 1.6
    )
