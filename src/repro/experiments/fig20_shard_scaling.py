"""Figure 20 — shard-count scaling of the parallel simulation engine.

Not a paper figure: this measures the *simulator itself*. The same
4-host UDP ring cluster runs at increasing shard counts (1 shard inline
= the sequential reference; 2/4 shards = one spawn worker per shard,
conservative window-barrier sync). Two things must hold:

* every row reports the **identical simulated result** — delivered
  message count and rate are partition-invariant by construction (the
  shard-equivalence test suite proves this byte-for-byte on traces);
* events/sec should rise with shard count **on multi-core hosts**. On a
  single-core host the process transport can only lose (IPC and barrier
  overhead with no parallelism to pay for it), so the speedup column is
  honest, not aspirational — interpret it alongside the reported CPU
  count.
"""

from __future__ import annotations

import os

from repro.experiments.runner import ExperimentOutput
from repro.metrics.report import Table
from repro.overlay.cluster import run_cluster, udp_ring_spec

SHARDS_FULL = (1, 2, 4)
SHARDS_QUICK = (1, 2)


def run(quick: bool = False) -> ExperimentOutput:
    from repro.experiments.run_all import wall_seconds

    out = ExperimentOutput(
        "Figure 20", "Sharded-engine scaling (simulator events/sec by shard count)"
    )
    shard_counts = SHARDS_QUICK if quick else SHARDS_FULL
    spec = udp_ring_spec(
        num_hosts=4,
        message_size=1024,
        rate_pps=None,  # saturating — throughput-bound, not pacing-bound
        seed=0,
        propagation_us=25.0,
        warmup_us=1000.0,
        duration_us=3000.0 if quick else 10_000.0,
    )

    cpus = os.cpu_count() or 1
    table = Table(
        ["shards", "transport", "delivered", "windows", "records",
         "events/s", "speedup"],
        title=f"sharded run of one 4-host UDP ring ({cpus} host CPU(s))",
    )
    series = {}
    base_eps = None
    reference_delivered = None
    for shards in shard_counts:
        transport = "inline" if shards == 1 else "process"
        started = wall_seconds()
        result = run_cluster(spec, shards=shards, transport=transport)
        wall = wall_seconds() - started
        eps = result.events_processed / wall if wall > 0 else 0.0
        if base_eps is None:
            base_eps = eps
        if reference_delivered is None:
            reference_delivered = result.messages_delivered
        elif result.messages_delivered != reference_delivered:
            raise AssertionError(
                f"shard equivalence broken: {shards} shards delivered "
                f"{result.messages_delivered}, reference {reference_delivered}"
            )
        table.add_row(
            shards,
            transport,
            result.messages_delivered,
            result.windows_run,
            result.records_exchanged,
            eps,
            eps / base_eps if base_eps else 0.0,
        )
        series[shards] = dict(
            transport=transport,
            messages_delivered=result.messages_delivered,
            windows_run=result.windows_run,
            records_exchanged=result.records_exchanged,
            events=result.events_processed,
            events_per_sec=round(eps, 1),
            speedup=round(eps / base_eps, 3) if base_eps else 0.0,
        )
    out.tables.append(table)
    out.series["by_shards"] = series
    out.series["host_cpus"] = cpus
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
