"""Figure 6 — flamegraph shares: sockperf vs memcached.

The paper's flamegraphs show that for a uniform micro-benchmark
(sockperf) the overlay's overhead appears as additional, roughly
equally-weighted poll functions (``gro_cell_poll``, ``process_backlog``,
``mlx5e_napi_poll``), while a realistic mixed workload (memcached) makes
certain softirqs dominate. We reproduce the per-function CPU shares from
the simulator's accounting.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations
from repro.metrics.report import Table
from repro.workloads.memcached import MemcachedScenario
from repro.workloads.sockperf import Experiment

TOP_N = 10

#: Map fine-grained step labels onto the poll functions Figure 6 names.
POLL_GROUPS = {
    "mlx5e_napi_poll": ("skb_alloc", "napi_gro_receive", "rps_steer"),
    "gro_cell_poll": ("gro_cell_poll", "br_handle_frame", "veth_xmit"),
    "process_backlog": ("process_backlog", "ip_rcv", "ip_defrag", "l4_rcv",
                        "sock_enqueue", "vxlan_rcv", "netif_rx"),
}


def group_shares(label_shares) -> dict:
    grouped = {name: 0.0 for name in POLL_GROUPS}
    for group, members in POLL_GROUPS.items():
        for member in members:
            grouped[group] += label_shares.get(member, 0.0)
    return grouped


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 6", "Flamegraph CPU shares: sockperf vs memcached")
    dur = durations(quick, 25.0, 10.0)

    sockperf = Experiment(mode="overlay").run_udp_fixed(
        16, rate_pps=300_000, **dur
    )
    scenario = MemcachedScenario(clients=8, mode="overlay")
    memcached_result = scenario.run(
        duration_ms=dur["duration_ms"], warmup_ms=dur["warmup_ms"]
    )
    memcached_shares = scenario.bed.window.cpu.label_shares()

    table = Table(
        ["function", "sockperf %", "memcached %"],
        title="per-function share of total CPU (overlay mode)",
    )
    all_labels = sorted(
        set(sockperf.label_shares) | set(memcached_shares),
        key=lambda name: -(sockperf.label_shares.get(name, 0.0)),
    )[:TOP_N]
    for name in all_labels:
        table.add_row(
            name,
            sockperf.label_shares.get(name, 0.0) * 100,
            memcached_shares.get(name, 0.0) * 100,
        )
    out.tables.append(table)

    grouped_sock = group_shares(sockperf.label_shares)
    grouped_mem = group_shares(memcached_shares)
    table2 = Table(
        ["poll function", "sockperf %", "memcached %"],
        title="grouped by poll function (the paper's flamegraph frames)",
    )
    for name in POLL_GROUPS:
        table2.add_row(name, grouped_sock[name] * 100, grouped_mem[name] * 100)
    out.tables.append(table2)
    out.series["sockperf"] = grouped_sock
    out.series["memcached"] = grouped_mem
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
