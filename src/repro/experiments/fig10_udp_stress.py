"""Figure 10 — UDP single-flow stress: Host vs Con vs Falcon.

Packet rates across message sizes, both link speeds and both kernel
generations (4.19 and 5.4). The headline claims: Falcon reaches
near-native rates on 10G and up to ~87% of native on 100G; the vanilla
overlay stays far behind for small messages.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations, standard_modes
from repro.metrics.report import Table
from repro.workloads.sockperf import Experiment

FULL_SIZES = (16, 256, 1024, 1400, 4096, 65507)
QUICK_SIZES = (16, 1400)


def _run_case(kwargs, size, dur, quick):
    exp = Experiment(**kwargs)
    if size > 1400:  # fragmented: use the plateau-search methodology
        return exp.run_udp_plateau(
            size,
            duration_ms=dur["duration_ms"],
            warmup_ms=dur["warmup_ms"],
            iterations=4 if quick else 8,
        )
    return exp.run_udp_stress(size, **dur)


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 10", "UDP single-flow stress packet rates")
    dur = durations(quick, 15.0, 8.0)
    sizes = QUICK_SIZES if quick else FULL_SIZES
    links = (100.0,) if quick else (10.0, 100.0)
    kernels = ("4.19",) if quick else ("4.19", "5.4")

    for kernel in kernels:
        for bandwidth in links:
            table = Table(
                ["size B", "Host kpps", "Con kpps", "Falcon kpps",
                 "Con/Host", "Falcon/Host"],
                title=f"kernel {kernel}, {bandwidth:.0f}G link",
            )
            series = {}
            for size in sizes:
                values = {}
                for label, kwargs in standard_modes():
                    kwargs = dict(kwargs, kernel=kernel, bandwidth_gbps=bandwidth)
                    result = _run_case(kwargs, size, dur, quick)
                    values[label] = result.message_rate_pps
                host = values["Host"] or 1.0
                table.add_row(
                    size,
                    values["Host"] / 1e3,
                    values["Con"] / 1e3,
                    values["Falcon"] / 1e3,
                    values["Con"] / host,
                    values["Falcon"] / host,
                )
                series[size] = values
            out.tables.append(table)
            out.series[(kernel, bandwidth)] = series
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
