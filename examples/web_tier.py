#!/usr/bin/env python3
"""Scenario: a containerized web tier (CloudSuite-style page loads).

Reproduces the paper's flagship application result (Figure 17): an
Elgg-like social-network site served from containers behind a Docker
overlay, 200 concurrent users loading pages (dynamic request + a burst
of static assets + the TCP ACK return traffic). Prints the per-operation
success rate, response time and delay time for the vanilla overlay vs
Falcon.

Run:  python examples/web_tier.py
"""

from repro.core.config import FalconConfig
from repro.metrics.report import Table
from repro.workloads.webserving import OPERATIONS, run_webserving


def main() -> None:
    results = {}
    for name, falcon in (("Con", None), ("Falcon", FalconConfig())):
        results[name] = run_webserving(
            users=200, falcon=falcon, duration_ms=30, warmup_ms=15
        )

    table = Table(
        ["operation", "Con op/min", "Falcon op/min", "Con resp ms",
         "Falcon resp ms", "Con delay ms", "Falcon delay ms"],
        title="Web serving, 200 users (vanilla overlay vs Falcon)",
    )
    for op in OPERATIONS:
        con, falcon = results["Con"], results["Falcon"]
        table.add_row(
            op.name,
            con.ops_per_minute(op.name),
            falcon.ops_per_minute(op.name),
            con.avg_response_ms(op.name),
            falcon.avg_response_ms(op.name),
            con.avg_delay_ms(op.name),
            falcon.avg_delay_ms(op.name),
        )
    print(table.render())
    total_con = results["Con"].total_ops
    total_falcon = results["Falcon"].total_ops
    print()
    print(
        f"Total operations: {total_con} (Con) vs {total_falcon} (Falcon) "
        f"— {total_falcon / total_con - 1:+.0%}.\n"
        "Page loads are packet-storms (assets + ACKs); the vanilla\n"
        "overlay funnels every flow's three softirq stages through two\n"
        "steering cores, and the whole site queues behind them."
    )


if __name__ == "__main__":
    main()
