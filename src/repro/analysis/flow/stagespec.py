"""Stage-order specification derived from the real stage graph.

The skb-typestate analysis needs to know the legal order of pipeline
stages — alloc → hardirq → NAPI/driver → RPS backlog → protocol →
socket delivery → free. Hand-coding that order in the analyzer would rot
the moment the stack changes shape, so it is **derived**: this module
builds the shipped stack configurations (host, overlay, overlay+Falcon,
overlay+Falcon+GRO-split, plus both flow-cache regimes — the same
matrix the golden traces pin down) and walks the live
:class:`~repro.kernel.stages.Stage` /
:class:`~repro.kernel.stages.Transition` objects. Falcon only swaps the
*selectors* inside transitions (``core/falcon.py`` /
``core/pipelining.py``), never the stage topology; the flow cache adds
the ``fastpath`` stage and a hit/miss fork at the driver exit, which is
walked through :class:`~repro.kernel.stages.FastPathTransition` — so
every configuration folds into one DAG, and the analyzer would still
notice if a config ever grew a new stage, because that config is built
here too.

From the graph we extract:

* ``stage_rank`` — a topological rank per stage name (longest path from
  the synthetic ``alloc`` root), plus synthetic ``alloc`` / ``hardirq``
  roots and ``socket`` / ``free`` sinks;
* ``edges`` — the legal stage→stage handoffs (also the reference set the
  ``--trace`` static↔dynamic cross-check compares runtime traces
  against);
* ``ops`` — a callable-name → pipeline-position table: each
  :class:`Step`'s name maps to the rank *set* of the stages that contain
  it (``netif_rx`` appears in several), transitions contribute the
  enqueue ops, ``SocketDeliver`` contributes the delivery op.

Building a few stacks takes ~1 ms and touches no RNG-visible state; the
result is cached per process.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

#: Synthetic graph nodes around the derived stages.
ALLOC = "alloc"
HARDIRQ = "hardirq"
SOCKET = "socket"
FREE = "free"

#: Op kinds understood by the typestate rule.
KIND_ALLOC = "alloc"
KIND_HARDIRQ = "hardirq"
KIND_STEP = "step"
KIND_ENQUEUE = "enqueue"
KIND_DELIVER = "deliver"
KIND_FREE = "free"
KIND_DROP = "drop"

#: Allocation calls: constructing an Skb, or the kernel-idiom helper.
ALLOC_OPS: Tuple[str, ...] = ("Skb", "alloc_skb")

#: Hardirq entry points (the NIC interrupt handler).
HARDIRQ_OPS: Tuple[str, ...] = ("irq_handler",)

#: Backlog-enqueue primitives (the stage-transition machinery). These
#: names come from the softirq layer the transitions call into.
ENQUEUE_OPS: Tuple[str, ...] = ("enqueue_backlog", "enqueue_to_backlog")

#: Socket delivery (the terminal SocketDeliver transition target).
DELIVER_OPS: Tuple[str, ...] = ("deliver_to_socket",)

#: Normal end-of-life: the packet was consumed after delivery.
FREE_OPS: Tuple[str, ...] = ("consume_skb", "free_skb")

#: Abnormal end-of-life: the packet was dropped. Kernel discipline (and
#: the FLOW404 rule) demands a counter increment next to every drop.
DROP_OPS: Tuple[str, ...] = ("kfree_skb", "drop_skb")


@dataclass(frozen=True)
class OpSpec:
    """Where one callable name sits in the pipeline."""

    name: str
    kind: str
    #: Ranks of the stages this op may execute in (a step name reused by
    #: several stages carries all of their ranks).
    ranks: FrozenSet[int]


@dataclass
class StageOrderSpec:
    """The derived pipeline order: stages, edges, and op positions."""

    stage_rank: Dict[str, int]
    edges: Set[Tuple[str, str]]
    ops: Dict[str, OpSpec] = field(default_factory=dict)

    @property
    def delivered_rank(self) -> int:
        return self.stage_rank[SOCKET]

    @property
    def freed_rank(self) -> int:
        return self.stage_rank[FREE]

    def rank_label(self, rank: int) -> str:
        for name, value in sorted(self.stage_rank.items()):
            if value == rank:
                return name
        return f"rank{rank}"

    def describe(self) -> Dict[str, object]:
        """JSON-friendly dump (the ``repro flow --dump-spec`` payload)."""
        return {
            "stages": dict(sorted(self.stage_rank.items(), key=lambda kv: kv[1])),
            "edges": sorted(f"{a}->{b}" for a, b in self.edges),
            "ops": {
                name: {"kind": op.kind, "ranks": sorted(op.ranks)}
                for name, op in sorted(self.ops.items())
            },
        }


def _reference_stacks() -> List[object]:
    """Build the shipped stack configurations (imports deferred so the
    analysis framework stays importable without the simulator)."""
    from repro.core.config import FalconConfig, FlowCacheConfig
    from repro.hw.topology import Machine
    from repro.kernel.stack import NetworkStack, StackConfig
    from repro.sim.engine import Simulator

    stacks: List[object] = []
    configs = [
        StackConfig(mode="host", falcon=None),
        StackConfig(mode="overlay", falcon=None),
        StackConfig(mode="overlay", falcon=FalconConfig()),
        StackConfig(mode="overlay", falcon=FalconConfig(split_gro=True)),
        # The flow-cache datapath adds the fastpath stage and the
        # hit/miss fork at the driver exit; both cache regimes are built
        # so the derived spec legalizes the cache-hit skip without
        # suppressions (and notices if the fork's shape ever changes).
        StackConfig(mode="overlay", falcon=None, flowcache=FlowCacheConfig()),
        StackConfig(
            mode="overlay",
            falcon=FalconConfig(split_gro=True),
            flowcache=FlowCacheConfig(),
        ),
    ]
    for config in configs:
        sim = Simulator()
        machine = Machine(sim)
        stacks.append(NetworkStack(sim, machine, config))
    return stacks


def _stage_graph(stacks: List[object]) -> Tuple[Set[str], Set[Tuple[str, str]], Dict[str, Set[str]]]:
    """Walk live Stage/Transition objects into (stages, edges, steps)."""
    from repro.kernel.stages import (
        EnqueueTransition,
        FastPathTransition,
        SocketDeliver,
    )

    stage_names: Set[str] = set()
    edges: Set[Tuple[str, str]] = set()
    steps_by_stage: Dict[str, Set[str]] = {}

    def add_exit(stage_name: str, transition: object) -> None:
        if isinstance(transition, FastPathTransition):
            # The flow-cache fork: both the cache-hit jump and the slow
            # miss edge are legal handoffs out of the driver stage.
            add_exit(stage_name, transition.hit)
            add_exit(stage_name, transition.miss)
        elif isinstance(transition, EnqueueTransition):
            edges.add((stage_name, transition.next_stage.name))
        elif isinstance(transition, SocketDeliver):
            edges.add((stage_name, SOCKET))

    for stack in stacks:
        stages = stack.stages  # type: ignore[attr-defined]
        for stage in stages.values():
            stage_names.add(stage.name)
            steps_by_stage.setdefault(stage.name, set()).update(
                step.name for step in stage.steps
            )
            add_exit(stage.name, stage.exit)
        # The NIC interrupt feeds the driver stage.
        edges.add((HARDIRQ, stages["pnic"].name))
    edges.add((ALLOC, HARDIRQ))
    edges.add((SOCKET, FREE))
    return stage_names, edges, steps_by_stage


def _longest_path_ranks(edges: Set[Tuple[str, str]]) -> Dict[str, int]:
    """Topological longest-path rank for every node in the DAG."""
    nodes: Set[str] = set()
    for a, b in edges:
        nodes.add(a)
        nodes.add(b)
    indegree: Dict[str, int] = {node: 0 for node in nodes}
    for _, b in edges:
        indegree[b] += 1
    rank: Dict[str, int] = {node: 0 for node in nodes}
    ready = sorted(node for node, deg in indegree.items() if deg == 0)
    order: List[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for a, b in sorted(edges):
            if a != node:
                continue
            rank[b] = max(rank[b], rank[node] + 1)
            indegree[b] -= 1
            if indegree[b] == 0:
                ready.append(b)
        ready.sort()
    if len(order) != len(nodes):
        raise RuntimeError(
            "stage graph has a cycle — the receive pipeline must be a DAG"
        )
    return rank


@functools.lru_cache(maxsize=1)
def stage_order_spec() -> StageOrderSpec:
    """Derive (and cache) the stage-order spec from the built stacks."""
    stacks = _reference_stacks()
    _stage_names, edges, steps_by_stage = _stage_graph(stacks)
    rank = _longest_path_ranks(edges)

    ops: Dict[str, OpSpec] = {}

    def add(name: str, kind: str, ranks: Set[int]) -> None:
        existing = ops.get(name)
        if existing is not None:
            ranks = set(existing.ranks) | ranks
            kind = existing.kind
        ops[name] = OpSpec(name=name, kind=kind, ranks=frozenset(ranks))

    for stage_name, step_names in steps_by_stage.items():
        for step_name in step_names:
            add(step_name, KIND_STEP, {rank[stage_name]})
    # Enqueue primitives may target any stage that is an enqueue-edge
    # destination (derived, not hand-listed).
    enqueue_targets = {
        rank[b] for _a, b in edges if b in rank and b not in (SOCKET, FREE, HARDIRQ)
    }
    for name in ENQUEUE_OPS:
        add(name, KIND_ENQUEUE, enqueue_targets)
    for name in ALLOC_OPS:
        add(name, KIND_ALLOC, {rank[ALLOC]})
    for name in HARDIRQ_OPS:
        add(name, KIND_HARDIRQ, {rank[HARDIRQ]})
    for name in DELIVER_OPS:
        add(name, KIND_DELIVER, {rank[SOCKET]})
    for name in FREE_OPS:
        add(name, KIND_FREE, {rank[FREE]})
    for name in DROP_OPS:
        add(name, KIND_DROP, {rank[FREE]})
    return StageOrderSpec(stage_rank=rank, edges=edges, ops=ops)
