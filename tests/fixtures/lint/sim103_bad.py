"""SIM103: event ordering keyed on object identity."""


def drain_in_order(events):
    return sorted(events, key=id)  # expect: SIM103
