"""Worklist fixpoint engine for forward dataflow over a CFG.

An analysis supplies three things:

* ``initial(cfg)`` — the abstract state on entry to the function;
* ``transfer(stmt, state)`` — the state after one statement (must be
  monotone; states are treated as immutable values);
* ``join(a, b)`` — least upper bound of two states.

:func:`fixpoint` iterates to a fixed point with a deterministic
worklist (blocks are processed in index order — determinism is a
repo-wide contract, and findings must not depend on dict order), then
returns the stable block-entry states. Clients make a final reporting
pass over each block with :func:`walk_block`, observing the state
*before* every statement — findings are only collected once the states
have converged, so a partially-propagated state can never produce a
phantom report.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Protocol, Tuple, TypeVar

import ast

from repro.analysis.flow.cfg import Cfg

S = TypeVar("S")


class DataflowAnalysis(Protocol[S]):
    """The contract :func:`fixpoint` needs from an analysis."""

    def initial(self, cfg: Cfg) -> S: ...

    def transfer(self, stmt: ast.stmt, state: S) -> S: ...

    def join(self, a: S, b: S) -> S: ...


#: Safety valve: iterations per CFG before we declare non-convergence.
#: Real lattices here are finite and shallow; this only guards against a
#: buggy (non-monotone) transfer function looping forever.
MAX_ITERATIONS = 10_000


class FixpointError(RuntimeError):
    """A transfer function failed to converge (non-monotone lattice)."""


def fixpoint(cfg: Cfg, analysis: DataflowAnalysis[S]) -> Dict[int, S]:
    """Run the worklist algorithm; return stable entry states per block."""
    in_states: Dict[int, S] = {cfg.entry: analysis.initial(cfg)}
    worklist: List[int] = [cfg.entry]
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > MAX_ITERATIONS:
            raise FixpointError(
                f"dataflow did not converge in {MAX_ITERATIONS} iterations "
                f"({ast.dump(cfg.func)[:80]}...)"
            )
        # Deterministic order: always the lowest-numbered pending block.
        worklist.sort()
        index = worklist.pop(0)
        block = cfg.blocks[index]
        state = in_states[index]
        for stmt in block.stmts:
            state = analysis.transfer(stmt, state)
        for succ in block.succs:
            if succ in in_states:
                joined = analysis.join(in_states[succ], state)
                if joined != in_states[succ]:
                    in_states[succ] = joined
                    if succ not in worklist:
                        worklist.append(succ)
            else:
                in_states[succ] = state
                if succ not in worklist:
                    worklist.append(succ)
    return in_states


def walk_block(
    cfg: Cfg,
    in_states: Dict[int, S],
    analysis: DataflowAnalysis[S],
    observe: Callable[[ast.stmt, S], None],
) -> None:
    """Reporting pass: call ``observe(stmt, state_before)`` everywhere.

    Runs after :func:`fixpoint` so every observed state is final.
    Unreachable blocks (no entry state) are skipped — they have no
    concrete executions to report about.
    """
    for block in cfg.blocks:
        if block.index not in in_states:
            continue
        state = in_states[block.index]
        for stmt in block.stmts:
            observe(stmt, state)
            state = analysis.transfer(stmt, state)


class SetLattice(Generic[S]):
    """Helper mixin: join/compare for ``frozenset``-valued maps."""

    @staticmethod
    def join_maps(
        a: Dict[str, frozenset], b: Dict[str, frozenset]
    ) -> Dict[str, frozenset]:
        if a == b:
            return a
        out: Dict[str, frozenset] = dict(a)
        for key, value in b.items():
            existing = out.get(key)
            out[key] = value if existing is None else existing | value
        return out


def call_sites(stmt: ast.stmt) -> Iterator[Tuple[ast.Call, str]]:
    """Yield ``(call node, last name segment)`` for calls in a statement.

    A compound statement sitting in a CFG block (the ``if``/``while``
    test, the ``for`` iterator) contributes only its *control
    expressions* — its body statements live in their own blocks and
    must not be double-counted here. Nested function/lambda/class
    bodies are skipped too: their calls execute in a different
    activation, not on this statement's path.
    """
    roots: List[ast.AST]
    if isinstance(stmt, (ast.If, ast.While)):
        roots = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(
        stmt,
        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Try),
    ):
        roots = []
    else:
        roots = [stmt]
    stack: List[ast.AST] = roots
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name is not None:
                yield node, name
        stack.extend(ast.iter_child_nodes(node))


def _call_name(call: ast.Call) -> "str | None":
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None
