"""Single-owner counterparts of the OWN61x shapes.

Mirrors the real pipeline idioms: encode last and drop the local,
GRO's store-XOR-forward split (held on one path, returned on the
disjoint other), and boundary constructors that build fresh objects.
"""


class WireEgress:
    def ship(self, skb):
        payload = encode_skb(skb)
        self.records.append(payload)

    def ship_copy_of_fields(self, skb):
        size = skb.size
        payload = encode_skb(skb)
        return (size, payload)


class GroLikeStage:
    def feed(self, skb):
        if self._mergeable(skb):
            self.held.append(skb)
            return None
        return skb

    def flush_one(self):
        merged_skb = self._merge_held()
        return merged_skb


class FreshDecoder:
    def decode_skb(self, payload):
        return Skb(payload[0], payload[1], payload[2])

    def from_wire_payload(self, record):
        skb = Skb(record.payload[0], record.payload[1], record.payload[2])
        return skb
