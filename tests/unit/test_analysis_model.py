"""Unit tests for the analytical pipeline model internals."""

import pytest

from repro.analysis.pipeline import PipelineModel, StageCost
from repro.kernel.costs import CostModel
from repro.kernel.skb import PROTO_TCP, PROTO_UDP


class TestStageCost:
    def test_capacity(self):
        assert StageCost("x", 2.0).capacity_pps() == pytest.approx(500_000.0)

    def test_zero_service_is_infinite(self):
        assert StageCost("x", 0.0).capacity_pps() == float("inf")


class TestStations:
    def test_host_station_names(self):
        model = PipelineModel(CostModel(), 16, overlay=False)
        names = [stage.name for stage in model.stations("host")]
        assert names == ["pnic", "hoststack", "app_copy"]

    def test_overlay_stacks_three_stages_on_one_station(self):
        model = PipelineModel(CostModel(), 16, overlay=True)
        stations = {s.name: s for s in model.stations("overlay")}
        falcon_stations = {s.name: s for s in model.stations("falcon")}
        stacked = stations["rps_core(stacked)"].service_us
        unstacked = (
            falcon_stations["rps_core"].service_us
            + falcon_stations["vxlan_core"].service_us
            + falcon_stations["container_core"].service_us
        )
        # Stacking serializes the same work on one core (plus switches).
        assert stacked == pytest.approx(unstacked, rel=0.1)

    def test_unknown_mode_rejected(self):
        model = PipelineModel(CostModel(), 16)
        with pytest.raises(ValueError):
            model.stations("macvlan")

    def test_tcp_large_message_driver_heaviest_on_host(self):
        model = PipelineModel(
            CostModel(), 4096, proto=PROTO_TCP, overlay=False
        )
        assert model.bottleneck("host").name == "pnic"  # the Fig 9a story

    def test_fragmented_udp_scales_per_fragment(self):
        small = PipelineModel(CostModel(), 1000, overlay=True)
        large = PipelineModel(CostModel(), 60_000, overlay=True)
        assert len(large.fragments) > 40
        assert large.driver_stage().service_us > 30 * small.driver_stage().service_us

    def test_latency_monotone_in_rate(self):
        model = PipelineModel(CostModel(), 16, overlay=True)
        capacity = model.capacity_pps("overlay")
        low = model.latency_us("overlay", 0.2 * capacity)
        high = model.latency_us("overlay", 0.9 * capacity)
        assert high > low > 0

    def test_latency_infinite_beyond_capacity(self):
        model = PipelineModel(CostModel(), 16, overlay=True)
        capacity = model.capacity_pps("overlay")
        assert model.latency_us("overlay", 1.1 * capacity) == float("inf")

    def test_kernel_54_shifts_capacities(self):
        old = PipelineModel(CostModel.kernel_4_19(), 16, overlay=False)
        new = PipelineModel(CostModel.kernel_5_4(), 16, overlay=False)
        # Cheaper skb_alloc: the driver station gets faster on 5.4...
        assert new.driver_stage().service_us < old.driver_stage().service_us
        # ...while backlog-heavy stations regress.
        assert (
            new._tail_stage("hoststack").service_us
            > old._tail_stage("hoststack").service_us
        )
