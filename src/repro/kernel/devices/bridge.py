"""Linux bridge (``br_handle_frame``).

Containers attach to the host network through a bridge; every inner
packet is forwarded by ``br_handle_frame`` toward the container's veth
port (Section 3.1).
"""

from __future__ import annotations

from repro.kernel.costs import CostModel
from repro.kernel.stages import Step


def bridge_step(costs: CostModel) -> Step:
    return Step.simple("br_handle_frame", costs.br_handle_frame)
