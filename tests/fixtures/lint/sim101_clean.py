"""Clean twin of sim101_bad: timestamps come from the simulation clock."""


def timestamp_event(sim, event):
    event.stamped_at = sim.now
    return event
