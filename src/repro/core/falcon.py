"""Falcon steering — the Algorithm 1 ``netif_rx`` / ``get_falcon_cpu`` pair.

:class:`FalconSteering` is consulted by every stage-transition point in
the stack. It implements the enable gate (line 6: Falcon runs only while
the average load of the Falcon CPU set is below ``FALCON_LOAD_THRESHOLD``)
and delegates CPU choice to the configured balancer (lines 17–27).

When Falcon is disabled — by configuration or by the load gate — the
transition falls back to the vanilla path: the packet stays on the
current core, which reproduces the serialized-softirq behaviour of the
stock overlay network.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.balancing import make_balancer
from repro.core.config import FalconConfig
from repro.hw.topology import Machine
from repro.kernel.skb import Skb


class FalconSteering:
    """Per-host Falcon instance."""

    def __init__(self, machine: Machine, config: FalconConfig) -> None:
        config.validate(machine.num_cpus)
        self.machine = machine
        #: The run's :class:`~repro.sim.context.SimContext`; balancers
        #: needing randomness must draw named streams from it so two
        #: Falcon instances in one process stay independent.
        self.ctx = machine.ctx
        self.config = config
        self.balancer = make_balancer(config)
        # --- statistics -------------------------------------------------
        #: Transitions steered by Falcon.
        self.steered = 0
        #: Transitions that fell back to the vanilla path (load gate).
        self.fallbacks = 0
        #: Steered transitions per device index — which FALCON point
        #: fired. With the flow cache on, hit packets skip the VXLAN
        #: transition but still pass the veth/fast-path one; this map is
        #: how tests assert the two mechanisms actually compose.
        self.steered_by_ifindex: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def active(self) -> bool:
        """Line 6: is there room for parallelization right now?"""
        if not self.config.enabled:
            return False
        if not self.config.threshold_enabled:
            return True
        load = self.machine.average_load(self.config.cpus)
        return load < self.config.load_threshold

    def select_cpu(self, skb: Skb, ifindex: int, current_cpu: int) -> int:
        """The steering decision a stage-transition function makes.

        Returns the CPU whose backlog should receive the packet's next
        stage: a Falcon CPU when Falcon is active, the current CPU (the
        vanilla ``netif_rx`` behaviour) otherwise.
        """
        if not self.active():
            self.fallbacks += 1
            return current_cpu
        self.steered += 1
        self.steered_by_ifindex[ifindex] = (
            self.steered_by_ifindex.get(ifindex, 0) + 1
        )
        return self.balancer.select(
            self.machine, self.config.cpus, skb.hash, ifindex
        )

    def selector(self, ifindex: int) -> Callable[[Skb, int], int]:
        """Bind this steering instance to a device, for use as a
        :class:`~repro.kernel.stages.EnqueueTransition` selector."""

        def _select(skb: Skb, current_cpu: int) -> int:
            return self.select_cpu(skb, ifindex, current_cpu)

        return _select

    def split_selector(
        self, ifindex: int, split_same_core: bool
    ) -> Callable[[Skb, int], int]:
        """Selector for a *split* half-stage.

        ``split_same_core`` implements the Section 6.4 workaround: target
        the current core so the split function never actually moves.
        """
        if split_same_core:
            def _stay(skb: Skb, current_cpu: int) -> int:
                return current_cpu

            return _stay
        return self.selector(ifindex)


class VanillaSteering:
    """The stock kernel's ``netif_rx``: always the current core.

    Used when building a vanilla-overlay stack so the transition points
    exist (they are part of the kernel) but never move packets.
    """

    def selector(self, ifindex: int) -> Callable[[Skb, int], int]:
        def _select(skb: Skb, current_cpu: int) -> int:
            return current_cpu

        return _select
