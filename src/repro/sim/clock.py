"""Time units for the simulator.

The canonical simulation time unit is the **microsecond**. All service
times, delays and timestamps in the code base are expressed in
microseconds; the constants below exist so call sites can spell out the
unit they mean (``10 * MS`` reads better than ``10000.0``).
"""

#: One nanosecond expressed in simulation time units (microseconds).
NS = 1e-3

#: One microsecond — the canonical unit.
US = 1.0

#: One millisecond.
MS = 1e3

#: One second.
SEC = 1e6


def us_to_seconds(t_us: float) -> float:
    """Convert a simulation timestamp (µs) to seconds."""
    return t_us / SEC


def seconds_to_us(t_s: float) -> float:
    """Convert seconds to simulation time units (µs)."""
    return t_s * SEC
