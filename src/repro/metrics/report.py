"""Plain-text tables for experiment output.

Every experiment driver renders its results through :func:`format_table`
so benchmark logs read like the rows/series of the paper's figures.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


class Table:
    """A small column-aligned text table."""

    def __init__(self, columns: Sequence[str], title: Optional[str] = None) -> None:
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_fmt(value) for value in values])

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            col.ljust(widths[index]) for index, col in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 10:
            return f"{value:.1f}"
        if magnitude >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def format_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """One-shot helper: build and render a :class:`Table`."""
    table = Table(columns, title=title)
    for row in rows:
        table.add_row(*row)
    return table.render()
