"""Unit tests for the device-stage step builders and protocol steps."""

import pytest

from repro.kernel.costs import VXLAN_OVERHEAD, CostModel
from repro.kernel.defrag import DefragEngine
from repro.kernel.devices.base import ALL_DEVICES, VETH
from repro.kernel.devices.bridge import bridge_step
from repro.kernel.devices.physical import (
    driver_first_half_steps,
    driver_second_half_steps,
    driver_steps,
    gro_step,
)
from repro.kernel.devices.veth import veth_steps
from repro.kernel.devices.vxlan import outer_stack_steps
from repro.kernel.gro import GroCluster
from repro.kernel.protocol import defrag_step, l4_rcv_step, stack_tail_steps
from repro.kernel.skb import PROTO_TCP, PROTO_UDP, FlowKey, Skb
from repro.sim.engine import Simulator


def udp_skb(size=1000, frag_count=1, frag_index=0):
    return Skb(
        FlowKey.make(1, 2, PROTO_UDP), size=size,
        frag_count=frag_count, frag_index=frag_index,
    )


def tcp_skb(size=1000, frag_count=1, frag_index=0):
    return Skb(
        FlowKey.make(1, 2, PROTO_TCP), size=size,
        frag_count=frag_count, frag_index=frag_index,
    )


class TestDeviceRegistry:
    def test_ifindexes_distinct(self):
        indexes = [device.ifindex for device in ALL_DEVICES]
        assert len(set(indexes)) == len(indexes)

    def test_veth_is_not_napi(self):
        assert not VETH.napi  # why it uses process_backlog (Section 3.1)


class TestDriverSteps:
    def test_full_stage_step_names(self):
        steps = driver_steps(CostModel(), GroCluster(2))
        assert [step.name for step in steps] == [
            "skb_alloc", "napi_gro_receive", "rps_steer",
        ]

    def test_split_halves_partition_the_work(self):
        costs = CostModel()
        first = driver_first_half_steps(costs)
        second = driver_second_half_steps(costs, GroCluster(2))
        assert "skb_alloc" in [s.name for s in first]
        assert "napi_gro_receive" in [s.name for s in second]
        # GRO never appears in the first half.
        assert "napi_gro_receive" not in [s.name for s in first]

    def test_gro_cost_tcp_vs_udp(self):
        costs = CostModel()
        step = gro_step(costs, GroCluster(2))
        tcp_cost = step.cost(tcp_skb(size=1448))
        udp_cost = step.cost(udp_skb(size=1448))
        assert tcp_cost > 3 * udp_cost  # merge work vs quick look

    def test_gro_disabled_costs_check_only(self):
        costs = CostModel()
        step = gro_step(costs, None)
        assert step.cost(tcp_skb(size=1448)) == pytest.approx(
            costs.gro_check.cost(1448)
        )
        assert step.effect is None


class TestOverlaySteps:
    def test_outer_stack_decapsulates(self):
        steps = outer_stack_steps(CostModel())
        vxlan = next(step for step in steps if step.name == "vxlan_rcv")
        skb = udp_skb(size=1000)
        skb.encapsulated = True
        out = vxlan.effect(skb, 0)
        assert out is skb
        assert skb.size == 1000 - VXLAN_OVERHEAD
        assert not skb.encapsulated

    def test_bridge_and_veth_cost_scale_with_size(self):
        costs = CostModel()
        assert bridge_step(costs).cost(udp_skb(size=9000)) > bridge_step(
            costs
        ).cost(udp_skb(size=100))
        veth = veth_steps(costs)
        assert [s.name for s in veth] == ["veth_xmit", "netif_rx"]


class TestProtocolSteps:
    def test_l4_cost_selects_protocol(self):
        costs = CostModel()
        step = l4_rcv_step(costs)
        tcp_cost = step.cost(tcp_skb(size=4096))
        udp_cost = step.cost(udp_skb(size=4096))
        expected_tcp = costs.tcp_v4_rcv.cost(4096) + costs.tcp_ack_tx.fixed
        assert tcp_cost == pytest.approx(expected_tcp)
        assert udp_cost == pytest.approx(costs.udp_rcv.cost(4096))

    def test_defrag_step_ignores_tcp(self):
        sim = Simulator()
        engine = DefragEngine(sim)
        step = defrag_step(CostModel(), engine)
        segment = tcp_skb(frag_count=3, frag_index=0)
        assert step.cost(segment) == 0.0
        assert step.effect(segment, 0) is segment
        assert engine.pending == 0

    def test_defrag_step_holds_udp_fragments(self):
        sim = Simulator()
        engine = DefragEngine(sim)
        step = defrag_step(CostModel(), engine)
        frag = udp_skb(frag_count=3, frag_index=0)
        assert step.cost(frag) > 0
        assert step.effect(frag, 0) is None
        assert engine.pending == 1

    def test_tail_has_socket_enqueue_last(self):
        sim = Simulator()
        steps = stack_tail_steps(CostModel(), DefragEngine(sim))
        assert steps[-1].name == "sock_enqueue"
        assert steps[0].name == "ip_rcv"
