"""Unit tests for dynamic GRO splitting (the Section 6.4 future work)."""

import pytest

from repro.core.config import FalconConfig
from repro.core.dynamic import (
    DynamicSplitController,
    SplitSwitch,
    attach_dynamic_splitting,
)
from repro.hw.cpu import SOFTIRQ
from repro.hw.topology import Machine
from repro.sim.engine import Simulator
from repro.workloads.sockperf import Testbed


def make_controller(**kwargs):
    sim = Simulator()
    machine = Machine(sim, num_cpus=2)
    switch = SplitSwitch()
    controller = DynamicSplitController(machine, switch, sample_us=100.0, **kwargs)
    controller.start()
    return sim, machine, switch, controller


class TestController:
    def test_activates_after_sustained_saturation(self):
        sim, machine, switch, controller = make_controller(patience=3)
        machine.cpus[0].load = 0.99
        sim.run(until=250.0)
        assert not switch.active  # only 2 samples so far
        sim.run(until=350.0)
        assert switch.active
        assert controller.activations == 1

    def test_transient_spike_ignored(self):
        sim, machine, switch, controller = make_controller(patience=3)
        machine.cpus[0].load = 0.99
        sim.run(until=250.0)
        machine.cpus[0].load = 0.30  # spike over before patience ran out
        sim.run(until=1000.0)
        assert not switch.active
        assert controller.activations == 0

    def test_deactivates_with_hysteresis(self):
        sim, machine, switch, controller = make_controller(patience=1)
        machine.cpus[0].load = 0.99
        sim.run(until=150.0)
        assert switch.active
        # Load between release and activate: stays on (hysteresis).
        machine.cpus[0].load = 0.75
        sim.run(until=400.0)
        assert switch.active
        machine.cpus[0].load = 0.40
        sim.run(until=600.0)
        assert not switch.active
        assert controller.deactivations == 1

    def test_threshold_validation(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=1)
        with pytest.raises(ValueError):
            DynamicSplitController(
                machine, SplitSwitch(), activate_threshold=0.5, release_threshold=0.6
            )
        with pytest.raises(ValueError):
            DynamicSplitController(machine, SplitSwitch(), patience=0)


class TestAttach:
    def test_requires_split_stack(self):
        bed = Testbed(mode="overlay", falcon=FalconConfig(split_gro=False))
        with pytest.raises(ValueError):
            attach_dynamic_splitting(bed.stack)

    def test_split_only_moves_when_active(self):
        bed = Testbed(mode="host", falcon=FalconConfig(cpus=[3, 4], split_gro=True))
        controller = attach_dynamic_splitting(bed.stack, patience=1)
        bed.add_tcp_flow(4096, window_msgs=64)
        bed.run(warmup_ms=4, measure_ms=10)
        acct = bed.host.machine.acct
        # The workload saturates the driver core, so the controller must
        # have activated and moved GRO off core 0 at some point.
        assert controller.activations >= 1
        moved = sum(
            acct.busy_us_label(cpu, "napi_gro_receive") for cpu in (3, 4)
        )
        assert moved > 0

    def test_light_load_never_splits(self):
        bed = Testbed(mode="host", falcon=FalconConfig(cpus=[3, 4], split_gro=True))
        controller = attach_dynamic_splitting(bed.stack, patience=1)
        bed.add_udp_flow(16, clients=1, rate_pps=20_000)
        bed.run(warmup_ms=4, measure_ms=10)
        assert controller.activations == 0
        acct = bed.host.machine.acct
        for cpu in (3, 4):
            assert acct.busy_us_label(cpu, "napi_gro_receive") == 0
