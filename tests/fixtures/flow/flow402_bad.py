"""FLOW402: the packet re-enters the pipeline after socket delivery."""


def forward_after_delivery(stack, skb, cpu):
    stack.deliver_to_socket(skb, cpu)
    stack.enqueue_backlog(cpu, skb, None, cpu)  # expect: FLOW402


def finish(stack, skb, cpu):
    # Helper that ends the packet's pipeline life; its effect on `skb`
    # is summarized interprocedurally.
    stack.deliver_to_socket(skb, cpu)


def replay_delivered(stack, skb, cpu):
    finish(stack, skb, cpu)
    stack.netif_rx(skb)  # expect: FLOW402
