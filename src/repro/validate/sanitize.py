"""Runtime ownership sanitizer: the dynamic side of ``repro san``.

The static pass (:mod:`repro.analysis.san`) proves ownership discipline
over the *source*; this module checks it over an actual *run*. A shadow
:class:`OwnershipLedger` records every acquire and release of the three
kinds of owned objects the reproduction moves across boundaries:

``event``       pooled/scheduled :class:`~repro.sim.events.Event`
                objects — acquired when minted (``schedule_at`` /
                ``_acquire``), released when fired or when a scheduler
                discards a cancelled entry lazily.
``flow_entry``  flow-cache entries — acquired at
                :meth:`~repro.kernel.flowcache.FlowTable.insert`,
                released by eviction and every ``invalidate*`` path
                (the ``RECORD_INVAL`` churn included).
``record``      cross-shard :class:`CrossShardEvent` records —
                acquired at the host outbox ``emit``, released when the
                destination shard ``inject``\\ s them.

Enable with ``REPRO_SANITIZE=1`` (or the :func:`sanitizing` context
manager, which sets the variable for you): instrumented constructors
pick up the process ledger and every site pays one ``is None`` check
when the sanitizer is off. The ledger never schedules, never reads the
clock and never touches an RNG, so a sanitized run's traces are
byte-identical to an unsanitized run's — the golden suite asserts this.

At end of run :meth:`OwnershipLedger.report` classifies what is still
live: an event that is neither queued nor released leaked (the pool
shrank for good); queued events, table-owned entries and in-flight
records are legitimate residue and count as *pending*, not leaks.
Mismatched operations (double acquire, release of something untracked)
are reported as errors at the offending site.

Site tags are string literals at the instrumentation sites;
:mod:`repro.analysis.san.sancheck` scans the source for them and
cross-checks that every site a dynamic run reports is in that static
catalog.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "SANITIZE_ENV_VAR",
    "LeakRecord",
    "OwnershipLedger",
    "SanitizeReport",
    "current_ledger",
    "install_ledger",
    "reset_ledger",
    "sanitize_enabled",
    "sanitizing",
]

#: Environment variable that switches the sanitizer on ("" / "0" = off).
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

#: Object kinds the ledger understands (see module docstring).
KINDS = ("event", "flow_entry", "record")


def sanitize_enabled() -> bool:
    """Is the sanitizer switched on for this process?"""
    return os.environ.get(SANITIZE_ENV_VAR, "") not in ("", "0")


@dataclass(frozen=True)
class LeakRecord:
    """One leak line: ``count`` objects acquired at ``site`` never left."""

    kind: str
    site: str
    count: int

    def render(self) -> str:
        plural = "s" if self.count != 1 else ""
        return (
            f"{self.count} {self.kind}{plural} acquired at {self.site} "
            "leaked (never released, not queued)"
        )


@dataclass
class SanitizeReport:
    """End-of-run verdict from :meth:`OwnershipLedger.report`."""

    leaks: List[LeakRecord] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    #: kind -> still-live objects that are legitimate residue.
    pending: Dict[str, int] = field(default_factory=dict)
    #: site -> acquire count over the whole run.
    acquired: Dict[str, int] = field(default_factory=dict)
    #: site -> release count over the whole run.
    released: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.leaks and not self.errors

    def sites(self) -> Set[str]:
        """Every site tag this run actually exercised."""
        return set(self.acquired) | set(self.released)

    def render(self) -> List[str]:
        lines = [leak.render() for leak in self.leaks]
        lines.extend(self.errors)
        if not lines:
            total_acquired = sum(self.acquired.values())
            total_released = sum(self.released.values())
            residue = sum(self.pending.values())
            lines.append(
                f"{total_acquired} acquires / {total_released} releases "
                f"balanced; {residue} pending (queued/table-owned/in-flight)"
            )
        return lines


class OwnershipLedger:
    """Shadow ownership map: (kind, identity) -> (acquire site, object).

    Identities are whatever the instrumentation site can produce
    deterministically and uniquely among *live* objects — ``id(event)``
    for events (the ledger keeps the object alive, so the id cannot be
    recycled while the entry is live), ``(id(table), key)`` for cache
    entries, ``(src, seq)`` for cross-shard records.
    """

    __slots__ = ("_live", "errors", "acquired", "released")

    def __init__(self) -> None:
        self._live: Dict[Tuple[str, Any], Tuple[str, Any]] = {}
        self.errors: List[str] = []
        self.acquired: Dict[str, int] = {}
        self.released: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # The two operations instrumented sites call
    # ------------------------------------------------------------------
    def acquire(
        self, kind: str, identity: Any, site: str, obj: Any = None
    ) -> None:
        key = (kind, identity)
        prev = self._live.get(key)
        if prev is not None:
            self.errors.append(
                f"double acquire of {kind} at {site}: the object is "
                f"already live from {prev[0]} (two owners)"
            )
        self._live[key] = (site, obj)
        self.acquired[site] = self.acquired.get(site, 0) + 1

    def release(self, kind: str, identity: Any, site: str) -> None:
        key = (kind, identity)
        if self._live.pop(key, None) is None:
            self.errors.append(
                f"release of untracked {kind} at {site}: either a double "
                "release or an acquire path the sanitizer does not cover"
            )
        self.released[site] = self.released.get(site, 0) + 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def live_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self._live)
        return sum(1 for k, _ in self._live if k == kind)

    def report(self) -> SanitizeReport:
        """Classify everything still live; leaks vs legitimate residue."""
        leak_counts: Dict[Tuple[str, str], int] = {}
        pending: Dict[str, int] = {}
        for (kind, _identity), (site, obj) in self._live.items():
            if kind == "event" and not getattr(obj, "queued", False):
                # Neither fired, nor discarded, nor waiting in a queue:
                # nothing will ever release this object again.
                leak_key = (kind, site)
                leak_counts[leak_key] = leak_counts.get(leak_key, 0) + 1
            else:
                # Queued events, table-owned entries and in-flight
                # records are owned by live structures — residue of
                # stopping the clock, not leaks.
                pending[kind] = pending.get(kind, 0) + 1
        leaks = [
            LeakRecord(kind=kind, site=site, count=count)
            for (kind, site), count in sorted(leak_counts.items())
        ]
        return SanitizeReport(
            leaks=leaks,
            errors=list(self.errors),
            pending=pending,
            acquired=dict(self.acquired),
            released=dict(self.released),
        )


# ----------------------------------------------------------------------
# Process-wide ledger plumbing
# ----------------------------------------------------------------------
_LEDGER: Optional[OwnershipLedger] = None


def current_ledger() -> Optional[OwnershipLedger]:
    """The process ledger, created on first use when the env var is set.

    Instrumented constructors call this once at ``__init__`` and keep
    the result (or None) — the per-operation cost with the sanitizer off
    is a single ``is None`` check.
    """
    global _LEDGER
    if _LEDGER is None and sanitize_enabled():
        _LEDGER = OwnershipLedger()
    return _LEDGER


def install_ledger(ledger: Optional[OwnershipLedger] = None) -> OwnershipLedger:
    """Install (and return) a fresh or caller-provided process ledger."""
    global _LEDGER
    _LEDGER = ledger if ledger is not None else OwnershipLedger()
    return _LEDGER


def reset_ledger() -> None:
    """Drop the process ledger (new sanitized objects get a fresh one)."""
    global _LEDGER
    _LEDGER = None


@contextmanager
def sanitizing() -> Iterator[OwnershipLedger]:
    """Run a block under a fresh ledger with the sanitizer forced on.

    Sets ``REPRO_SANITIZE=1`` for the duration so objects constructed
    inside the block self-instrument, then restores the previous state.
    """
    previous_env = os.environ.get(SANITIZE_ENV_VAR)
    previous_ledger = _LEDGER
    os.environ[SANITIZE_ENV_VAR] = "1"
    ledger = install_ledger()
    try:
        yield ledger
    finally:
        if previous_env is None:
            os.environ.pop(SANITIZE_ENV_VAR, None)
        else:
            os.environ[SANITIZE_ENV_VAR] = previous_env
        if previous_ledger is not None:
            install_ledger(previous_ledger)
        else:
            reset_ledger()
