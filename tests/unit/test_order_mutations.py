"""Mutation tests: simorder must catch planted defects in the real code.

The acceptance bar for the pass is not "runs clean on src" (a vacuous
analyzer does that too) — it is that seeding each of the three canonical
ordering bugs into a *copy of the real module* yields exactly the
expected ORD finding at the expected line:

* shard identity leaked into the (time, src, seq) merge key → ORD503;
* the RECORD_INVAL churn emission stripped of its propagation bound
  (timestamped at the bare shard clock) → ORD511;
* a FlowTable insert at lookup time, bypassing the slow-inflight
  ledger gate → ORD521.

Copies are analyzed out-of-tree (module=None), where every rule applies
unconditionally — strict by default.
"""

from pathlib import Path

from repro.analysis.lint.report import render_text
from repro.analysis.order import order_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
CLUSTER = REPO_ROOT / "src" / "repro" / "overlay" / "cluster.py"
FLOWCACHE = REPO_ROOT / "src" / "repro" / "kernel" / "flowcache.py"


def findings_for(path):
    result = order_paths([str(path)])
    return [(f.line, f.rule) for f in result.findings]


def mutate(tmp_path, source: Path, old: str, new: str) -> Path:
    text = source.read_text()
    assert text.count(old) == 1, f"mutation anchor not unique: {old!r}"
    copy = tmp_path / source.name
    copy.write_text(text.replace(old, new))
    return copy


def line_of(path: Path, needle: str) -> int:
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        if needle in text:
            return lineno
    raise AssertionError(f"{needle!r} not found in {path}")


class TestCleanCopies:
    """The unmutated modules are clean even out-of-tree (module=None)."""

    def test_cluster_copy_is_clean(self, tmp_path):
        copy = tmp_path / CLUSTER.name
        copy.write_text(CLUSTER.read_text())
        result = order_paths([str(copy)])
        assert result.ok, render_text(result)

    def test_flowcache_copy_is_clean(self, tmp_path):
        copy = tmp_path / FLOWCACHE.name
        copy.write_text(FLOWCACHE.read_text())
        result = order_paths([str(copy)])
        assert result.ok, render_text(result)


class TestPlantedDefects:
    def test_shard_id_in_merge_key_yields_ord503(self, tmp_path):
        # _HostOutbox.emit assigns the merge key's src from the host
        # index (partition-invariant). Assign it from a shard index
        # instead and the key differs between 1-shard and N-shard runs.
        copy = mutate(
            tmp_path,
            CLUSTER,
            "CrossShardEvent(time, self.host_index, self._seq, kind, dst, payload)",
            "CrossShardEvent(time, self.shard_index, self._seq, kind, dst, payload)",
        )
        expected_line = line_of(copy, "self.shard_index, self._seq")
        assert findings_for(copy) == [(expected_line, "ORD503")]

    def test_unbounded_churn_emit_yields_ord511(self, tmp_path):
        # _churn invalidates remote egress templates one propagation
        # delay out — the same causality bound the TCP credits use.
        # Strip the bound and the record lands in the receiving shard's
        # current window (its past, once the shards diverge).
        copy = mutate(
            tmp_path,
            CLUSTER,
            "                    self.sim.now + propagation,\n"
            "                    RECORD_INVAL,",
            "                    self.sim.now,\n"
            "                    RECORD_INVAL,",
        )
        expected_line = line_of(copy, "self.sim.now,")
        assert findings_for(copy) == [(expected_line, "ORD511")]

    def test_insert_bypassing_ledger_yields_ord521(self, tmp_path):
        # FlowTable.access must only *reserve* the flow as slow-inflight
        # on a miss; populating right there serves the next packet from
        # cache while this one still rides the slow path.
        copy = mutate(
            tmp_path,
            FLOWCACHE,
            "        self.misses += 1\n"
            "        self._slow_inflight[key] =",
            "        self.misses += 1\n"
            "        self.insert(key)\n"
            "        self._slow_inflight[key] =",
        )
        expected_line = line_of(copy, "self.insert(key)")
        assert findings_for(copy) == [(expected_line, "ORD521")]
