"""Ablation: the cache-locality tax of pipelining.

Section 6.3 argues Falcon's loss of locality costs little because the
vanilla overlay's locality is already poor (one core thrashing between
three softirq contexts). This ablation re-runs the single-flow stress
with the locality model switched off (uniform multipliers and zero
context-switch cost) to isolate how much of Falcon's remaining gap to
native is locality.
"""

import pytest
from conftest import QUICK

from dataclasses import replace

from repro.core.config import FalconConfig
from repro.hw.cache import LocalityModel
from repro.kernel.costs import CostModel, FuncCost
from repro.metrics.report import Table
from repro.workloads.sockperf import Testbed

DUR = dict(warmup_ms=4 if QUICK else 8, measure_ms=8 if QUICK else 20)


def run_case(falcon, locality_off):
    bed = Testbed(mode="overlay", falcon=falcon)
    if locality_off:
        bed.host.machine.locality = LocalityModel.uniform()
        costs = replace(bed.stack.costs, softirq_switch=FuncCost(0.0))
        bed.stack.costs = costs
        # Rebuild stages so the new cost model is used.
        from repro.kernel.stack import NetworkStack

        bed.host.config.costs = costs
        bed.host.stack = NetworkStack(bed.sim, bed.host.machine, bed.host.config)
        bed.host.machine.locality = LocalityModel.uniform()
        bed.stack = bed.host.stack
        bed.window.stack = bed.stack
    bed.add_udp_flow(16, clients=3)
    return bed.run(**DUR)


def test_ablation_locality_tax(benchmark):
    def run():
        return {
            ("Con", False): run_case(None, False),
            ("Con", True): run_case(None, True),
            ("Falcon", False): run_case(FalconConfig(), False),
            ("Falcon", True): run_case(FalconConfig(), True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["case", "locality model", "kpps", "total CPU cores"],
        title="16 B UDP stress with and without locality costs",
    )
    for (label, off), result in results.items():
        table.add_row(
            label,
            "off" if off else "on",
            result.message_rate_pps / 1e3,
            sum(result.cpu_util),
        )
    print()
    print(table.render())

    # Removing locality costs helps Falcon (it pays cross-core taxes)...
    assert (
        results[("Falcon", True)].message_rate_pps
        >= results[("Falcon", False)].message_rate_pps * 0.99
    )
    # ...but the effect is second-order: pipelining, not locality, is the
    # headline (Falcon with locality on still far exceeds Con without).
    assert (
        results[("Falcon", False)].message_rate_pps
        > 1.5 * results[("Con", True)].message_rate_pps
    )
