"""Compaction vs the shard window loop: peek, inject, cancel, advance.

The shard advance loop leaves a ``peek_time`` probe outstanding while
the coordinator computes the barrier, then injects cross-shard records
(``post_at``) that can land *earlier* than the peeked event, then runs
to the bound — and any event fired inside the window may cancel timers
and trip a compaction pass (lazy-cancel rebuild). These tests pin down
that the combination cannot reorder or drop pending injections:

* the calendar scheduler's peek cache/cursor must survive an earlier
  insertion and a full compaction rebuild;
* recycled (freelisted) ``post_at`` events must stay well-ordered
  through cancel churn — the wire path means every cross-shard delivery
  is such an event;
* at the coordinator level, a cancel-churn workload compacting mid-
  window must stay partition-invariant.
"""

import pytest

import repro.sim.scheduler as scheduler_module
from repro.sim.engine import Simulator
from repro.sim.shard.coordinator import InlineShardHandle, ShardCoordinator
from repro.sim.shard.records import CrossShardEvent

SCHEDULERS = ["heap", "calendar"]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_peek_then_earlier_injection_then_compaction(scheduler, monkeypatch):
    """The exact shard-loop shape: peek_time (caches the scheduler's
    head), inject earlier cross-shard arrivals, cancel-churn past the
    compaction threshold, then advance. Every injection must fire, in
    timestamp order, before any local event."""
    monkeypatch.setattr(scheduler_module, "COMPACT_MIN_EVENTS", 8)
    sim = Simulator(scheduler)
    fired = []
    for i in range(20):
        sim.schedule(50.0 + i, fired.append, ("local", i))
    # Coordinator-side probe: computes the window, caches the head.
    assert sim.peek_time() == 50.0
    # Cross-shard records land before the local work (but >= now).
    for i in range(10):
        sim.post_at(5.0 + i, fired.append, ("remote", i))
    # Cancel churn while the window is open — with the threshold at 8
    # this forces at least one compaction rebuild.
    handles = [sim.schedule(200.0 + i, sim.post, 0.0, fired.append, ("timer", i))
               for i in range(40)]
    for handle in handles[:35]:
        sim.cancel(handle)
    # Advance to the barrier: only the injected records lie below it.
    sim.run(until=40.0)
    assert fired == [("remote", i) for i in range(10)]
    # Drain: locals then surviving timers, nothing lost or reordered.
    sim.run()
    assert fired[10:30] == [("local", i) for i in range(20)]
    assert fired[30:] == [("timer", i) for i in range(35, 40)]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_compaction_cannot_resurrect_or_drop(scheduler, monkeypatch):
    """Randomized churn cross-checked against a straight reference list:
    cancellations interleaved with peeks (cache invalidation points) and
    forced compactions must fire exactly the live set, in (time, seq)
    order. Catches both drops and zombie (cancelled-but-fired) events."""
    import random

    monkeypatch.setattr(scheduler_module, "COMPACT_MIN_EVENTS", 16)
    rng = random.Random(1)
    sim = Simulator(scheduler)
    fired = []
    expected = []
    handles = {}
    for i in range(400):
        t = rng.random() * 1000.0
        handles[i] = (t, sim.schedule(t, fired.append, i))
    cancelled = set()
    for i in rng.sample(sorted(handles), 300):
        sim.cancel(handles[i][1])
        cancelled.add(i)
        if rng.random() < 0.2:
            sim.peek_time()  # interleave probes with churn
    expected = [i for i in sorted(
        (t, i) for i, (t, _h) in handles.items() if i not in cancelled
    )]
    sim.run()
    assert fired == [i for _t, i in sorted(
        (handles[i][0], i) for i in handles if i not in cancelled
    )]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_freelist_reuse_survives_cancel_churn(scheduler, monkeypatch):
    """post_at events are recycled through a freelist after firing; the
    cross-shard inject path reuses them at wire speed. Reused carcasses
    must order correctly against cancel churn and compaction."""
    monkeypatch.setattr(scheduler_module, "COMPACT_MIN_EVENTS", 8)
    sim = Simulator(scheduler)
    fired = []
    def wave(round_index):
        if round_index >= 30:
            return
        # Each wave posts recyclable events (exercising freelist reuse),
        # plus cancellable timers, most of which die -> compaction.
        for i in range(8):
            sim.post_at(sim.now + 1.0 + i * 0.1, fired.append,
                        (round_index, i))
        doomed = [sim.schedule(500.0 + i, fired.append, "never")
                  for i in range(12)]
        for handle in doomed[:11]:
            sim.cancel(handle)
        sim.post_at(sim.now + 2.0, wave, round_index + 1)
    sim.post_at(0.0, wave, 0)
    sim.run(until=100.0)
    by_round = [entry for entry in fired if isinstance(entry, tuple)]
    assert by_round == sorted(by_round)
    assert len(by_round) == 30 * 8
    assert "never" not in fired  # cancelled timers stayed dead
    sim.run()
    assert fired.count("never") == 30  # exactly the survivors


class ChurnProgram:
    """Toy shard whose every tick schedules a burst of timers and
    cancels most — compaction runs constantly, mid-window, while
    cross-shard pings are in flight."""

    LATENCY = 4.0

    def __init__(self, hosts, all_hosts, scheduler):
        self._hosts = tuple(hosts)
        self._sim = Simulator(scheduler)
        self._seqs = {h: 0 for h in hosts}
        self._out = []
        self.delivered = []
        for host in hosts:
            peer = all_hosts[(all_hosts.index(host) + 1) % len(all_hosts)]
            self._sim.post_at(1.0 + host * 0.25, self._tick, host, peer)

    def _tick(self, host, peer):
        seq = self._seqs[host]
        self._seqs[host] = seq + 1
        self._out.append(CrossShardEvent(
            self._sim.now + self.LATENCY, host, seq, "ping", peer, ()))
        doomed = [self._sim.schedule(300.0 + i, self._noop) for i in range(10)]
        for handle in doomed[:9]:
            self._sim.cancel(handle)
        self._sim.post_at(self._sim.now + 3.0, self._tick, host, peer)

    @staticmethod
    def _noop():
        return None

    def next_time(self):
        return self._sim.peek_time()

    def advance(self, bound, inclusive=False):
        if inclusive:
            self._sim.run(until=bound)
        else:
            while True:
                t = self._sim.peek_time()
                if t is None or t >= bound:
                    break
                self._sim.run(until=t)
        out, self._out = self._out, []
        return out

    def inject(self, records):
        for record in records:
            self._sim.post_at(
                record.time, self.delivered.append,
                (record.time, record.src, record.seq))

    def hosts(self):
        return self._hosts

    def finalize(self):
        return {"delivered": list(self.delivered)}


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_churn_cluster_is_partition_invariant(scheduler, monkeypatch):
    """End to end: compaction passes inside open barrier windows must
    not change what crosses shards, when, or in what order."""
    monkeypatch.setattr(scheduler_module, "COMPACT_MIN_EVENTS", 8)
    all_hosts = list(range(4))

    def drive(shards):
        groups = [g for g in (all_hosts[i::shards] for i in range(shards)) if g]
        handles = [
            InlineShardHandle(slot, ChurnProgram(group, all_hosts, scheduler))
            for slot, group in enumerate(groups)
        ]
        coordinator = ShardCoordinator(handles, ChurnProgram.LATENCY)
        coordinator.run(until=120.0)
        results = coordinator.finalize()
        coordinator.close()
        delivered = []
        for doc in results:
            delivered.extend(tuple(d) for d in doc["delivered"])
        return sorted(delivered)

    reference = drive(1)
    assert reference, "churn scenario delivered nothing"
    assert drive(2) == reference
    assert drive(4) == reference
