"""Suppression pragmas for the ``simlint`` static-analysis pass.

The linter (:mod:`repro.analysis.lint`) enforces the simulator's
determinism / DES-discipline / simulated-concurrency contracts on every
file. A handful of places legitimately step outside those contracts —
the :class:`~repro.sim.rng.RngRegistry` has to construct the one
``random.Random`` everyone else is banned from, and the experiment
harness times *itself* with the wall clock. Those sites carry an
explicit, greppable exemption rather than a rule carve-out, so every
escape hatch is visible in the diff that introduces it.

Three pragma forms, narrowest first:

``# simlint: disable=SIM101`` (trailing comment)
    Suppress the listed rule ids on this line only. Multiple ids are
    comma-separated; ``all`` suppresses every rule on the line. When the
    pragma is a *standalone* comment (no code on its line), it binds to
    the next line that holds code — so a pragma placed above a statement
    suppresses that statement instead of silently suppressing nothing. A
    standalone pragma with no following code is reported as malformed.

``@lint_exempt("SIM101", reason="...")``
    Suppress the listed rule ids for the whole decorated function. The
    ``reason`` keyword is mandatory — the linter reports a ``LINT000``
    finding for an exemption without one.

``# simlint: disable-file=SIM102`` (a comment line anywhere in the file)
    Suppress the listed rule ids for the whole file.

Pragmas naming an unknown rule id are themselves reported (``LINT000``)
so a typo cannot silently disable nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set, Tuple, TypeVar

#: Matches both the line form (``disable=``) and file form (``disable-file=``).
PRAGMA_RE = re.compile(
    r"#\s*simlint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<ids>[A-Za-z0-9_,\- ]+)"
)

#: Wildcard accepted in a pragma id list: suppress every rule.
ALL_RULES_WILDCARD = "all"

#: Shape of a syntactically valid rule id (e.g. ``SIM101``, ``RACE301``).
RULE_ID_RE = re.compile(r"^[A-Z]+[0-9]+$")

#: Attribute set on functions by :func:`lint_exempt`; the linter also
#: recognises the decorator syntactically, so exempt functions do not
#: need to be importable to be linted.
EXEMPT_ATTR = "__simlint_exempt__"

_F = TypeVar("_F", bound=Callable[..., object])


def lint_exempt(*rule_ids: str, reason: str) -> Callable[[_F], _F]:
    """Mark a function exempt from the given simlint rules.

    >>> @lint_exempt("SIM101", reason="harness self-timing")
    ... def elapsed(start: float) -> float:
    ...     import time
    ...     return time.time() - start
    >>> elapsed.__simlint_exempt__
    ('SIM101',)
    """
    if not rule_ids:
        raise ValueError("lint_exempt needs at least one rule id")
    for rule_id in rule_ids:
        if not RULE_ID_RE.match(rule_id):
            raise ValueError(f"malformed simlint rule id {rule_id!r}")
    if not reason.strip():
        raise ValueError("lint_exempt requires a non-empty reason")

    def decorate(fn: _F) -> _F:
        existing: Tuple[str, ...] = tuple(getattr(fn, EXEMPT_ATTR, ()))
        setattr(fn, EXEMPT_ATTR, existing + tuple(rule_ids))
        return fn

    return decorate


@dataclass
class FilePragmas:
    """Comment pragmas extracted from one source file."""

    #: Rule ids disabled for the whole file (may contain the wildcard).
    file_rules: Set[str] = field(default_factory=set)
    #: Rule ids disabled per line number (1-based; may contain the wildcard).
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)
    #: ``(line, message)`` for pragmas the parser could not make sense of.
    malformed: List[Tuple[int, str]] = field(default_factory=list)

    def suppresses(self, rule_id: str, line: int) -> bool:
        """True when a comment pragma silences ``rule_id`` at ``line``."""
        for rules in (self.file_rules, self.line_rules.get(line, set())):
            if rule_id in rules or ALL_RULES_WILDCARD in rules:
                return True
        return False


#: Token types that do not count as code on a line (for pragma binding).
_NON_CODE_TOKENS = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
)


def _comments(source: str) -> List[Tuple[int, str]]:
    """``(line, comment text)`` for every real comment token.

    Tokenize-based so that ``simlint:`` appearing inside a string or a
    docstring is never mistaken for a pragma. Files that fail to
    tokenize yield no comments — they fail to parse too, and the linter
    reports that separately (LINT001).
    """
    found: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                found.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return found


def _code_lines(source: str) -> Set[int]:
    """Line numbers (1-based) on which actual code starts."""
    lines: Set[int] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type not in _NON_CODE_TOKENS:
                lines.add(token.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return lines


def _binding_line(lineno: int, code_lines: Set[int]) -> "int | None":
    """The line a ``disable=`` pragma at ``lineno`` applies to.

    Trailing pragmas (code on the same line) bind to that line; a
    standalone comment pragma binds to the next code line. None when no
    code follows — the pragma suppresses nothing and is malformed.
    """
    if lineno in code_lines:
        return lineno
    following = [line for line in code_lines if line > lineno]
    return min(following) if following else None


def parse_pragmas(source: str) -> FilePragmas:
    """Extract ``# simlint:`` comment pragmas from source text.

    Ids that do not look like rule ids are recorded as malformed instead
    of being silently dropped.
    """
    pragmas = FilePragmas()
    code_lines = _code_lines(source)
    for lineno, comment in _comments(source):
        match = PRAGMA_RE.search(comment)
        if match is None:
            if "simlint:" in comment:
                pragmas.malformed.append(
                    (lineno, f"unparseable simlint pragma: {comment.strip()!r}")
                )
            continue
        ids = {part.strip() for part in match.group("ids").split(",") if part.strip()}
        good: Set[str] = set()
        for rule_id in ids:
            if rule_id == ALL_RULES_WILDCARD or RULE_ID_RE.match(rule_id):
                good.add(rule_id)
            else:
                pragmas.malformed.append(
                    (lineno, f"malformed rule id {rule_id!r} in simlint pragma")
                )
        if not good:
            continue
        if match.group("kind") == "disable-file":
            pragmas.file_rules |= good
        else:
            target = _binding_line(lineno, code_lines)
            if target is None:
                pragmas.malformed.append(
                    (
                        lineno,
                        "standalone simlint pragma binds to no statement "
                        "(no code follows it)",
                    )
                )
                continue
            pragmas.line_rules.setdefault(target, set()).update(good)
    return pragmas
