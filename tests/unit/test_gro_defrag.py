"""Unit tests for GRO coalescing and IP defragmentation."""

from repro.kernel.defrag import DefragEngine
from repro.kernel.gro import GroCluster, GroEngine
from repro.kernel.skb import PROTO_TCP, PROTO_UDP, FlowKey, Skb
from repro.sim.engine import Simulator


def make_segments(flow, msg_id, count, size=1000, msg_size=None):
    return [
        Skb(
            flow,
            size=size,
            msg_id=msg_id,
            msg_size=msg_size or size * count,
            frag_index=index,
            frag_count=count,
            seq=index,
        )
        for index in range(count)
    ]


class TestGro:
    def test_udp_passes_through(self):
        gro = GroEngine()
        skb = Skb(FlowKey.make(1, 2, PROTO_UDP), size=100)
        assert gro.feed(skb) is skb

    def test_single_segment_tcp_passes_through(self):
        gro = GroEngine()
        skb = Skb(FlowKey.make(1, 2, PROTO_TCP), size=100)
        assert gro.feed(skb) is skb

    def test_merges_full_message(self):
        flow = FlowKey.make(1, 2, PROTO_TCP)
        gro = GroEngine()
        segs = make_segments(flow, msg_id=0, count=3)
        assert gro.feed(segs[0]) is None
        assert gro.feed(segs[1]) is None
        merged = gro.feed(segs[2])
        assert merged is segs[0]
        assert merged.size == 3000
        assert merged.segs == 3
        assert merged.frag_count == 1  # now a complete message
        assert gro.held_count == 0

    def test_flush_releases_partials(self):
        flow = FlowKey.make(1, 2, PROTO_TCP)
        gro = GroEngine()
        segs = make_segments(flow, msg_id=0, count=3)
        gro.feed(segs[0])
        gro.feed(segs[1])
        released = gro.flush()
        assert len(released) == 1
        assert released[0].size == 2000
        assert gro.held_count == 0

    def test_interleaved_flows_do_not_merge(self):
        flow_a = FlowKey.make(1, 2, PROTO_TCP, sport=1)
        flow_b = FlowKey.make(1, 2, PROTO_TCP, sport=2)
        gro = GroEngine()
        a = make_segments(flow_a, 0, 2)
        b = make_segments(flow_b, 0, 2)
        assert gro.feed(a[0]) is None
        assert gro.feed(b[0]) is None
        merged_a = gro.feed(a[1])
        merged_b = gro.feed(b[1])
        assert merged_a.flow is flow_a
        assert merged_b.flow is flow_b
        assert merged_a.size == merged_b.size == 2000

    def test_cluster_is_per_cpu(self):
        flow = FlowKey.make(1, 2, PROTO_TCP)
        cluster = GroCluster(num_cpus=2)
        segs = make_segments(flow, 0, 2)
        assert cluster.feed(segs[0], 0) is None
        # A different CPU's engine knows nothing about the held segment.
        assert cluster.engines[1].held_count == 0
        assert cluster.feed(segs[1], 0) is not None
        assert cluster.merged_packets == 1


class TestDefrag:
    def test_unfragmented_passes_through(self):
        sim = Simulator()
        defrag = DefragEngine(sim)
        skb = Skb(FlowKey.make(1, 2), size=100)
        assert defrag.feed(skb) is skb

    def test_reassembles_in_order(self):
        sim = Simulator()
        defrag = DefragEngine(sim)
        flow = FlowKey.make(1, 2)
        frags = make_segments(flow, msg_id=7, count=4, size=1400)
        results = [defrag.feed(f) for f in frags]
        assert results[:3] == [None, None, None]
        datagram = results[3]
        assert datagram.size == 5600
        assert datagram.segs == 4
        assert datagram.frag_count == 1
        assert defrag.reassembled == 1
        assert defrag.pending == 0

    def test_reassembles_out_of_order(self):
        sim = Simulator()
        defrag = DefragEngine(sim)
        flow = FlowKey.make(1, 2)
        frags = make_segments(flow, msg_id=1, count=3)
        assert defrag.feed(frags[2]) is None
        assert defrag.feed(frags[0]) is None
        assert defrag.feed(frags[1]) is not None

    def test_incomplete_message_times_out(self):
        sim = Simulator()
        defrag = DefragEngine(sim, timeout_us=100.0)
        flow = FlowKey.make(1, 2)
        frags = make_segments(flow, msg_id=0, count=3)
        defrag.feed(frags[0])  # rest never arrive
        assert defrag.pending == 1
        sim.run(until=500.0)
        assert defrag.pending == 0
        assert defrag.defrag_timeouts == 1

    def test_concurrent_messages_kept_separate(self):
        sim = Simulator()
        defrag = DefragEngine(sim)
        flow = FlowKey.make(1, 2)
        a = make_segments(flow, msg_id=0, count=2)
        b = make_segments(flow, msg_id=1, count=2)
        assert defrag.feed(a[0]) is None
        assert defrag.feed(b[0]) is None
        assert defrag.feed(b[1]).msg_id == 1
        assert defrag.feed(a[1]).msg_id == 0
