"""Unit tests for SimContext: ownership, fan-out, and isolation."""

from repro.hw.topology import Machine
from repro.kernel.stack import NetworkStack
from repro.overlay.host import Host
from repro.sim import SimContext, Simulator
from repro.kernel.stack import StackConfig
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import CalendarScheduler


class _Monitor:
    """Minimal monitor double: records on_event callbacks."""

    def __init__(self):
        self.events = []

    def on_event(self, now, time):
        self.events.append((now, time))


def test_context_builds_own_sim_and_rng():
    ctx = SimContext(seed=7, name="demo")
    assert ctx.sim.now == 0.0
    assert ctx.stream("a") is ctx.stream("a")
    assert ctx.monitor is None and ctx.tracer is None


def test_context_accepts_existing_components():
    sim = Simulator()
    rng = RngRegistry(3)
    ctx = SimContext(sim=sim, rng=rng)
    assert ctx.sim is sim
    assert ctx.rng is rng


def test_context_scheduler_selection():
    ctx = SimContext(scheduler="calendar")
    assert isinstance(ctx.sim.scheduler, CalendarScheduler)


def test_two_contexts_are_isolated():
    a = SimContext(seed=1, name="a")
    b = SimContext(seed=1, name="b")
    a.sim.post(10.0, lambda: None)
    a.sim.run()
    assert a.sim.now == 10.0
    assert b.sim.now == 0.0
    assert b.sim.pending() == 0
    # Identical seeds give identical (but independent) streams.
    assert a.stream("x").random() == b.stream("x").random()


def test_monitor_fanout_to_registered_sinks():
    ctx = SimContext()

    class Sink:
        monitor = None

    sink = Sink()
    ctx.register_monitored(sink)
    monitor = _Monitor()
    ctx.attach_monitor(monitor)
    assert sink.monitor is monitor
    assert ctx.sim.monitor is monitor  # the sim itself is always a sink
    # Registering after attach picks the monitor up immediately.
    late = Sink()
    ctx.register_monitored(late)
    assert late.monitor is monitor
    ctx.detach_monitor()
    assert sink.monitor is None and late.monitor is None and ctx.sim.monitor is None


def test_monitor_reaches_event_loop():
    ctx = SimContext()
    monitor = _Monitor()
    ctx.attach_monitor(monitor)
    ctx.sim.post(5.0, lambda: None)
    ctx.sim.run()
    assert monitor.events == [(0.0, 5.0)]


def test_machine_auto_creates_context():
    sim = Simulator()
    machine = Machine(sim, num_cpus=2, name="m")
    assert machine.ctx.sim is sim
    assert machine.sim is sim
    # The machine's interrupt controller and CPUs are monitored sinks.
    monitor = _Monitor()
    machine.ctx.attach_monitor(monitor)
    assert machine.interrupts.monitor is monitor
    assert all(cpu.monitor is monitor for cpu in machine.cpus)


def test_machine_accepts_shared_context():
    ctx = SimContext(seed=5, name="shared")
    machine = Machine(ctx.sim, num_cpus=2, name="m", ctx=ctx)
    assert machine.ctx is ctx
    assert machine.rng is ctx.rng


def test_stack_accepts_context_or_legacy_sim():
    ctx = SimContext(name="ctx-form")
    machine = Machine(ctx.sim, num_cpus=2, ctx=ctx)
    stack = NetworkStack(ctx, machine, StackConfig())
    assert stack.ctx is ctx
    assert stack.sim is ctx.sim
    # The stack published its cost model into the context.
    assert ctx.costs is stack.costs

    legacy_sim = Simulator()
    legacy_machine = Machine(legacy_sim, num_cpus=2)
    legacy = NetworkStack(legacy_sim, legacy_machine, StackConfig())
    assert legacy.ctx is legacy_machine.ctx
    assert legacy.sim is legacy_sim


def test_stack_monitor_property_round_trips_through_context():
    ctx = SimContext()
    machine = Machine(ctx.sim, num_cpus=2, ctx=ctx)
    stack = NetworkStack(ctx, machine, StackConfig())
    monitor = _Monitor()
    stack.monitor = monitor
    assert ctx.monitor is monitor
    assert stack.softnet.monitor is monitor
    assert stack.defrag.monitor is monitor
    stack.monitor = None
    assert ctx.monitor is None
    assert stack.softnet.monitor is None


def test_stack_tracer_property_uses_context():
    ctx = SimContext()
    machine = Machine(ctx.sim, num_cpus=2, ctx=ctx)
    stack = NetworkStack(ctx, machine, StackConfig())
    sentinel = object()
    stack.tracer = sentinel
    assert ctx.tracer is sentinel
    assert stack.tracer is sentinel
    stack.tracer = None
    assert ctx.tracer is None


def test_two_overlay_hosts_coexist_in_one_process():
    sim_a = Simulator()
    sim_b = Simulator()
    host_a = Host(sim_a, name="a", seed=1)
    host_b = Host(sim_b, name="b", seed=2)
    assert host_a.ctx is not host_b.ctx
    assert host_a.ctx.sim is sim_a and host_b.ctx.sim is sim_b
    # Attaching a monitor to one world leaves the other untouched.
    monitor = _Monitor()
    host_a.ctx.attach_monitor(monitor)
    assert host_b.ctx.monitor is None
    assert host_b.stack.softnet.monitor is None
