"""Findings-baseline ratchet for ``repro lint`` / ``repro flow``.

Mirrors the mypy overrides ratchet (``tools/mypy_ratchet.txt``): the
checked-in baseline freezes the inventory of *suppressed* findings —
every pragma/exemption that actually silences something today. The
ratchet then only turns one way:

* a **new** suppressed finding (a fresh ``# simlint: disable=`` that
  hides a real hit) fails CI until the baseline is deliberately
  regenerated and reviewed;
* a **stale** baseline entry (the suppression was removed or the code
  fixed) also fails, forcing the baseline to shrink in the same commit.

Unsuppressed findings are not the baseline's business — they already
fail the run directly. The file format is one entry per line::

    path::RULE::count

with ``#`` comments and blank lines ignored; paths use forward slashes
relative to the repo root. Regenerate with
``repro lint --write-baseline`` / ``repro flow --write-baseline``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.analysis.lint.report import LintResult

#: (normalized path, rule id) -> suppressed-finding count.
Inventory = Dict[Tuple[str, str], int]

_HEADER = (
    "# Suppressed-findings baseline (see repro.analysis.baseline).\n"
    "# One line per `path::RULE::count`; regenerate with --write-baseline.\n"
    "# New suppressions fail CI; removed ones must shrink this file.\n"
)


def normalize_path(path: str) -> str:
    """Canonical baseline key: forward slashes, relative to the cwd.

    Runs are invoked from the repo root (CI, pre-commit, the drift
    test), but callers may hand the runner absolute paths — both must
    produce the same baseline key or the ratchet would report phantom
    drift depending on how the path was spelled.
    """
    if os.path.isabs(path):
        relative = os.path.relpath(path, os.getcwd())
        if not relative.startswith(".."):
            path = relative
    normalized = path.replace(os.sep, "/").replace("\\", "/")
    while normalized.startswith("./"):
        normalized = normalized[2:]
    return normalized


def inventory_of(result: LintResult) -> Inventory:
    """The suppressed-finding inventory of one lint/flow run."""
    inventory: Inventory = {}
    for finding in result.suppressed:
        key = (normalize_path(finding.path), finding.rule)
        inventory[key] = inventory.get(key, 0) + 1
    return inventory


def render_baseline(result: LintResult) -> str:
    lines = [_HEADER.rstrip("\n")]
    for (path, rule), count in sorted(inventory_of(result).items()):
        lines.append(f"{path}::{rule}::{count}")
    return "\n".join(lines) + "\n"


def parse_baseline(text: str, origin: str = "<baseline>") -> Inventory:
    inventory: Inventory = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("::")
        if len(parts) != 3 or not parts[2].isdigit():
            raise ValueError(
                f"{origin}:{number}: malformed baseline entry {line!r} "
                "(expected path::RULE::count)"
            )
        key = (normalize_path(parts[0]), parts[1])
        inventory[key] = inventory.get(key, 0) + int(parts[2])
    return inventory


def check_baseline(result: LintResult, baseline: Inventory) -> List[str]:
    """Diff the run's suppression inventory against the frozen baseline.

    Returns human-readable violations; empty means the ratchet holds.
    """
    current = inventory_of(result)
    errors: List[str] = []
    for key in sorted(set(current) | set(baseline)):
        path, rule = key
        have = current.get(key, 0)
        frozen = baseline.get(key, 0)
        if have > frozen:
            errors.append(
                f"{path}: {have - frozen} new suppressed {rule} finding"
                f"{'s' if have - frozen != 1 else ''} not in the baseline "
                "(fix the code or regenerate the baseline deliberately)"
            )
        elif have < frozen:
            errors.append(
                f"{path}: baseline expects {frozen} suppressed {rule} "
                f"finding{'s' if frozen != 1 else ''} but only {have} remain "
                "— shrink the baseline (run --write-baseline)"
            )
    return errors


def load_baseline_file(path: str) -> Inventory:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_baseline(handle.read(), origin=path)
