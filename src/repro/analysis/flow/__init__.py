"""simflow: interprocedural dataflow & typestate analysis.

A CFG + worklist-fixpoint engine (:mod:`cfg`, :mod:`engine`) carrying
three analyses over the packet-stage pipeline:

* skb typestate against the derived stage order (:mod:`rules_skb`,
  :mod:`stagespec`);
* time-unit / wall-clock taint (:mod:`rules_time`);
* static↔dynamic stage-edge cross-check against the golden traces
  (:mod:`crosscheck`).

Run it as ``repro flow``; it shares reporters, pragmas, and the rule-id
namespace with ``repro lint``.

Exports resolve lazily (PEP 562): :mod:`repro.analysis.lint.runner`
imports :mod:`repro.analysis.flow.registry` for the shared rule-id
namespace, and an eager import of :mod:`flow.runner` here would close
that loop into a circular import.
"""

from typing import TYPE_CHECKING, Tuple

from repro.analysis.flow.registry import FLOW_RULE_IDS

if TYPE_CHECKING:  # pragma: no cover - static-analysis only
    from repro.analysis.flow.cfg import Cfg, build_cfg
    from repro.analysis.flow.crosscheck import CrossCheckResult, cross_check
    from repro.analysis.flow.engine import (
        DataflowAnalysis,
        FixpointError,
        fixpoint,
    )
    from repro.analysis.flow.runner import (
        FLOW_RULES,
        flow_paths,
        flow_rule_by_id,
    )
    from repro.analysis.flow.stagespec import StageOrderSpec, stage_order_spec

_LAZY = {
    "Cfg": ("repro.analysis.flow.cfg", "Cfg"),
    "build_cfg": ("repro.analysis.flow.cfg", "build_cfg"),
    "CrossCheckResult": ("repro.analysis.flow.crosscheck", "CrossCheckResult"),
    "cross_check": ("repro.analysis.flow.crosscheck", "cross_check"),
    "DataflowAnalysis": ("repro.analysis.flow.engine", "DataflowAnalysis"),
    "FixpointError": ("repro.analysis.flow.engine", "FixpointError"),
    "fixpoint": ("repro.analysis.flow.engine", "fixpoint"),
    "FLOW_RULES": ("repro.analysis.flow.runner", "FLOW_RULES"),
    "flow_paths": ("repro.analysis.flow.runner", "flow_paths"),
    "flow_rule_by_id": ("repro.analysis.flow.runner", "flow_rule_by_id"),
    "StageOrderSpec": ("repro.analysis.flow.stagespec", "StageOrderSpec"),
    "stage_order_spec": ("repro.analysis.flow.stagespec", "stage_order_spec"),
}

__all__ = ["FLOW_RULE_IDS", *sorted(_LAZY)]


def __getattr__(name: str) -> object:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
