"""Tests for the runtime ownership sanitizer (``REPRO_SANITIZE=1``).

Three layers, mirroring the module's contract:

* ledger semantics — acquire/release bookkeeping, double-acquire and
  untracked-release errors, leak-vs-pending classification;
* instrumentation — the engine, schedulers, flow table and cluster
  record path acquire and release at the sanctioned sites, including
  the lazy-cancellation discards and the raising-callback path;
* non-interference — a sanitized golden run produces **byte-identical**
  trace documents (the ledger never schedules, never reads the clock),
  and every site it reports is in the static catalog ``repro san``
  scans for.
"""

import os

import pytest

from repro.analysis.san.sancheck import san_cross_check
from repro.kernel.flowcache import FlowTable
from repro.overlay.cluster import run_cluster, udp_ring_spec
from repro.sim.engine import Simulator
from repro.validate.golden import (
    CLUSTER_GOLDEN_SCENARIOS,
    GOLDEN_SCENARIOS,
    run_cluster_golden_scenario,
    run_golden_scenario,
    trace_doc_to_json,
)
from repro.validate.harness import sanitize_outcome
from repro.validate.sanitize import (
    OwnershipLedger,
    current_ledger,
    reset_ledger,
    sanitize_enabled,
    sanitizing,
)


class TestLedgerSemantics:
    def test_acquire_release_balances(self):
        ledger = OwnershipLedger()
        ledger.acquire("event", 1, "engine.post")
        assert ledger.live_count("event") == 1
        ledger.release("event", 1, "engine.fired")
        assert ledger.live_count() == 0
        report = ledger.report()
        assert report.ok
        assert report.acquired == {"engine.post": 1}
        assert report.released == {"engine.fired": 1}
        assert report.sites() == {"engine.post", "engine.fired"}

    def test_double_acquire_is_an_error(self):
        ledger = OwnershipLedger()
        ledger.acquire("event", 1, "engine.post")
        ledger.acquire("event", 1, "engine.schedule")
        report = ledger.report()
        assert not report.ok
        assert len(report.errors) == 1
        assert "two owners" in report.errors[0]
        assert "engine.post" in report.errors[0]

    def test_untracked_release_is_an_error(self):
        ledger = OwnershipLedger()
        ledger.release("event", 99, "heap.discard")
        report = ledger.report()
        assert not report.ok
        assert "untracked" in report.errors[0]

    def test_unqueued_live_event_is_a_leak(self):
        class FakeEvent:
            queued = False

        ledger = OwnershipLedger()
        ledger.acquire("event", 1, "engine.post", FakeEvent())
        report = ledger.report()
        assert not report.ok
        assert [
            (leak.kind, leak.site, leak.count) for leak in report.leaks
        ] == [("event", "engine.post", 1)]
        assert "leaked" in report.leaks[0].render()

    def test_queued_events_and_entries_are_pending(self):
        class FakeEvent:
            queued = True

        ledger = OwnershipLedger()
        ledger.acquire("event", 1, "engine.schedule", FakeEvent())
        ledger.acquire("flow_entry", (1, (2, 3)), "flowtable.insert")
        ledger.acquire("record", (0, 0), "outbox.emit")
        report = ledger.report()
        assert report.ok
        assert report.pending == {"event": 1, "flow_entry": 1, "record": 1}


class TestEnvPlumbing:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        reset_ledger()
        assert not sanitize_enabled()
        assert current_ledger() is None
        assert Simulator()._san is None
        assert FlowTable(capacity=4)._san is None
        assert sanitize_outcome() is None

    def test_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled()

    def test_sanitizing_restores_previous_state(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        reset_ledger()
        with sanitizing() as ledger:
            assert sanitize_enabled()
            assert current_ledger() is ledger
        assert not sanitize_enabled()
        assert current_ledger() is None


class TestEngineInstrumentation:
    def test_fired_events_balance(self):
        with sanitizing() as ledger:
            sim = Simulator()
            hits = []
            sim.post(1.0, hits.append, 1)
            sim.schedule(2.0, hits.append, 2)
            sim.run()
            report = ledger.report()
        assert hits == [1, 2]
        assert report.ok, report.render()
        assert report.acquired == {"engine.post": 1, "engine.schedule": 1}
        assert report.released == {"engine.fired": 2}

    def test_stolen_event_is_reported_as_leak(self):
        # Popping the scheduler by hand bypasses the engine's fire path:
        # nothing will ever release the event — the exact bug shape the
        # sanitizer exists to localize, tagged with its acquire site.
        with sanitizing() as ledger:
            sim = Simulator()
            sim.post(1.0, lambda: None)
            sim.scheduler.pop()
            report = ledger.report()
        assert not report.ok
        assert [
            (leak.kind, leak.site, leak.count) for leak in report.leaks
        ] == [("event", "engine.post", 1)]

    def test_raising_callback_still_releases(self):
        # The fire path releases and recycles in a finally block: a
        # callback that raises must not leak its pooled event.
        def boom():
            raise RuntimeError("callback exploded")

        with sanitizing() as ledger:
            sim = Simulator()
            sim.post(1.0, boom)
            with pytest.raises(RuntimeError, match="callback exploded"):
                sim.run()
            assert len(sim._freelist) == 1
            report = ledger.report()
        assert report.ok, report.render()
        assert report.released == {"engine.fired": 1}

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_cancelled_event_released_at_discard(self, scheduler):
        with sanitizing() as ledger:
            sim = Simulator(scheduler)
            keep = []
            victim = sim.schedule(1.0, keep.append, "gone")
            sim.schedule(2.0, keep.append, "kept")
            sim.cancel(victim)
            sim.run()
            report = ledger.report()
        assert keep == ["kept"]
        assert report.ok, report.render()
        discards = {
            site: count
            for site, count in report.released.items()
            if site != "engine.fired"
        }
        assert sum(discards.values()) == 1
        assert all(site.startswith(f"{scheduler}.") for site in discards)


class TestFlowTableInstrumentation:
    def test_insert_evict_invalidate_lifecycle(self):
        with sanitizing() as ledger:
            table = FlowTable(capacity=1)
            first = (1, 2, 17, 1000, 2000)
            second = (2, 3, 17, 1000, 2000)
            table.insert(first)
            assert ledger.live_count("flow_entry") == 1
            table.insert(second)  # capacity 1: evicts first
            assert ledger.live_count("flow_entry") == 1
            assert table.invalidate(second)
            assert ledger.live_count("flow_entry") == 0
            report = ledger.report()
        assert report.ok, report.render()
        assert report.acquired == {"flowtable.insert": 2}
        assert report.released == {
            "flowtable.evict": 1,
            "flowtable.invalidate": 1,
        }

    def test_refreshing_insert_does_not_double_acquire(self):
        with sanitizing() as ledger:
            table = FlowTable(capacity=4)
            key = (1, 2, 17, 1000, 2000)
            table.insert(key)
            table.insert(key)  # LRU refresh of a live entry, not a new one
            table.invalidate_all()
            report = ledger.report()
        assert report.ok, report.render()
        assert report.acquired == {"flowtable.insert": 1}
        assert report.released == {"flowtable.invalidate_all": 1}

    def test_invalidate_ip_releases_per_key(self):
        with sanitizing() as ledger:
            table = FlowTable(capacity=8)
            table.insert((7, 2, 17, 1000, 2000))
            table.insert((3, 7, 17, 1000, 2000))
            table.insert((4, 5, 17, 1000, 2000))
            assert table.invalidate_ip(7) == 2
            report = ledger.report()
        assert report.ok, report.render()
        assert report.released == {"flowtable.invalidate_ip": 2}
        assert report.pending == {"flow_entry": 1}


class TestClusterRecordInstrumentation:
    def test_record_path_balances_across_shard_counts(self):
        spec = udp_ring_spec(
            num_hosts=3,
            message_size=256,
            rate_pps=20_000.0,
            warmup_us=200.0,
            duration_us=1_000.0,
            flowcache=True,
            flowcache_capacity=1,
            churn=((600.0, 1),),
        )
        for shards in (1, 2):
            with sanitizing() as ledger:
                run_cluster(spec, shards=shards)
                report = ledger.report()
            assert report.ok, (shards, report.render())
            emitted = report.acquired.get("outbox.emit", 0)
            injected = report.released.get("world.inject", 0)
            pending = report.pending.get("record", 0)
            assert emitted > 0
            assert emitted == injected + pending


class TestGoldenByteIdentity:
    """The sanitizer must be a pure observer: traces are byte-identical
    with it on, and the run it watched reports no leaks."""

    @pytest.mark.parametrize(
        "spec",
        [GOLDEN_SCENARIOS[0], GOLDEN_SCENARIOS[3]],
        ids=lambda spec: spec["name"],
    )
    def test_host_golden_identical_and_leak_free(self, spec):
        plain = trace_doc_to_json(run_golden_scenario(spec))
        with sanitizing() as ledger:
            sanitized = trace_doc_to_json(run_golden_scenario(spec))
            report = ledger.report()
        assert sanitized == plain
        assert report.ok, report.render()

    def test_cluster_golden_identical_and_leak_free(self):
        spec = CLUSTER_GOLDEN_SCENARIOS[3]  # oncache + churn: all kinds
        plain = trace_doc_to_json(run_cluster_golden_scenario(spec))
        with sanitizing() as ledger:
            sanitized = trace_doc_to_json(run_cluster_golden_scenario(spec))
            report = ledger.report()
        assert sanitized == plain
        assert report.ok, report.render()
        # The churn scenario exercises all three object kinds.
        assert report.acquired.get("flowtable.insert", 0) > 0
        assert report.acquired.get("outbox.emit", 0) > 0

    def test_golden_sites_are_in_the_static_catalog(self):
        spec = CLUSTER_GOLDEN_SCENARIOS[3]
        with sanitizing() as ledger:
            run_cluster_golden_scenario(spec)
            report = ledger.report()
        check = san_cross_check(dynamic_sites=report.sites())
        assert check.ok, "\n".join(check.render())


class TestHarnessOutcome:
    def test_outcome_row_when_sanitizing(self):
        with sanitizing():
            sim = Simulator()
            sim.post(1.0, lambda: None)
            sim.run()
            outcome = sanitize_outcome()
        assert outcome is not None
        assert outcome.suite == "sanitize"
        assert outcome.ok
        assert any("balanced" in line for line in outcome.details)

    def test_outcome_reports_leak(self):
        with sanitizing():
            sim = Simulator()
            sim.post(1.0, lambda: None)
            sim.scheduler.pop()
            outcome = sanitize_outcome()
        assert outcome is not None
        assert not outcome.ok
        assert any("leaked" in line for line in outcome.details)

    def test_no_row_when_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        reset_ledger()
        assert sanitize_outcome() is None
