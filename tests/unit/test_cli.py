"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_stress_defaults(self):
        args = build_parser().parse_args(["stress"])
        assert args.mode == "overlay"
        assert args.size == 16
        assert not args.falcon

    def test_fixed_requires_rate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fixed"])

    def test_falcon_flags(self):
        args = build_parser().parse_args(
            ["stress", "--falcon", "--falcon-cpus", "2,3", "--policy", "static"]
        )
        assert args.falcon
        assert args.falcon_cpus == "2,3"
        assert args.policy == "static"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_stress_runs(self, capsys):
        code = main(
            ["stress", "--duration-ms", "4", "--warmup-ms", "2", "--clients", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "message rate" in out
        assert "busy cores" in out

    def test_fixed_runs_with_falcon(self, capsys):
        code = main(
            [
                "fixed", "--rate", "50000", "--falcon",
                "--duration-ms", "4", "--warmup-ms", "2",
            ]
        )
        assert code == 0
        assert "overlay+falcon" in capsys.readouterr().out

    def test_tcp_runs(self, capsys):
        code = main(
            ["tcp", "--size", "4096", "--duration-ms", "4", "--warmup-ms", "2"]
        )
        assert code == 0
        assert "Gbps" in capsys.readouterr().out

    def test_latency_compares_modes(self, capsys):
        code = main(
            ["latency", "--rate", "50000", "--duration-ms", "4", "--warmup-ms", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "host" in out and "overlay+falcon" in out

    def test_figures_quick_subset(self, tmp_path, capsys):
        code = main(
            [
                "figures", "--quick", "--out", str(tmp_path),
                "--only", "fig04_interrupts",
            ]
        )
        assert code == 0
        assert (tmp_path / "fig04_interrupts.txt").exists()
