"""Time-unit taint analysis (TIME501, TIME502).

The simulator's clock is microseconds of *simulated* time
(:mod:`repro.sim.clock` defines the ``NS``/``US``/``MS``/``SEC``
conversion factors; every cost in :mod:`repro.kernel.costs` is µs), but
Python hands out wall-clock seconds from ``time.time()`` with the same
``float`` type. This analysis gives the floats back their units:

* a **unit tag** (``ns`` / ``us`` / ``ms`` / ``s``) inferred from the
  annotation convention (``_ns`` / ``_us`` / ``_ms`` / ``_sec`` name
  suffixes — the same convention ``sim/clock.py`` and
  ``kernel/costs.py`` already follow), from the clock conversion
  helpers (``us_to_seconds`` / ``seconds_to_us``), and from the
  simulator's ``.now`` (µs by definition);
* an orthogonal **wall-clock taint** seeded by ``time.time()`` /
  ``time.monotonic()`` / ``time.perf_counter()``.

Rules:

``TIME501``  ``+``/``-`` between values whose inferred units are
             definitely different (µs + ns, seconds - µs, …);
``TIME502``  a wall-clock-tainted value flows into the DES scheduler
             (``schedule`` / ``schedule_at`` / ``submit`` /
             ``submit_multi``) — wall time must never steer simulated
             time.

Multiplication and division *clear* unit tags (multiplying by a
conversion factor such as ``clock.MS`` legitimately changes the unit)
but propagate wall taint. TIME501 only fires when **both** operands have
known, non-overlapping unit sets — a must-violation, so untagged values
never produce noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.flow.cfg import Cfg, build_cfg
from repro.analysis.flow.engine import fixpoint, walk_block
from repro.analysis.lint.core import FileContext, Finding, Project, Rule

#: Abstract state: variable name -> set of unit/taint tags.
State = Dict[str, FrozenSet[str]]

WALL = "wall"
EMPTY: FrozenSet[str] = frozenset()

#: Name-suffix → unit tag (checked longest-first).
_SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("_nsec", "ns"),
    ("_usec", "us"),
    ("_msec", "ms"),
    ("_seconds", "s"),
    ("_secs", "s"),
    ("_sec", "s"),
    ("_ns", "ns"),
    ("_us", "us"),
    ("_ms", "ms"),
)

#: Calls that return wall-clock seconds.
_WALL_SOURCES = ("time", "monotonic", "perf_counter", "process_time")

#: Clock conversion helpers (from repro.sim.clock) and their result unit.
_CONVERSIONS = {"us_to_seconds": "s", "seconds_to_us": "us"}

#: Unit-preserving builtins: result carries the union of argument units.
_TRANSPARENT_CALLS = ("min", "max", "abs", "round", "sum", "float", "int")

#: Scheduler entry points that must never see wall time (TIME502).
_SCHEDULER_CALLS = (
    "schedule",
    "schedule_at",
    "post",
    "post_at",
    "post_batch",
    "submit",
    "submit_multi",
)


def suffix_unit(name: str) -> Optional[str]:
    """Infer a unit tag from the ``_us``-style naming convention."""
    if name.isupper():
        return None  # NS/US/MS/SEC are conversion *factors*, not times
    lowered = name.lower()
    for suffix, unit in _SUFFIX_UNITS:
        if lowered.endswith(suffix):
            return unit
    return None


@dataclass(frozen=True)
class _RawFinding:
    path: str
    line: int
    col: int
    rule: str
    message: str


class _UnitAnalysis:
    """Forward taint/unit propagation over one function's CFG."""

    def __init__(
        self,
        ctx: FileContext,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        report: Optional[List[_RawFinding]] = None,
    ) -> None:
        self.ctx = ctx
        self.func = func
        self.report = report

    # -- engine contract ------------------------------------------------
    def initial(self, cfg: Cfg) -> State:
        state: State = {}
        args = cfg.func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            unit = suffix_unit(arg.arg)
            if unit is not None:
                state[arg.arg] = frozenset((unit,))
        return state

    def join(self, a: State, b: State) -> State:
        if a == b:
            return a
        out = dict(a)
        for key, value in b.items():
            existing = out.get(key)
            out[key] = value if existing is None else existing | value
        return out

    def transfer(self, stmt: ast.stmt, state: State) -> State:
        state = dict(state)
        if isinstance(stmt, ast.Assign):
            tags = self._eval(stmt.value, state)
            for target in stmt.targets:
                self._bind(target, tags, state)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value, state), state)
        elif isinstance(stmt, ast.AugAssign):
            target_tags = self._target_tags(stmt.target, state)
            value_tags = self._eval(stmt.value, state)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                self._check_mix(stmt, target_tags, value_tags)
                merged = target_tags | value_tags
            else:
                merged = (target_tags | value_tags) & frozenset((WALL,))
            self._bind(stmt.target, merged, state)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, state)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value, state)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, state)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, state)
            self._bind(stmt.target, EMPTY, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, state)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, EMPTY, state)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, state)
        return state

    # -- binding --------------------------------------------------------
    def _bind(self, target: ast.expr, tags: FrozenSet[str], state: State) -> None:
        if isinstance(target, ast.Name):
            if tags:
                state[target.id] = tags
            else:
                unit = suffix_unit(target.id)
                if unit is not None:
                    state[target.id] = frozenset((unit,))
                else:
                    state.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, EMPTY, state)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, EMPTY, state)
        # Attribute/Subscript targets are not tracked.

    def _target_tags(self, target: ast.expr, state: State) -> FrozenSet[str]:
        if isinstance(target, ast.Name):
            return state.get(target.id) or _suffix_tags(target.id)
        if isinstance(target, ast.Attribute):
            return _suffix_tags(target.attr)
        return EMPTY

    # -- expression evaluation ------------------------------------------
    def _eval(self, expr: ast.expr, state: State) -> FrozenSet[str]:
        if isinstance(expr, ast.Name):
            return state.get(expr.id) or _suffix_tags(expr.id)
        if isinstance(expr, ast.Attribute):
            self._eval(expr.value, state)
            if expr.attr == "now":
                return frozenset(("us",))  # Simulator.now is µs sim time
            return _suffix_tags(expr.attr)
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, state)
            right = self._eval(expr.right, state)
            if isinstance(expr.op, (ast.Add, ast.Sub)):
                self._check_mix(expr, left, right)
                return left | right
            # Mult/Div/etc: units change (conversion), taint survives.
            return (left | right) & frozenset((WALL,))
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, state)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, state)
            return self._eval(expr.body, state) | self._eval(expr.orelse, state)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        if isinstance(expr, ast.Compare):
            self._eval(expr.left, state)
            for comparator in expr.comparators:
                self._eval(comparator, state)
            return EMPTY
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self._eval(element, state)
            return EMPTY
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                if key is not None:
                    self._eval(key, state)
            for value in expr.values:
                self._eval(value, state)
            return EMPTY
        if isinstance(expr, ast.Subscript):
            self._eval(expr.value, state)
            return EMPTY
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._eval(child, state)
            return EMPTY
        return EMPTY

    def _eval_call(self, call: ast.Call, state: State) -> FrozenSet[str]:
        callee = call.func
        name = (
            callee.attr
            if isinstance(callee, ast.Attribute)
            else callee.id if isinstance(callee, ast.Name) else None
        )
        arg_tags = [
            self._eval(arg, state)
            for arg in (*call.args, *[kw.value for kw in call.keywords])
        ]
        if name in _SCHEDULER_CALLS:
            for arg, tags in zip(
                (*call.args, *[kw.value for kw in call.keywords]), arg_tags
            ):
                if WALL in tags:
                    self._emit(
                        arg,
                        "TIME502",
                        f"wall-clock-tainted value flows into scheduler call "
                        f"'{name}' — the DES clock is simulated microseconds "
                        "and must never be steered by host time",
                    )
            return EMPTY
        if name in _WALL_SOURCES and isinstance(callee, ast.Attribute):
            base = callee.value
            if isinstance(base, ast.Name) and base.id == "time":
                return frozenset(("s", WALL))
        if name in _CONVERSIONS:
            wall = frozenset(
                tag for tags in arg_tags for tag in tags if tag == WALL
            )
            return frozenset((_CONVERSIONS[name],)) | wall
        if name in _TRANSPARENT_CALLS:
            merged: FrozenSet[str] = EMPTY
            for tags in arg_tags:
                merged |= tags
            return merged
        return EMPTY

    # -- checks ---------------------------------------------------------
    def _check_mix(
        self, node: ast.AST, left: FrozenSet[str], right: FrozenSet[str]
    ) -> None:
        left_units = left - frozenset((WALL,))
        right_units = right - frozenset((WALL,))
        if left_units and right_units and not (left_units & right_units):
            self._emit(
                node,
                "TIME501",
                "mixed-unit arithmetic: "
                f"{'/'.join(sorted(left_units))} combined with "
                f"{'/'.join(sorted(right_units))} — convert via the "
                "repro.sim.clock factors first",
            )

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if self.report is None:
            return
        self.report.append(
            _RawFinding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )


def _suffix_tags(name: str) -> FrozenSet[str]:
    unit = suffix_unit(name)
    return frozenset((unit,)) if unit is not None else EMPTY


#: Per-project memo so both TIME rules run the analysis once.
_FINDINGS_CACHE: Dict[int, List[_RawFinding]] = {}


def unit_findings(project: Project) -> List[_RawFinding]:
    key = id(project)
    cached = _FINDINGS_CACHE.get(key)
    if cached is not None:
        return cached
    report: List[_RawFinding] = []
    for ctx in project.files:
        if ctx.tree is None:
            continue
        for func in ctx.functions():
            cfg = build_cfg(func)
            silent = _UnitAnalysis(ctx, func, report=None)
            states = fixpoint(cfg, silent)
            reporter = _UnitAnalysis(ctx, func, report=report)
            walk_block(cfg, states, reporter, lambda stmt, state: None)
    unique = sorted(
        set(report), key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
    )
    _FINDINGS_CACHE.clear()
    _FINDINGS_CACHE[key] = unique
    return unique


class _TimeRuleBase(Rule):
    scope = None

    def check_project(self, project: Project) -> Iterator[Finding]:
        by_path = {ctx.path: ctx for ctx in project.files}
        for raw in unit_findings(project):
            if raw.rule != self.id:
                continue
            ctx = by_path.get(raw.path)
            if ctx is not None and not self.applies_to(ctx.module):
                continue
            yield Finding(
                path=raw.path,
                line=raw.line,
                col=raw.col,
                rule=raw.rule,
                message=raw.message,
            )


class MixedUnitArithmeticRule(_TimeRuleBase):
    id = "TIME501"
    title = "no arithmetic across different time units"
    rationale = (
        "Every cost table and clock in the simulator is µs; sim/clock.py "
        "exists precisely so ns/ms/s values are converted before use. "
        "Adding a nanosecond cost to a microsecond timestamp silently "
        "mis-scales results by 10^3 — the classic units bug the Falcon "
        "cost model cannot survive."
    )


class WallTimeIntoSchedulerRule(_TimeRuleBase):
    id = "TIME502"
    title = "wall-clock time must not reach the DES scheduler"
    rationale = (
        "Determinism requires the event timeline to be a pure function of "
        "config + seed. A time.time()-derived value flowing into "
        "schedule()/submit() makes runs unrepeatable in the worst possible "
        "way: nondeterministic event ordering."
    )


TIME_RULES: Tuple[Rule, ...] = (
    MixedUnitArithmeticRule(),
    WallTimeIntoSchedulerRule(),
)
