"""Core machinery of the ``simlint`` static-analysis pass.

The linter parses every file once into a :class:`FileContext` (AST +
import-alias tables + pragmas + exemption spans), bundles them into a
:class:`Project`, and hands the project to each :class:`Rule`. Rules are
AST visitors in spirit but receive whole files so that a rule can
correlate nodes (e.g. "a set iteration whose body schedules events");
the race detector overrides :meth:`Rule.check_project` to see every file
at once and build a cross-module call graph.

Name resolution is deliberately conservative: a dotted call like
``np.random.default_rng(...)`` is only canonicalised to
``numpy.random.default_rng`` when the root name is actually an import in
that file. An attribute chain rooted at a local variable (``socket`` the
*parameter* vs ``socket`` the *module*) never aliases to a module, which
keeps the rules free of the classic grep false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.pragmas import RULE_ID_RE, FilePragmas, parse_pragmas

#: Rule id reported for malformed/unknown pragmas and exemptions.
META_RULE_ID = "LINT000"
#: Rule id reported for files that do not parse at all.
PARSE_RULE_ID = "LINT001"

#: Packages that make up the *simulated system* — code that runs under
#: simulated time on simulated cores. The DES-discipline rules apply
#: here; harness/reporting packages (metrics, experiments, validate,
#: cli) are free to do real I/O and real timing.
SIMULATED_SCOPE: Tuple[str, ...] = (
    "repro.sim",
    "repro.kernel",
    "repro.hw",
    "repro.overlay",
    "repro.core",
    "repro.workloads",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class ExemptSpan:
    """Line range covered by a ``@lint_exempt`` decorator."""

    start: int
    end: int
    rules: Set[str]
    has_reason: bool


class FileContext:
    """One parsed source file plus everything rules need to know about it."""

    def __init__(self, path: str, source: str, module: Optional[str]) -> None:
        self.path = path
        self.source = source
        #: Dotted module name when the file lives under ``src/repro``;
        #: None for out-of-tree files (fixtures), to which every rule
        #: applies.
        self.module = module
        self.pragmas: FilePragmas = parse_pragmas(source)
        self.exempt_spans: List[ExemptSpan] = []
        self.parents: Dict[ast.AST, ast.AST] = {}
        #: local name -> imported module dotted path (``import x.y as z``).
        self.module_aliases: Dict[str, str] = {}
        #: local name -> fully qualified imported attribute
        #: (``from time import time`` binds ``time -> time.time``).
        self.from_imports: Dict[str, str] = {}
        self.error: Optional[str] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.tree = None
            self.error = f"{exc.msg} (line {exc.lineno})"
            return
        self._index()

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index(self) -> None:
        assert self.tree is not None
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds the *root* name a; ``import
                    # a.b as c`` binds c to the full dotted path.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay project-local
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                span = self._exempt_span(node)
                if span is not None:
                    self.exempt_spans.append(span)

    def _exempt_span(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Optional[ExemptSpan]:
        rules: Set[str] = set()
        has_reason = True
        found = False
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            name = _last_segment(decorator.func)
            if name != "lint_exempt":
                continue
            found = True
            for arg in decorator.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    rules.add(arg.value)
            reason = next(
                (kw for kw in decorator.keywords if kw.arg == "reason"), None
            )
            if reason is None or (
                isinstance(reason.value, ast.Constant)
                and not str(reason.value.value).strip()
            ):
                has_reason = False
        if not found:
            return None
        start = min(
            [node.lineno] + [dec.lineno for dec in node.decorator_list]
        )
        end = node.end_lineno or node.lineno
        return ExemptSpan(start=start, end=end, rules=rules, has_reason=has_reason)

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """Resolve a call target to ``(kind, name)``.

        ``("module", "numpy.random.default_rng")`` when the attribute
        chain is rooted at an import in this file; ``("bare", "open")``
        for a plain name; None for anything else (attributes of local
        objects, subscripts, calls-of-calls ...).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = current.id
        parts.append(root)
        parts.reverse()
        if root in self.module_aliases:
            parts[0] = self.module_aliases[root]
            return ("module", ".".join(parts))
        if root in self.from_imports:
            parts[0] = self.from_imports[root]
            return ("module", ".".join(parts))
        if len(parts) == 1:
            return ("bare", root)
        return None

    def suppressed(self, rule_id: str, line: int) -> bool:
        """True when any pragma form silences ``rule_id`` at ``line``."""
        if self.pragmas.suppresses(rule_id, line):
            return True
        for span in self.exempt_spans:
            if span.start <= line <= span.end and rule_id in span.rules:
                return True
        return False

    def functions(self) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
        if self.tree is None:
            return
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = self.parents.get(current)
        return None


@dataclass
class Project:
    """Every file handed to one lint invocation."""

    files: List[FileContext] = field(default_factory=list)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement
    :meth:`check_file`; cross-module rules override
    :meth:`check_project` instead.
    """

    id: str = "LINT999"
    title: str = ""
    rationale: str = ""
    #: Module-prefix scope; None applies everywhere. Out-of-tree files
    #: (module is None) are always in scope — strict by default.
    scope: Optional[Tuple[str, ...]] = None
    #: Module-prefix carve-outs *inside* the scope. For rules whose
    #: discipline has a designated boundary module — e.g. the DES
    #: concurrency bans, which must not fire on the shard engine's
    #: process transport, the one sanctioned OS-facing corner of the
    #: simulated scope. Prefer this over per-line pragmas when the whole
    #: module is the exemption.
    exempt: Tuple[str, ...] = ()

    def applies_to(self, module: Optional[str]) -> bool:
        if module is not None and any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.exempt
        ):
            return False
        if self.scope is None or module is None:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterator[Finding]:
        for ctx in project.files:
            if ctx.tree is None or not self.applies_to(ctx.module):
                continue
            yield from self.check_file(ctx)

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


def _last_segment(node: ast.AST) -> Optional[str]:
    """The final identifier of a call target (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def last_segment(node: ast.AST) -> Optional[str]:
    return _last_segment(node)


def walk_numeric_literals(node: ast.AST) -> Iterator[ast.Constant]:
    """Yield non-zero numeric literals inside ``node``.

    Does not descend into nested lambdas/defs: a callback passed where a
    duration is expected is somebody else's scope, not a magic delay.
    """
    stack: List[ast.AST] = [node]
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, (int, float))
            and not isinstance(sub.value, bool)
            and sub.value != 0
        ):
            yield sub
        stack.extend(ast.iter_child_nodes(sub))


def module_name_for(path: str) -> Optional[str]:
    """Map a file path to its ``repro.*`` module name, if it has one."""
    normalized = path.replace("\\", "/")
    marker = "src/repro/"
    index = normalized.rfind(marker)
    if index < 0:
        return None
    rest = normalized[index + len("src/") :]
    if rest.endswith(".py"):
        rest = rest[: -len(".py")]
    parts = [part for part in rest.split("/") if part]
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def meta_findings(ctx: FileContext, known_ids: Sequence[str]) -> Iterator[Finding]:
    """LINT000/LINT001 findings: parse errors and bad pragmas."""
    if ctx.error is not None:
        yield Finding(ctx.path, 1, 0, PARSE_RULE_ID, f"file does not parse: {ctx.error}")
        return
    known = set(known_ids) | {META_RULE_ID, PARSE_RULE_ID}
    for line, message in ctx.pragmas.malformed:
        yield Finding(ctx.path, line, 0, META_RULE_ID, message)
    for line, rules in sorted(ctx.pragmas.line_rules.items()):
        for rule_id in sorted(rules):
            if rule_id != "all" and rule_id not in known:
                yield Finding(
                    ctx.path, line, 0, META_RULE_ID,
                    f"pragma names unknown rule id {rule_id!r}",
                )
    for rule_id in sorted(ctx.pragmas.file_rules):
        if rule_id != "all" and rule_id not in known:
            yield Finding(
                ctx.path, 1, 0, META_RULE_ID,
                f"file pragma names unknown rule id {rule_id!r}",
            )
    for span in ctx.exempt_spans:
        if not span.has_reason:
            yield Finding(
                ctx.path, span.start, 0, META_RULE_ID,
                "lint_exempt without a non-empty reason= keyword",
            )
        for rule_id in sorted(span.rules):
            if not RULE_ID_RE.match(rule_id) or rule_id not in known:
                yield Finding(
                    ctx.path, span.start, 0, META_RULE_ID,
                    f"lint_exempt names unknown rule id {rule_id!r}",
                )
