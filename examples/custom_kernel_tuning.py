#!/usr/bin/env python3
"""Scenario: what-if analysis with a custom cost model.

The simulator's cost model is explicit data, which makes the kind of
what-if analysis possible that a hardware testbed can't do cheaply:
What if ``vxlan_rcv`` were 2.5x as expensive (e.g. with traffic
encryption hooked into the tunnel)? How much of the overlay penalty is
the bridge/veth plumbing? Whatever modules get hooked into the packet
path ("encryption, profiling, software switches, network functions" —
Section 4.2), pipelining the per-device stages keeps paying: Falcon
roughly doubles vanilla-overlay throughput in every variant below.

Run:  python examples/custom_kernel_tuning.py
"""

from dataclasses import replace

from repro import FalconConfig
from repro.kernel.costs import CostModel, FuncCost
from repro.kernel.stack import NetworkStack
from repro.metrics.report import Table
from repro.workloads.sockperf import Testbed


def run_variant(name: str, costs: CostModel, table: Table) -> None:
    rates = {}
    for mode, falcon in (("Con", None), ("Falcon", FalconConfig())):
        bed = Testbed(mode="overlay", falcon=falcon)
        # Swap in the custom cost model and rebuild the receive stack.
        bed.host.config.costs = costs
        bed.host.stack = NetworkStack(bed.sim, bed.host.machine, bed.host.config)
        bed.stack = bed.host.stack
        bed.window.stack = bed.stack
        bed.add_udp_flow(16, clients=3)
        result = bed.run(warmup_ms=8, measure_ms=15)
        rates[mode] = result.message_rate_pps
    gain = rates["Falcon"] / rates["Con"] - 1.0 if rates["Con"] else 0.0
    table.add_row(name, rates["Con"] / 1e3, rates["Falcon"] / 1e3, gain * 100)


def main() -> None:
    table = Table(
        ["cost model", "Con kpps", "Falcon kpps", "Falcon gain %"],
        title="16 B UDP single-flow stress under what-if cost models",
    )
    baseline = CostModel.kernel_4_19()
    run_variant("baseline (kernel 4.19)", baseline, table)
    run_variant(
        "encrypted tunnel (2.5x vxlan_rcv)",
        replace(baseline, vxlan_rcv=FuncCost(0.55, 0.0002)),
        table,
    )
    run_variant(
        "free bridge/veth plumbing",
        replace(
            baseline,
            br_handle_frame=FuncCost(0.0),
            veth_xmit=FuncCost(0.0),
            gro_cell_poll=FuncCost(0.0),
        ),
        table,
    )
    run_variant("kernel 5.4 preset", CostModel.kernel_5_4(), table)
    print(table.render())


if __name__ == "__main__":
    main()
