"""Figure 17 — CloudSuite Web Serving: vanilla overlay vs Falcon."""

from conftest import run_figure

from repro.experiments import fig17_webserving


def test_fig17_webserving(benchmark, quick):
    out = run_figure(benchmark, fig17_webserving, quick)
    per_op = out.series["per_op"]

    total_con, total_falcon = out.series["total_ops"]
    # Overall operation rate up (quick runs have few samples per op, so
    # only the aggregate is asserted tightly there).
    assert total_falcon > (1.05 if quick else 1.2) * total_con

    improved_ops = 0
    improved_resp = 0
    for name, data in per_op.items():
        ops_con, ops_fal = data["ops"]
        resp_con, resp_fal = data["response_ms"]
        if ops_fal > ops_con:
            improved_ops += 1
        if resp_fal < resp_con:
            improved_resp += 1
    # Falcon improves the large majority of operation types on both
    # axes. Quick windows see only a handful of completions per rare op,
    # so the per-op breakdown is asserted on full runs only.
    if not quick:
        assert improved_ops >= len(per_op) - 1
        assert improved_resp >= len(per_op) - 1
