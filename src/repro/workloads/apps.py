"""Server-application building blocks for the CloudSuite-style workloads.

* :class:`WorkerPool` — a bounded pool of application worker threads
  (nginx/PHP children, memcached worker threads) pinned to CPUs. Requests
  queue when all workers are busy, which is where web-serving "delay
  time" comes from.
* :class:`ResponseChannel` — models the server → client return path:
  transmit CPU cost on the worker's core, link serialization, and a fixed
  client-side receive constant. The reproduction simulates the server's
  receive pipeline in full detail; the client side only needs to close
  the latency loop.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.hw.cpu import USER
from repro.hw.link import Link
from repro.kernel.costs import CostModel


class WorkerPool:
    """Bounded pool of application workers over a CPU set."""

    def __init__(
        self,
        machine,
        cpus: List[int],
        max_workers: int,
        label: str = "app_service",
    ) -> None:
        if max_workers < 1:
            raise ValueError("pool needs at least one worker")
        if not cpus:
            raise ValueError("pool needs at least one CPU")
        self.machine = machine
        self.cpus = list(cpus)
        self.max_workers = max_workers
        self.label = label
        self.active = 0
        self._queue: Deque[Tuple[float, Callable[[], Any]]] = deque()
        self._next_cpu = 0
        self.served = 0
        #: Peak queue depth — a saturation indicator.
        self.peak_queue = 0

    def submit(self, service_us: float, done: Callable[[], Any]) -> None:
        """Run ``service_us`` of work when a worker slot frees up."""
        if self.active < self.max_workers:
            self._start(service_us, done)
        else:
            self._queue.append((service_us, done))
            self.peak_queue = max(self.peak_queue, len(self._queue))

    def _start(self, service_us: float, done: Callable[[], Any]) -> None:
        self.active += 1
        cpu_index = self.cpus[self._next_cpu % len(self.cpus)]
        self._next_cpu += 1
        cpu = self.machine.cpus[cpu_index]
        cpu.submit(USER, self.label, service_us, self._finish, done)

    def _finish(self, done: Callable[[], Any]) -> None:
        self.active -= 1
        self.served += 1
        done()
        if self._queue and self.active < self.max_workers:
            service_us, next_done = self._queue.popleft()
            self._start(service_us, next_done)

    @property
    def queued(self) -> int:
        return len(self._queue)


class ResponseChannel:
    """Server → client response path with CPU cost and link delay.

    When ``ack_stack`` is provided, the client's TCP acknowledgements of
    the response segments are injected back through the server's receive
    pipeline (one pure ACK per two MSS segments, the kernel's delayed-ACK
    behaviour). For page-sized responses this ACK stream is most of the
    server's *receive* packet load — the traffic the overlay's serialized
    softirqs choke on in the paper's web-serving experiment.
    """

    def __init__(
        self,
        machine,
        link: Link,
        costs: CostModel,
        overlay: bool,
        client_rx_us: float = 4.0,
        ack_stack=None,
        ack_link: Optional[Link] = None,
        mss: int = 1448,
    ) -> None:
        self.machine = machine
        self.link = link
        self.costs = costs
        self.overlay = overlay
        self.client_rx_us = client_rx_us
        self.ack_stack = ack_stack
        self.ack_link = ack_link
        self.mss = mss
        self.responses_sent = 0
        self.acks_injected = 0

    def respond(
        self,
        worker_cpu: int,
        nbytes: int,
        deliver: Callable[[], Any],
        flow=None,
    ) -> None:
        """Charge transmit cost on the worker's core, then ship the bytes."""
        tx_cost = self.costs.tx_cost_us(nbytes, self.overlay)
        cpu = self.machine.cpus[worker_cpu]
        sim = self.machine.sim

        def after_tx() -> None:
            self.responses_sent += 1
            self.link.send(
                nbytes + 88,
                lambda: sim.schedule(self.client_rx_us, deliver),
            )
            if self.ack_stack is not None and flow is not None:
                self._inject_acks(flow, nbytes)

        cpu.submit(USER, "response_tx", tx_cost, after_tx)

    def _inject_acks(self, flow, nbytes: int) -> None:
        from repro.kernel.skb import Skb  # local import to avoid cycles

        segments = max(1, (nbytes + self.mss - 1) // self.mss)
        num_acks = max(1, segments // 2)
        sim = self.machine.sim
        link = self.ack_link or self.link
        encap = 50 if self.overlay else 0
        for index in range(num_acks):
            skb = Skb(
                flow,
                size=52 + encap,
                wire_size=52 + encap + 38,
                msg_id=0,
                msg_size=52,
                t_send=sim.now,
                encapsulated=self.overlay,
                meta="ctl",
            )
            delay = self.client_rx_us + index * 3.0
            sim.schedule(delay, self._send_ack, link, skb)
            self.acks_injected += 1

    def _send_ack(self, link: Link, skb) -> None:
        stack = self.ack_stack
        link.send(skb.wire_size, lambda: stack.inject(skb))
