#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result in one page.

Builds three identical single-flow UDP stress scenarios — native host
network, vanilla Docker/VXLAN overlay, and Falcon-enabled overlay — and
prints the packet rate, the per-core utilization (showing the overlay's
serialized softirqs and Falcon's pipeline), and the latency spectrum.

Run:  python examples/quickstart.py
"""

from repro import Experiment, FalconConfig
from repro.metrics.report import Table


def main() -> None:
    cases = [
        ("Host (native)", dict(mode="host")),
        ("Con (vanilla overlay)", dict(mode="overlay")),
        ("Falcon (overlay)", dict(mode="overlay", falcon=FalconConfig())),
    ]

    table = Table(
        ["case", "kpps", "vs host", "busy cores", "avg us", "p99 us"],
        title="Single-flow UDP stress, 16 B messages, 100G link",
    )
    host_rate = None
    for name, kwargs in cases:
        result = Experiment(**kwargs).run_udp_stress(
            message_size=16, duration_ms=20, warmup_ms=10
        )
        if host_rate is None:
            host_rate = result.message_rate_pps
        busy = [
            f"cpu{index}:{util:.0%}"
            for index, util in enumerate(result.cpu_util[:8])
            if util > 0.05
        ]
        table.add_row(
            name,
            result.message_rate_pps / 1e3,
            f"{result.message_rate_pps / host_rate:.0%}",
            " ".join(busy),
            result.latency["avg"],
            result.latency["p99"],
        )
    print(table.render())
    print()
    print(
        "Reading: the vanilla overlay stacks three softirq stages of the\n"
        "flow on one core (the 100%-busy RPS core) and loses most of the\n"
        "native packet rate; Falcon pipelines those stages across its\n"
        "FALCON_CPUS and recovers near-native throughput (the paper's\n"
        "Figures 10 and 11)."
    )


if __name__ == "__main__":
    main()
