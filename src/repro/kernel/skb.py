"""Socket-buffer (``sk_buff``) and flow models.

An :class:`Skb` is one unit travelling through the receive pipeline. Like
the kernel's ``sk_buff`` it carries the cached flow hash, the device it
currently belongs to (``dev_ifindex`` — the field Falcon mixes into its
CPU-selection hash), and enough metadata for GRO / IP-defragmentation to
merge wire packets back into application messages.

Message/segment model
---------------------
Applications send *messages*. A message larger than the path MTU becomes
multiple *wire packets*:

* **UDP** — IP fragments, reassembled late (``ip_defrag`` in the last
  stack the packet traverses);
* **TCP** — MSS-sized segments, merged early by GRO in the driver stage
  (when GRO is enabled) or accumulated at the socket otherwise.

``msg_id``/``frag_index``/``frag_count`` tie wire packets back to their
message; ``segs`` counts how many wire packets a merged skb represents.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Tuple

from repro.kernel.hashing import flow_hash

#: IP protocol numbers (the subset the reproduction uses).
PROTO_UDP = 17
PROTO_TCP = 6

_flow_ids = itertools.count(1)


class FlowKey:
    """A 5-tuple identifying a network flow, with its cached hash.

    >>> a = FlowKey.make(1, 2, PROTO_UDP, 1000, 5001)
    >>> b = FlowKey.make(1, 2, PROTO_UDP, 1000, 5001)
    >>> a.hash == b.hash
    True
    """

    __slots__ = ("src_ip", "dst_ip", "proto", "sport", "dport", "hash", "flow_id")

    def __init__(
        self,
        src_ip: int,
        dst_ip: int,
        proto: int,
        sport: int,
        dport: int,
    ) -> None:
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.proto = proto
        self.sport = sport
        self.dport = dport
        self.hash = flow_hash(src_ip, dst_ip, proto, sport, dport)
        self.flow_id = next(_flow_ids)

    @classmethod
    def make(
        cls,
        src_ip: int,
        dst_ip: int,
        proto: int = PROTO_UDP,
        sport: int = 10000,
        dport: int = 5001,
    ) -> "FlowKey":
        return cls(src_ip, dst_ip, proto, sport, dport)

    def tuple(self) -> Tuple[int, int, int, int, int]:
        return (self.src_ip, self.dst_ip, self.proto, self.sport, self.dport)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        proto = {PROTO_UDP: "udp", PROTO_TCP: "tcp"}.get(self.proto, self.proto)
        return (
            f"<Flow {self.src_ip}:{self.sport}->{self.dst_ip}:{self.dport}/{proto}>"
        )


class Skb:
    """One packet (or GRO/defrag-merged super-packet) in the pipeline."""

    __slots__ = (
        "flow",
        "hash",
        "size",
        "wire_size",
        "dev_ifindex",
        "msg_id",
        "msg_size",
        "frag_index",
        "frag_count",
        "segs",
        "seq",
        "t_send",
        "t_nic",
        "last_cpu",
        "encapsulated",
        "fastpath",
        "meta",
    )

    def __init__(
        self,
        flow: FlowKey,
        size: int,
        wire_size: Optional[int] = None,
        msg_id: int = 0,
        msg_size: Optional[int] = None,
        frag_index: int = 0,
        frag_count: int = 1,
        seq: int = 0,
        t_send: float = 0.0,
        encapsulated: bool = False,
        meta: Any = None,
    ) -> None:
        self.flow = flow
        self.hash = flow.hash
        #: Payload bytes currently carried (changes on decap/merge).
        self.size = size
        #: Bytes occupying the wire, including all framing/encap overhead.
        self.wire_size = wire_size if wire_size is not None else size
        #: The network device currently processing this skb (``dev->ifindex``).
        self.dev_ifindex = 0
        self.msg_id = msg_id
        self.msg_size = msg_size if msg_size is not None else size
        self.frag_index = frag_index
        self.frag_count = frag_count
        #: Number of wire packets merged into this skb (GRO/defrag).
        self.segs = 1
        #: Per-flow wire sequence number (for in-order assertions).
        self.seq = seq
        #: Timestamp the application handed the message to the sender stack.
        self.t_send = t_send
        #: Timestamp the first byte reached the receiving NIC.
        self.t_nic = 0.0
        #: Core that last processed this skb (drives the locality model).
        self.last_cpu: Optional[int] = None
        #: True while the packet still wears its VXLAN outer header.
        self.encapsulated = encapsulated
        #: Flow-cache datapath verdict: None until the driver-exit check
        #: runs, 0 after a slow-path (miss) verdict, else the number of
        #: wire segments that took the cached fast path (defrag sums the
        #: per-fragment verdicts into the reassembled head).
        self.fastpath: Optional[int] = None
        #: Workload-specific payload (request objects etc.).
        self.meta = meta

    @property
    def is_tcp(self) -> bool:
        return self.flow.proto == PROTO_TCP

    @property
    def is_fragment(self) -> bool:
        return self.frag_count > 1

    @property
    def is_last_fragment(self) -> bool:
        return self.frag_index == self.frag_count - 1

    def decapsulate(self, overhead: int) -> None:
        """Strip the VXLAN outer headers (``vxlan_rcv``)."""
        self.encapsulated = False
        self.size = max(self.size - overhead, 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Skb flow={self.flow.flow_id} msg={self.msg_id} "
            f"frag={self.frag_index}/{self.frag_count} size={self.size}>"
        )
