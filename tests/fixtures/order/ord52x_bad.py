"""ORD521-523: flowcache ordering-gate bypasses.

An eager table populates (and serves) at lookup time, so a cached packet
can overtake an older packet of the same flow still riding the slow
path; and a teardown path that never invalidates leaves the fast path
steering frames at a container that no longer exists.
"""


class EagerFlowTable:
    def __init__(self, capacity):
        self.capacity = capacity
        self._entries = {}
        self.hits = 0
        self.misses = 0

    def access(self, key, segs):
        if key in self._entries:
            self.hits += 1  # expect: ORD522
            return True
        self.misses += 1
        self.insert(key)  # expect: ORD521
        return False

    def insert(self, key):
        self._entries[key] = 1


class EagerHost:
    def remove_container(self, ip):  # expect: ORD523
        self.release_ip(ip)

    def release_ip(self, ip):
        self.freed.append(ip)
