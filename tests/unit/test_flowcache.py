"""Unit tests for the per-flow fast-path cache (repro.kernel.flowcache).

Three contracts pinned here:

* the LRU is deterministic — eviction order is a pure function of the
  access sequence (OrderedDict semantics, never hash order);
* the counters are exact — hits/misses/evictions/invalidations/inserts
  match a hand-computed trace, packet by packet;
* the ordering gate never grants a hit while the flow has slow-path
  packets in flight, and releases reservations exactly once.
"""

import pytest

from repro.core.config import FlowCacheConfig
from repro.kernel.flowcache import FlowCache, FlowTable
from repro.kernel.skb import FlowKey, Skb


def key(n):
    """A distinct 5-tuple per small integer (src ip varies)."""
    return (100 + n, 200, 17, 5000 + n, 53)


def flow(n):
    return FlowKey(src_ip=100 + n, dst_ip=200, proto=17, sport=5000 + n, dport=53)


# ----------------------------------------------------------------------
# LRU determinism
# ----------------------------------------------------------------------
def test_lru_evicts_in_insertion_order():
    table = FlowTable(capacity=3)
    for n in range(3):
        table.insert(key(n))
    assert table.keys() == [key(0), key(1), key(2)]
    table.insert(key(3))  # evicts the oldest: key(0)
    assert table.keys() == [key(1), key(2), key(3)]
    assert table.evictions == 1
    assert key(0) not in table


def test_lru_hit_refreshes_position():
    table = FlowTable(capacity=2)
    table.insert(key(0))
    table.insert(key(1))
    assert table.access(key(0), segs=1)  # key(0) becomes most-recent
    table.insert(key(2))  # must evict key(1), not key(0)
    assert table.keys() == [key(0), key(2)]


def test_lru_reinsert_refreshes_not_duplicates():
    table = FlowTable(capacity=2)
    table.insert(key(0))
    table.insert(key(1))
    table.insert(key(0))  # refresh, no new insert counted
    assert table.inserts == 2
    assert len(table) == 2
    table.insert(key(2))  # evicts key(1)
    assert table.keys() == [key(0), key(2)]


def test_lru_is_deterministic_across_runs():
    """Same op sequence -> byte-identical table state and counters."""

    def run():
        table = FlowTable(capacity=4)
        for n in (0, 1, 2, 3, 1, 4, 0, 5, 2, 6):
            if not table.access(key(n), segs=1):
                table.slow_done(key(n), 1)
                table.insert(key(n))
        return table.keys(), (
            table.hits, table.misses, table.evictions, table.inserts
        )

    assert run() == run()


# ----------------------------------------------------------------------
# Hand-computed counter trace
# ----------------------------------------------------------------------
def test_counters_match_hand_computed_trace():
    """Capacity 2, three flows A/B/C, one segment per packet.

    trace (rx side)                 | verdict | table after (LRU->MRU)
    --------------------------------|---------|-----------------------
    A arrives (cold)                | miss    | []
    A delivered -> insert A         |         | [A]
    A arrives                       | hit     | [A]
    B arrives (cold)                | miss    | [A]
    B delivered -> insert B         |         | [A, B]
    C arrives (cold)                | miss    | [A, B]
    C delivered -> insert C, evict A| evict   | [B, C]
    A arrives (evicted)             | miss    | [B, C]
    B arrives                       | hit     | [C, B]
    """
    table = FlowTable(capacity=2)
    a, b, c = key(0), key(1), key(2)

    assert not table.access(a, 1)
    table.slow_done(a, 1)
    table.insert(a)
    assert table.access(a, 1)
    assert not table.access(b, 1)
    table.slow_done(b, 1)
    table.insert(b)
    assert not table.access(c, 1)
    table.slow_done(c, 1)
    table.insert(c)
    assert not table.access(a, 1)  # A was evicted by C's insert
    table.slow_done(a, 1)
    assert table.access(b, 1)

    assert table.hits == 2
    assert table.misses == 4
    assert table.evictions == 1
    assert table.inserts == 3
    assert table.invalidations == 0
    assert table.keys() == [c, b]


def test_cache_hit_rate_is_exact():
    cache = FlowCache(FlowCacheConfig(capacity=4))
    f = flow(0)
    # 1 miss then 3 hits -> hit rate exactly 3/4.
    for i in range(4):
        skb = Skb(f, size=512)
        hit = cache.access_rx(skb)
        assert hit == (i > 0)
        if not hit:
            cache.packet_terminated(skb)
            cache.delivered(skb)
    assert cache.hit_rate() == pytest.approx(0.75)
    counters = cache.counters()
    assert counters["ingress_hits"] == 3
    assert counters["ingress_misses"] == 1
    assert counters["ingress_inserts"] == 1


# ----------------------------------------------------------------------
# Ordering gate
# ----------------------------------------------------------------------
def test_gate_blocks_hits_while_slow_packets_in_flight():
    table = FlowTable(capacity=4)
    k = key(0)
    assert not table.access(k, segs=1)  # cold miss reserves 1 slow seg
    table.insert(k)  # entry goes live (delivery of packet 0)...
    # ...but packet 0's reservation is still held: no hit yet.
    assert table.slow_inflight(k) == 1
    assert not table.access(k, segs=1)
    assert table.slow_inflight(k) == 2
    table.slow_done(k, 2)
    assert table.slow_inflight(k) == 0
    assert table.access(k, segs=1)


def test_gate_releases_are_per_segment():
    table = FlowTable(capacity=4)
    k = key(0)
    assert not table.access(k, segs=3)  # a GRO-merged super-packet
    table.insert(k)
    table.slow_done(k, 2)
    assert table.slow_inflight(k) == 1
    assert not table.access(k, segs=1)  # partial release: still gated
    table.slow_done(k, 2)  # 1 (remaining) + 1 (the gated miss above)
    assert table.access(k, segs=1)


def test_packet_terminated_releases_only_slow_segments():
    cache = FlowCache(FlowCacheConfig(capacity=4))
    f = flow(0)
    skb = Skb(f, size=512)
    assert not cache.access_rx(skb)
    assert skb.fastpath == 0
    assert cache.ingress.slow_inflight(f.tuple()) == 1
    cache.packet_terminated(skb)
    assert cache.ingress.slow_inflight(f.tuple()) == 0
    # A second termination (or one for an unchecked skb) must not
    # underflow another flow's ledger.
    fresh = Skb(f, size=512)
    assert fresh.fastpath is None
    cache.packet_terminated(fresh)
    assert cache.ingress.slow_inflight(f.tuple()) == 0


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------
def test_invalidate_flow_and_missing_key():
    cache = FlowCache(FlowCacheConfig(capacity=4))
    f = flow(0)
    cache.ingress.insert(f.tuple())
    cache.egress.insert(f.tuple())
    assert cache.invalidate_flow(f) == 2
    assert cache.invalidate_flow(f) == 0  # already gone: not recounted
    assert cache.counters()["ingress_invalidations"] == 1
    assert cache.counters()["egress_invalidations"] == 1


def test_invalidate_ip_drops_both_directions_of_that_ip_only():
    table = FlowTable(capacity=8)
    victim = 42
    table.insert((victim, 200, 17, 1, 2))  # victim as src
    table.insert((100, victim, 17, 3, 4))  # victim as dst
    table.insert(key(7))  # unrelated
    assert table.invalidate_ip(victim) == 2
    assert table.keys() == [key(7)]
    assert table.invalidations == 2


def test_invalidate_all_counts_everything():
    table = FlowTable(capacity=8)
    for n in range(5):
        table.insert(key(n))
    assert table.invalidate_all() == 5
    assert len(table) == 0
    assert table.invalidations == 5


def test_egress_populates_on_miss_without_gate():
    """The sender is serialized per flow: tx misses insert immediately."""
    table = FlowTable(capacity=2)
    assert not table.hit_or_populate(key(0))
    assert table.hit_or_populate(key(0))
    assert table.slow_inflight(key(0)) == 0
    assert table.hits == 1 and table.misses == 1 and table.inserts == 1
