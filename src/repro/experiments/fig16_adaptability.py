"""Figure 16 — adaptability: two-choice vs static balancing under a hotspot.

Several flows share the Falcon CPU set; one flow suddenly quadruples its
rate, overloading the core its stages hash to. The static policy cannot
move any softirq away; the two-choice policy re-hashes softirqs off the
hot core. The paper reports ~18% (UDP) / ~15% (TCP) higher throughput
for the dynamic policy, with consistent results across runs.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations
from repro.metrics.report import Table
from repro.workloads.multiflow import run_hotspot

SEEDS_FULL = (0, 1, 2)
SEEDS_QUICK = (0,)


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput(
        "Figure 16", "Two-choice dynamic balancing vs static hashing under a hotspot"
    )
    dur = durations(quick, 20.0, 8.0)
    seeds = SEEDS_QUICK if quick else SEEDS_FULL
    table = Table(
        ["policy", "seed", "kpps", "p99 us"],
        title="4 UDP flows, one bursts 4x mid-run",
    )
    series = {"static": [], "two_choice": []}
    for policy in ("static", "two_choice"):
        for seed in seeds:
            result = run_hotspot(
                policy,
                seed=seed,
                burst_at_ms=dur["warmup_ms"] * 0.5,
                **dur,
            )
            table.add_row(
                policy,
                seed,
                result.message_rate_pps / 1e3,
                result.latency["p99"],
            )
            series[policy].append(result.message_rate_pps)
    out.tables.append(table)

    static_mean = sum(series["static"]) / len(series["static"])
    dynamic_mean = sum(series["two_choice"]) / len(series["two_choice"])
    summary = Table(["policy", "mean kpps", "gain %"], title="summary")
    summary.add_row("static", static_mean / 1e3, 0.0)
    summary.add_row(
        "two_choice",
        dynamic_mean / 1e3,
        (dynamic_mean / static_mean - 1.0) * 100 if static_mean else 0.0,
    )
    out.tables.append(summary)
    out.series.update(series)
    out.series["gain"] = dynamic_mean / static_mean if static_mean else 0.0
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
