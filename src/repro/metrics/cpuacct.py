"""Per-CPU, per-function busy-time accounting.

This is the simulator's equivalent of ``perf`` + flamegraphs + ``mpstat``:
every work item executed on a CPU is attributed to a *label* (the kernel
function name, e.g. ``napi_gro_receive``) and an execution *context*
(hardirq / softirq / user). The experiment harness snapshots the
accounting at window boundaries and reports utilization exactly the way
Figures 5, 6, 9a, 11 and 19 of the paper do.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

#: Execution contexts, ordered by dispatch priority (lower = higher prio).
HARDIRQ = 0
SOFTIRQ = 1
USER = 2

CONTEXT_NAMES = {HARDIRQ: "hardirq", SOFTIRQ: "softirq", USER: "user"}


class CpuAccounting:
    """Accumulates busy microseconds keyed by (cpu, label) and (cpu, context)."""

    def __init__(self) -> None:
        self._by_label: Dict[Tuple[int, str], float] = {}
        self._by_context: Dict[Tuple[int, int], float] = {}
        self._busy_by_cpu: Dict[int, float] = {}

    def charge(self, cpu: int, context: int, label: str, duration: float) -> None:
        """Attribute ``duration`` µs of busy time."""
        key = (cpu, label)
        self._by_label[key] = self._by_label.get(key, 0.0) + duration
        ckey = (cpu, context)
        self._by_context[ckey] = self._by_context.get(ckey, 0.0) + duration
        self._busy_by_cpu[cpu] = self._busy_by_cpu.get(cpu, 0.0) + duration

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def busy_us(self, cpu: int) -> float:
        return self._busy_by_cpu.get(cpu, 0.0)

    def busy_us_label(self, cpu: int, label: str) -> float:
        return self._by_label.get((cpu, label), 0.0)

    def busy_us_context(self, cpu: int, context: int) -> float:
        return self._by_context.get((cpu, context), 0.0)

    def total_by_label(self) -> Dict[str, float]:
        """Busy µs per label summed over all CPUs (flamegraph view)."""
        totals: Dict[str, float] = {}
        for (_cpu, label), value in self._by_label.items():
            totals[label] = totals.get(label, 0.0) + value
        return totals

    def cpus(self) -> Iterable[int]:
        return sorted(self._busy_by_cpu)

    def snapshot(self) -> "CpuAccounting":
        """Deep copy for window-boundary bookkeeping."""
        copy = CpuAccounting()
        copy._by_label = dict(self._by_label)
        copy._by_context = dict(self._by_context)
        copy._busy_by_cpu = dict(self._busy_by_cpu)
        return copy


class CpuWindow:
    """Utilization over an explicit window, computed from two snapshots.

    >>> acct = CpuAccounting()
    >>> acct.charge(0, SOFTIRQ, "ip_rcv", 500.0)
    >>> window = CpuWindow(acct, start_time=0.0)
    >>> acct.charge(0, SOFTIRQ, "ip_rcv", 250.0)
    >>> window.close(1000.0)
    >>> window.utilization(0)
    0.25
    """

    def __init__(self, acct: CpuAccounting, start_time: float) -> None:
        self._acct = acct
        self._start = acct.snapshot()
        self.start_time = start_time
        self.end_time: float = start_time

    def close(self, end_time: float) -> None:
        self._end = self._acct.snapshot()
        self.end_time = end_time

    @property
    def elapsed_us(self) -> float:
        return max(self.end_time - self.start_time, 0.0)

    def busy_us(self, cpu: int) -> float:
        return self._end.busy_us(cpu) - self._start.busy_us(cpu)

    def utilization(self, cpu: int) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.busy_us(cpu) / self.elapsed_us

    def utilization_context(self, cpu: int, context: int) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        delta = self._end.busy_us_context(cpu, context) - self._start.busy_us_context(
            cpu, context
        )
        return delta / self.elapsed_us

    def utilization_label(self, cpu: int, label: str) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        delta = self._end.busy_us_label(cpu, label) - self._start.busy_us_label(
            cpu, label
        )
        return delta / self.elapsed_us

    def label_shares(self) -> Dict[str, float]:
        """Fraction of total busy time per label (flamegraph shares)."""
        end_totals = self._end.total_by_label()
        start_totals = self._start.total_by_label()
        deltas = {
            label: end_totals.get(label, 0.0) - start_totals.get(label, 0.0)
            for label in end_totals
        }
        total = sum(value for value in deltas.values() if value > 0)
        if total <= 0:
            return {}
        return {
            label: value / total
            for label, value in sorted(deltas.items(), key=lambda kv: -kv[1])
            if value > 0
        }
