"""Cross-shard event records and their wire format.

A :class:`CrossShardEvent` is the only thing that ever travels between
shards: a timestamped, source-ordered record of a simulated interaction
that crosses a shard boundary (a frame arriving on a remote host's NIC,
a TCP credit flying back to a remote sender). Records are exchanged at
window barriers and merged into the destination shard in **(time, src,
seq)** order — a total order, because ``(src, seq)`` pairs are unique —
so the injection order never depends on which shard answered a barrier
first, or on how hosts were partitioned into shards.

Wire format
-----------
Records cross process boundaries as plain tuples of primitives
(``(time, src, seq, kind, dst, payload)``), never as pickled model
objects: each side reconstructs its own objects, and a malformed record
is detected at decode time and surfaced as a
:class:`~repro.sim.errors.ShardError` instead of corrupting a remote
simulator. ``src`` and ``dst`` are *global host indexes* (not shard
indexes): the merge key must not change when the host→shard partition
does, or N-shard runs could not be byte-identical to the 1-shard run.

``repro order`` enforces the construction discipline statically
(ORD513): a :class:`CrossShardEvent` may be built only here, in an
``emit`` method (which owns the per-source seq counter), or in
``from_wire`` (which re-validates every field) — an ad-hoc record
anywhere else could duplicate or skip a seq and break the total order.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple

from repro.sim.errors import ShardError

#: Payload leaves may only be primitives that survive any transport.
_PRIMITIVES = (int, float, str, bool, type(None))

WireRecord = Tuple[float, int, int, str, int, Tuple[Any, ...]]


def _validate_payload(value: Any, where: str) -> None:
    """Reject payloads that are not nested tuples of primitives."""
    if isinstance(value, tuple):
        for index, item in enumerate(value):
            _validate_payload(item, f"{where}[{index}]")
        return
    # bool is an int subclass; the isinstance check covers both.
    if not isinstance(value, _PRIMITIVES):
        raise ShardError(
            f"malformed cross-shard record: {where} has non-primitive "
            f"type {type(value).__name__}"
        )


class CrossShardEvent:
    """One shard-crossing interaction, ordered by ``(time, src, seq)``."""

    __slots__ = ("time", "src", "seq", "kind", "dst", "payload")

    def __init__(
        self,
        time: float,
        src: int,
        seq: int,
        kind: str,
        dst: int,
        payload: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.src = src
        self.seq = seq
        self.kind = kind
        self.dst = dst
        self.payload = payload

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        """The deterministic merge key (total: ``(src, seq)`` is unique)."""
        return (self.time, self.src, self.seq)

    def to_wire(self) -> WireRecord:
        return (self.time, self.src, self.seq, self.kind, self.dst, self.payload)

    @classmethod
    def from_wire(cls, wire: Any) -> "CrossShardEvent":
        """Decode a wire tuple, validating every field.

        Raises :class:`ShardError` with a readable reason on anything a
        buggy (or fault-injected) worker could have produced.
        """
        if not isinstance(wire, tuple) or len(wire) != 6:
            raise ShardError(
                f"malformed cross-shard record: expected a 6-tuple, got "
                f"{type(wire).__name__} {wire!r}"
            )
        time, src, seq, kind, dst, payload = wire
        if isinstance(time, bool) or not isinstance(time, (int, float)):
            raise ShardError(
                f"malformed cross-shard record: time {time!r} is not a number"
            )
        for label, value in (("src", src), ("seq", seq), ("dst", dst)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ShardError(
                    f"malformed cross-shard record: {label} {value!r} is "
                    "not an integer"
                )
        if not isinstance(kind, str) or not kind:
            raise ShardError(
                f"malformed cross-shard record: kind {kind!r} is not a "
                "non-empty string"
            )
        if not isinstance(payload, tuple):
            raise ShardError(
                f"malformed cross-shard record: payload is "
                f"{type(payload).__name__}, expected tuple"
            )
        _validate_payload(payload, "payload")
        return cls(float(time), src, seq, kind, dst, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CrossShardEvent t={self.time:.3f} src={self.src} "
            f"seq={self.seq} {self.kind} -> host{self.dst}>"
        )


def merge_records(records: Iterable["CrossShardEvent"]) -> List["CrossShardEvent"]:
    """Deterministically order a batch of records for injection.

    Sorts by :attr:`CrossShardEvent.sort_key`. The key is total over any
    legal batch (``(src, seq)`` never repeats), so every permutation of
    the input — e.g. shards answering a barrier in a different order —
    yields the identical merged sequence.
    """
    return sorted(records, key=lambda record: record.sort_key)
