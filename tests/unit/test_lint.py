"""Tests for the ``simlint`` static-analysis pass.

The fixture corpus under ``tests/fixtures/lint/`` carries one violation
per rule id, each line marked with a trailing ``# expect: RULE`` comment;
the tests derive the expected finding set from those markers and demand
exact (file, line, rule) agreement — no extra findings, none missing.
"""

import json
import re
from pathlib import Path

import pytest

from repro.analysis.lint import (
    ALL_RULES,
    lint_paths,
    render_json,
    render_text,
    rule_by_id,
)
from repro.analysis.pragmas import lint_exempt, parse_pragmas
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"
SRC_TREE = REPO_ROOT / "src" / "repro"
SOFTIRQ = SRC_TREE / "kernel" / "softirq.py"

#: Trailing marker naming the rule(s) a fixture line must trigger.
MARKER_RE = re.compile(r"#\s*expect:\s*([A-Z0-9, ]+)")

#: The one serialization call whose removal must wake the race detector.
SERIALIZATION_LINE = "self.raise_net_rx(target_cpu, napi, from_cpu)"


def expected_fixture_findings():
    """(file name, line, rule) tuples derived from ``# expect:`` markers."""
    expected = set()
    for path in sorted(FIXTURES.glob("*.py")):
        for lineno, text in enumerate(
            path.read_text().splitlines(), start=1
        ):
            match = MARKER_RE.search(text)
            if match is None:
                continue
            for rule in match.group(1).replace(" ", "").split(","):
                if rule:
                    expected.add((path.name, lineno, rule))
    return expected


def actual_findings(paths, **kwargs):
    result = lint_paths([str(p) for p in paths], **kwargs)
    return result, {
        (Path(f.path).name, f.line, f.rule) for f in result.findings
    }


class TestFixtureCorpus:
    def test_exact_findings(self):
        result, actual = actual_findings([FIXTURES])
        assert actual == expected_fixture_findings()
        assert not result.ok

    def test_every_rule_is_exercised(self):
        rules_seen = {rule for _, _, rule in expected_fixture_findings()}
        for rule in ALL_RULES:
            assert rule.id in rules_seen, f"no fixture exercises {rule.id}"
        assert "LINT000" in rules_seen
        assert "LINT001" in rules_seen

    def test_clean_twins_stay_clean(self):
        clean = sorted(FIXTURES.glob("*_clean.py"))
        assert clean, "corpus is missing its clean twins"
        result, actual = actual_findings(clean)
        assert result.ok
        assert actual == set()

    def test_findings_are_deterministic(self):
        first, _ = actual_findings([FIXTURES])
        second, _ = actual_findings([FIXTURES])
        assert first.findings == second.findings


class TestSourceTreeIsClean:
    def test_src_lints_clean(self):
        result, actual = actual_findings([REPO_ROOT / "src"])
        assert result.ok, render_text(result)
        assert result.files_checked > 50


class TestRaceDetectorOnSoftirq:
    """Deleting one serialization call must wake RACE301 (on a copy)."""

    def test_verbatim_copy_is_clean(self, tmp_path):
        copy = tmp_path / "softirq_copy.py"
        copy.write_text(SOFTIRQ.read_text())
        result, _ = actual_findings([copy])
        assert result.ok, render_text(result)

    def test_removing_serialization_fires_race301(self, tmp_path):
        lines = SOFTIRQ.read_text().splitlines(keepends=True)
        stripped = [
            line for line in lines if SERIALIZATION_LINE not in line
        ]
        assert len(stripped) == len(lines) - 1, (
            "expected exactly one serialization call to strip; "
            "softirq.py changed shape"
        )
        broken = tmp_path / "softirq_broken.py"
        broken.write_text("".join(stripped))
        result, _ = actual_findings([broken])
        race = [f for f in result.findings if f.rule == "RACE301"]
        assert len(race) == 1
        assert [f.rule for f in result.findings] == ["RACE301"]
        assert "enqueue_backlog" in race[0].message


class TestRuleSelection:
    def test_single_rule_runs_alone(self):
        result, actual = actual_findings([FIXTURES], rule_ids=["SIM101"])
        rules = {rule for _, _, rule in actual}
        # Meta findings (LINT000/LINT001) are always on.
        assert rules <= {"SIM101", "LINT000", "LINT001"}
        assert ("sim101_bad.py", 7, "SIM101") in actual
        assert not any(rule == "DES201" for _, _, rule in actual)

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="BOGUS99"):
            lint_paths([str(FIXTURES)], rule_ids=["BOGUS99"])

    def test_rule_by_id_catalogue(self):
        for rule in ALL_RULES:
            assert rule_by_id(rule.id) is rule
            assert rule.title and rule.rationale


class TestReporters:
    def test_text_format(self):
        result, _ = actual_findings([FIXTURES / "sim101_bad.py"])
        text = render_text(result)
        assert "sim101_bad.py:7:" in text
        assert "SIM101" in text
        assert "1 finding" in text

    def test_json_format(self):
        result, _ = actual_findings([FIXTURES / "sim101_bad.py"])
        payload = json.loads(render_json(result))
        assert payload["ok"] is False
        assert payload["counts_by_rule"] == {"SIM101": 1}
        (finding,) = payload["findings"]
        assert finding["rule"] == "SIM101"
        assert finding["line"] == 7


class TestCli:
    def test_lint_src_exits_zero(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_fixtures_exits_one_with_json(self, capsys):
        code = main(["lint", str(FIXTURES), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts_by_rule"]["RACE301"] == 1

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["lint", str(FIXTURES), "--rule", "BOGUS99"])
        assert code == 2
        assert "BOGUS99" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out


class TestPragmas:
    def test_line_and_file_forms(self):
        pragmas = parse_pragmas(
            "# simlint: disable-file=SIM102\n"
            "x = 1  # simlint: disable=SIM101, DES202\n"
        )
        assert pragmas.suppresses("SIM102", 99)
        assert pragmas.suppresses("SIM101", 2)
        assert pragmas.suppresses("DES202", 2)
        assert not pragmas.suppresses("SIM101", 1)
        assert not pragmas.malformed

    def test_wildcard(self):
        pragmas = parse_pragmas("y = 2  # simlint: disable=all\n")
        assert pragmas.suppresses("RACE301", 1)

    def test_malformed_ids_are_recorded(self):
        pragmas = parse_pragmas("z = 3  # simlint: disable=nope\n")
        assert pragmas.malformed
        assert not pragmas.suppresses("nope", 1)

    def test_string_literals_are_not_pragmas(self):
        pragmas = parse_pragmas('text = "# simlint: disable=SIM101"\n')
        assert not pragmas.suppresses("SIM101", 1)
        assert not pragmas.malformed

    def test_lint_exempt_requires_reason(self):
        with pytest.raises(TypeError):
            lint_exempt("SIM101")  # reason is keyword-only

        with pytest.raises(ValueError):
            lint_exempt("SIM101", reason="   ")

        with pytest.raises(ValueError):
            lint_exempt("lowercase", reason="bad id shape")

    def test_lint_exempt_marks_function(self):
        @lint_exempt("SIM101", reason="test fixture")
        def helper():
            return 0

        assert helper.__simlint_exempt__ == ("SIM101",)
        assert helper() == 0


class TestPragmaBinding:
    """A standalone ``# simlint: disable=`` comment binds to the next
    statement instead of silently suppressing nothing (regression tests
    for the blank/comment-line binding fix)."""

    def test_standalone_pragma_binds_to_next_statement(self):
        pragmas = parse_pragmas(
            "# simlint: disable=SIM101\n"
            "x = 1\n"
        )
        assert pragmas.suppresses("SIM101", 2)
        assert not pragmas.suppresses("SIM101", 1)
        assert not pragmas.malformed

    def test_pragma_skips_blank_and_comment_lines(self):
        pragmas = parse_pragmas(
            "# simlint: disable=DES202\n"
            "\n"
            "# an unrelated comment\n"
            "y = 2\n"
        )
        assert pragmas.suppresses("DES202", 4)
        assert not pragmas.suppresses("DES202", 2)
        assert not pragmas.suppresses("DES202", 3)

    def test_stacked_standalone_pragmas_accumulate(self):
        pragmas = parse_pragmas(
            "# simlint: disable=SIM101\n"
            "# simlint: disable=SIM102\n"
            "z = 3\n"
        )
        assert pragmas.suppresses("SIM101", 3)
        assert pragmas.suppresses("SIM102", 3)

    def test_trailing_pragma_still_binds_to_its_own_line(self):
        pragmas = parse_pragmas("w = 4  # simlint: disable=SIM101\n")
        assert pragmas.suppresses("SIM101", 1)
        assert not pragmas.suppresses("SIM101", 2)

    def test_pragma_at_eof_is_malformed(self):
        pragmas = parse_pragmas(
            "v = 5\n"
            "# simlint: disable=SIM101\n"
        )
        assert not pragmas.suppresses("SIM101", 1)
        assert not pragmas.suppresses("SIM101", 2)
        assert len(pragmas.malformed) == 1
        assert "no code follows" in pragmas.malformed[0][1]

    def test_standalone_pragma_suppresses_through_the_runner(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(
            "import random\n"
            "# simlint: disable=SIM102\n"
            "x = random.random()\n"
        )
        result = lint_paths([str(src)])
        assert result.ok, render_text(result)
        assert [f.rule for f in result.suppressed] == ["SIM102"]

    def test_eof_pragma_is_reported_by_the_runner(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("x = 1\n# simlint: disable=SIM101\n")
        result = lint_paths([str(src)])
        assert [f.rule for f in result.findings] == ["LINT000"]
