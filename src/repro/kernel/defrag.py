"""IP fragment reassembly (``ip_defrag``).

UDP messages larger than the path MTU arrive as IP fragments; the IP
layer holds them until the set is complete, then hands one reassembled
datagram to ``udp_rcv``. Unlike GRO (an opportunistic driver-level
optimization), defragmentation is mandatory and happens in whichever
stack instance owns the destination IP — for overlay traffic, that is the
*container's* stack, so every fragment rides all three overlay softirq
stages before reassembly. That asymmetry is part of why the overlay's
per-packet overhead hits large UDP messages too (Figure 2a).

Incomplete messages (a fragment was dropped upstream) are garbage
collected after a timeout, mirroring the kernel's ipfrag timer, and
counted as ``defrag_timeouts``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kernel.skb import Skb
from repro.sim.engine import Simulator


class DefragEngine:
    """Reassembly table for one network namespace."""

    def __init__(self, sim: Simulator, timeout_us: float = 100_000.0) -> None:
        self.sim = sim
        self.timeout_us = timeout_us
        # (flow_id, msg_id) -> (first skb, fragments seen, bytes, deadline)
        self._table: Dict[Tuple[int, int], List] = {}
        self.reassembled = 0
        self.defrag_timeouts = 0
        self._gc_scheduled = False
        #: Optional :class:`repro.validate.InvariantMonitor` hook.
        self.monitor = None
        #: The stack's :class:`repro.kernel.flowcache.FlowCache` (or None);
        #: expired reassemblies must settle their slow-path reservations.
        self.flowcache = None

    def feed(self, skb: Skb, _cpu_index: int = 0) -> Optional[Skb]:
        """Offer a fragment; returns the reassembled datagram when complete."""
        if skb.frag_count == 1:
            return skb  # not fragmented
        key = (skb.flow.flow_id, skb.msg_id)
        entry = self._table.get(key)
        if entry is None:
            entry = [skb, 0, 0, self.sim.now + self.timeout_us]
            self._table[key] = entry
            self._schedule_gc()
        head = entry[0]
        entry[1] += 1
        entry[2] += skb.size
        if head is not skb and skb.fastpath is not None:
            # Reassembled datagrams may mix datapaths (fast fragments
            # merging with slow ones): the head accumulates the fast
            # count so exit hooks release exactly the slow reservations.
            head.fastpath = (head.fastpath or 0) + skb.fastpath
        if entry[1] < skb.frag_count:
            return None
        # Complete: emit one datagram carrying the whole message.
        del self._table[key]
        head.size = entry[2]
        head.segs = skb.frag_count
        head.frag_count = 1
        head.frag_index = 0
        self.reassembled += 1
        return head

    # ------------------------------------------------------------------
    # Garbage collection of incomplete messages
    # ------------------------------------------------------------------
    def _schedule_gc(self) -> None:
        if not self._gc_scheduled:
            self._gc_scheduled = True
            self.sim.post(self.timeout_us, self._gc)

    def _gc(self) -> None:
        self._gc_scheduled = False
        now = self.sim.now
        expired = [key for key, entry in self._table.items() if entry[3] <= now]
        for key in expired:
            entry = self._table.pop(key)
            self.defrag_timeouts += 1
            if self.flowcache is not None:
                self.flowcache.defrag_expired(entry[0], entry[1])
            if self.monitor is not None:
                # entry[1] wire packets leave the pipeline with the entry.
                self.monitor.on_defrag_timeout(entry[1])
        if self._table:
            self._schedule_gc()

    @property
    def pending(self) -> int:
        return len(self._table)

    @property
    def pending_packets(self) -> int:
        """Wire packets (fragments) held by incomplete reassemblies."""
        return sum(entry[1] for entry in self._table.values())
