"""Per-run simulation context.

A :class:`SimContext` bundles everything one simulation run owns — the
event loop, the seeded RNG registry, the cost model, and the optional
monitor / trace sinks — into a single object constructed once per run
and threaded through the hardware and kernel layers. Before this
existed, each component carried its own ``sim`` / ``rng`` / ``monitor``
attributes wired up ad hoc, which made it easy for two "isolated" stacks
in one process to share state by accident. With an explicit context:

* every component belonging to a run reaches the same simulator and RNG
  registry through one handle;
* monitor and tracer attachment is a context-level operation that fans
  out to every registered hot-path sink, instead of a hand-maintained
  list of attribute assignments;
* two contexts in one process share nothing, so worker processes (or
  threads of a future parallel runner, and multi-host topologies today)
  can each own a fully isolated simulation.

Ownership rules
---------------
The context *owns* the run: one ``SimContext`` per simulated world, one
``Simulator`` and one ``RngRegistry`` per context. Components never
stash a second path to the simulator — :class:`~repro.hw.topology.Machine`
and :class:`~repro.kernel.stack.NetworkStack` keep their ``.sim``
attributes for compatibility, but those are the context's simulator.
Hot-path objects that consult ``monitor`` register themselves via
:meth:`SimContext.register_monitored` at construction time and keep a
plain ``monitor`` attribute that the context writes on attach/detach, so
the per-event cost of an unmonitored run stays one attribute check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Union

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:  # CostModel lives a layer above repro.sim.
    from repro.kernel.costs import CostModel


class SimContext:
    """Everything one simulation run owns, in one handle.

    >>> ctx = SimContext(seed=7, name="demo")
    >>> ctx.sim.now
    0.0
    >>> ctx.stream("ipi-jitter") is ctx.stream("ipi-jitter")
    True
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        rng: Optional[RngRegistry] = None,
        costs: Optional["CostModel"] = None,
        *,
        seed: int = 0,
        name: str = "run",
        scheduler: Union[str, Scheduler, None] = None,
    ) -> None:
        self.sim = sim if sim is not None else Simulator(scheduler)
        self.rng = rng if rng is not None else RngRegistry(seed)
        #: The run's cost model; filled in by the stack when it resolves
        #: its configuration, or passed explicitly.
        self.costs: Optional["CostModel"] = costs
        self.name = name
        #: Optional :class:`repro.validate.InvariantMonitor`.
        self.monitor: Optional[Any] = None
        #: Optional :class:`repro.metrics.tracing.PacketTracer`.
        self.tracer: Optional[Any] = None
        self._monitored: List[Any] = [self.sim]

    # ------------------------------------------------------------------
    # RNG streams
    # ------------------------------------------------------------------
    def stream(self, stream_name: str) -> Any:
        """Named deterministic RNG stream (see :class:`RngRegistry`)."""
        return self.rng.stream(stream_name)

    # ------------------------------------------------------------------
    # Monitor / tracer fan-out
    # ------------------------------------------------------------------
    def register_monitored(self, *sinks: Any) -> None:
        """Register hot-path objects whose ``monitor`` attribute this
        context manages. Called by components at construction time."""
        monitor = self.monitor
        for sink in sinks:
            self._monitored.append(sink)
            if monitor is not None:
                sink.monitor = monitor

    def attach_monitor(self, monitor: Any) -> None:
        """Point every registered sink's ``monitor`` at ``monitor``."""
        self.monitor = monitor
        for sink in self._monitored:
            sink.monitor = monitor

    def detach_monitor(self) -> None:
        """Clear ``monitor`` on every registered sink."""
        self.monitor = None
        for sink in self._monitored:
            sink.monitor = None

    def attach_tracer(self, tracer: Optional[Any]) -> None:
        """Install (or clear, with None) the run's packet tracer."""
        self.tracer = tracer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimContext {self.name!r} t={self.sim.now:.3f}us "
            f"sinks={len(self._monitored)}>"
        )
