"""Clean twin of flow404_bad: every drop is accounted for."""


class BacklogPressure:
    def __init__(self):
        self.drops = 0

    def shed(self, stack, skb):
        self.drops += 1
        stack.kfree_skb(skb)


def shed_oldest(stack, monitor, old_skb):
    monitor.on_terminal(old_skb, "backlog_drop")
    stack.drop_skb(old_skb)
