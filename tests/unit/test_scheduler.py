"""Unit tests for the pluggable schedulers and their shared mechanics.

Covers the Scheduler protocol implementations directly (ordering,
lazy-cancellation discard, compaction) and the engine-level behaviours
that ride on them: lazy-pop ``peek_time``, the cancellation-leak fix,
freelist recycling of ``post*`` events, and environment-variable
scheduler selection.
"""

import pytest

from repro.sim.engine import SCHEDULER_ENV_VAR, Simulator
from repro.sim.events import Event
from repro.sim.scheduler import (
    COMPACT_MIN_EVENTS,
    CalendarScheduler,
    HeapScheduler,
    SCHEDULER_NAMES,
    make_scheduler,
)

SCHEDULERS = [HeapScheduler, CalendarScheduler]


# ----------------------------------------------------------------------
# Construction / selection
# ----------------------------------------------------------------------
def test_make_scheduler_names():
    assert isinstance(make_scheduler("heap"), HeapScheduler)
    assert isinstance(make_scheduler("calendar"), CalendarScheduler)
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("fifo")


def test_env_var_selects_scheduler(monkeypatch):
    monkeypatch.setenv(SCHEDULER_ENV_VAR, "calendar")
    assert isinstance(Simulator().scheduler, CalendarScheduler)
    monkeypatch.setenv(SCHEDULER_ENV_VAR, "heap")
    assert isinstance(Simulator().scheduler, HeapScheduler)
    monkeypatch.delenv(SCHEDULER_ENV_VAR)
    assert isinstance(Simulator().scheduler, HeapScheduler)


def test_explicit_scheduler_overrides_env(monkeypatch):
    monkeypatch.setenv(SCHEDULER_ENV_VAR, "calendar")
    assert isinstance(Simulator("heap").scheduler, HeapScheduler)
    custom = CalendarScheduler(bucket_width_us=2.0, num_buckets=64)
    assert Simulator(custom).scheduler is custom


def test_calendar_rejects_degenerate_geometry():
    with pytest.raises(ValueError):
        CalendarScheduler(bucket_width_us=0.0)
    with pytest.raises(ValueError):
        CalendarScheduler(num_buckets=1)


# ----------------------------------------------------------------------
# Protocol-level ordering
# ----------------------------------------------------------------------
def _event(time, seq):
    return Event(time, seq, lambda: None, ())


@pytest.mark.parametrize("cls", SCHEDULERS)
def test_pop_orders_by_time_then_seq(cls):
    sched = cls()
    sched.push(_event(5.0, 3))
    sched.push(_event(1.0, 1))
    sched.push(_event(5.0, 2))
    sched.push(_event(0.5, 0))
    order = []
    while True:
        event = sched.pop()
        if event is None:
            break
        order.append((event.time, event.seq))
    assert order == [(0.5, 0), (1.0, 1), (5.0, 2), (5.0, 3)]
    assert len(sched) == 0


@pytest.mark.parametrize("cls", SCHEDULERS)
def test_peek_returns_next_live_without_removing(cls):
    sched = cls()
    first = _event(1.0, 0)
    second = _event(2.0, 1)
    sched.push(first)
    sched.push(second)
    assert sched.peek() is first
    assert len(sched) == 2
    first.cancelled = True
    sched.note_cancel(first)
    # Lazy-pop: the cancelled head is discarded as a side effect.
    assert sched.peek() is second
    assert sched.pop() is second
    assert sched.peek() is None


@pytest.mark.parametrize("cls", SCHEDULERS)
def test_push_many_preserves_seq_order_on_ties(cls):
    sched = cls()
    batch = [_event(3.0, seq) for seq in range(16)]
    sched.push_many(batch)
    sched.push(_event(1.0, 99))
    popped = []
    while len(sched):
        popped.append(sched.pop().seq)
    assert popped == [99] + list(range(16))


def test_calendar_overflow_and_rebase():
    # Events far beyond the wheel window live in the overflow; once the
    # wheel drains, the window rebases onto them and order still holds.
    sched = CalendarScheduler(bucket_width_us=1.0, num_buckets=8)
    far = [_event(1000.0 + step, 10 + step) for step in range(3)]
    near = [_event(float(step), step) for step in range(3)]
    for event in far + near:
        sched.push(event)
    popped = [sched.pop().time for _ in range(6)]
    assert popped == [0.0, 1.0, 2.0, 1000.0, 1001.0, 1002.0]


def test_calendar_push_below_cursor_rescans():
    # peek() advances the cursor; a later push landing in an earlier
    # bucket must rewind it or the event would be skipped.
    sched = CalendarScheduler(bucket_width_us=1.0, num_buckets=16)
    sched.push(_event(9.0, 0))
    assert sched.peek().time == 9.0
    early = _event(2.0, 1)
    sched.push(early)
    assert sched.peek() is early
    assert sched.pop() is early
    assert sched.pop().time == 9.0


# ----------------------------------------------------------------------
# Cancellation leak + compaction (the regression this PR fixes)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_cancel_heavy_workload_compacts_queue(name):
    """Schedule-and-cancel no longer grows the queue without bound."""
    sim = Simulator(name)
    keep = []
    total = 4 * COMPACT_MIN_EVENTS
    for index in range(total):
        handle = sim.schedule(1000.0 + index, lambda: None)
        if index % 64 == 0:
            keep.append(handle)
        else:
            sim.cancel(handle)
    live = len(keep)
    # Without compaction, pending() would still be `total`.
    assert sim.pending() < 2 * max(live, COMPACT_MIN_EVENTS)
    sim.run()
    assert sim.events_processed == live


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_compaction_preserves_order_and_future_cancels(name):
    sim = Simulator(name)
    fired = []
    handles = [
        sim.schedule(float(index % 50), fired.append, index)
        for index in range(2 * COMPACT_MIN_EVENTS)
    ]
    # Cancel enough to force at least one compaction...
    for handle in handles[: COMPACT_MIN_EVENTS + COMPACT_MIN_EVENTS // 2]:
        sim.cancel(handle)
    # ...then cancel survivors afterwards: their handles must still be
    # honoured even though compaction rebuilt the queue around them.
    for handle in handles[-8:]:
        sim.cancel(handle)
    sim.run()
    expected = [
        index
        for index in range(
            COMPACT_MIN_EVENTS + COMPACT_MIN_EVENTS // 2,
            2 * COMPACT_MIN_EVENTS - 8,
        )
    ]
    assert sorted(fired) == expected
    times = [index % 50 for index in fired]
    assert times == sorted(times)


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    sim.run()
    sim.cancel(handle)  # already ran; must not corrupt scheduler counters
    sim.cancel(handle)
    sim.schedule(1.0, fired.append, "z")
    sim.run()
    assert fired == ["x", "y", "z"]


# ----------------------------------------------------------------------
# peek_time (lazy-pop fix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_peek_time_skips_cancelled_head(name):
    sim = Simulator(name)
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    assert sim.peek_time() == 1.0
    sim.cancel(first)
    assert sim.peek_time() == 5.0
    assert sim.events_processed == 0  # peek never executes anything
    sim.run()
    assert sim.peek_time() is None


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_peek_time_many_cancelled(name):
    sim = Simulator(name)
    handles = [sim.schedule(float(i), lambda: None) for i in range(100)]
    for handle in handles[:99]:
        sim.cancel(handle)
    assert sim.peek_time() == 99.0


# ----------------------------------------------------------------------
# Freelist recycling of post* events
# ----------------------------------------------------------------------
def test_post_events_are_recycled():
    sim = Simulator()
    for _ in range(10):
        sim.post(1.0, lambda: None)
    sim.run()
    recycled = list(sim._freelist)
    assert len(recycled) == 10
    # The same objects are reused for subsequent posts...
    sim.post(1.0, lambda: None)
    assert sim._freelist == recycled[:-1]
    # ...and schedule() handles are never recycled (they can escape).
    handle = sim.schedule(1.0, lambda: None)
    assert not handle.reusable
    sim.run()
    assert handle not in sim._freelist


def test_post_batch_runs_in_args_order():
    sim = Simulator()
    fired = []
    count = sim.post_batch(2.0, fired.append, [(i,) for i in range(32)])
    assert count == 32
    sim.post(1.0, fired.append, "first")
    sim.run()
    assert fired == ["first"] + list(range(32))
    assert sim.now == 2.0


def test_post_rejects_negative_delay():
    from repro.sim.errors import SimulationError

    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.post(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.post_batch(-1.0, lambda: None, [()])
    sim.post(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.post_at(1.0, lambda: None)
