"""Clean twin of sim103_bad: ties break on explicit sequence numbers."""


def drain_in_order(events):
    return sorted(events, key=lambda event: (event.time, event.seq))
