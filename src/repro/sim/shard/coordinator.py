"""Conservative window-barrier synchronization across shards.

The :class:`ShardCoordinator` drives N shards — each an isolated
simulated world with its own :class:`~repro.sim.engine.Simulator` —
through the classic synchronous conservative discipline (the
null-message/window-barrier family of parallel DES):

1. every shard reports the timestamp of its earliest pending event;
2. the coordinator sets the barrier ``window_end = min(next) +
   lookahead``, where the lookahead is the minimum simulated latency any
   shard-crossing interaction needs (see :mod:`repro.hw.lookahead`);
3. every shard processes all events strictly below ``window_end``
   concurrently, collecting the cross-shard records it produced;
4. the records are routed and merged into their destination shards in
   ``(time, src, seq)`` order before the next window opens.

Why this is safe: an event executed inside a window has time ``t >=
min(next)``, so anything it emits for another shard arrives at ``t +
latency >= min(next) + lookahead = window_end`` — never inside the
window that produced it. The coordinator *checks* that bound on every
record and raises :class:`~repro.sim.errors.ShardError` on a violation
(a misdeclared lookahead would otherwise silently corrupt causality).
The same bound is enforced *statically* by ``repro order`` (ORD511):
every ``emit`` timestamp must be provably ``now + propagation``-shaped,
so a violation is caught at review time for every partition — not just
the shard layouts a test run happens to exercise.

Why it is deterministic: the barrier sequence depends only on the global
set of pending event times, which is partition-invariant, and the merge
key is total and built from global host indexes — so a 1-shard run and
an N-shard run inject exactly the same records in exactly the same
order at exactly the same barriers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.sim.errors import ShardError
from repro.sim.shard.records import CrossShardEvent, merge_records


class ShardProgram(Protocol):
    """One shard's simulated world, as the coordinator sees it."""

    def next_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or None when idle."""
        ...

    def advance(self, bound: float, inclusive: bool = False) -> List[CrossShardEvent]:
        """Process events with time < ``bound`` (<= when ``inclusive``);
        return the cross-shard records produced."""
        ...

    def inject(self, records: Sequence[CrossShardEvent]) -> None:
        """Schedule remote records, in the given (already merged) order."""
        ...

    def hosts(self) -> Sequence[int]:
        """Global host indexes simulated by this shard."""
        ...

    def finalize(self) -> Dict[str, Any]:
        """Collect results once the run is over (wire-safe primitives)."""
        ...


class ShardHandle(Protocol):
    """Transport wrapper around one shard (in-process or worker)."""

    index: int

    def begin_step(
        self,
        bound: float,
        inclusive: bool,
        records: Sequence[CrossShardEvent],
    ) -> None:
        """Issue one window step (inject ``records``, then advance)."""
        ...

    def finish_step(self) -> Tuple[Optional[float], List[CrossShardEvent]]:
        """Collect the step's reply: (next event time, produced records)."""
        ...

    def hosts(self) -> Sequence[int]:
        ...

    def finalize(self) -> Dict[str, Any]:
        ...

    def close(self) -> None:
        ...


class InlineShardHandle:
    """Runs a :class:`ShardProgram` in-process.

    This is both the 1-shard reference configuration and the
    deterministic N-shard test harness: the coordinator logic, record
    routing and merge discipline are byte-for-byte the ones the process
    transport uses — only the answering happens synchronously.
    """

    def __init__(self, index: int, program: ShardProgram) -> None:
        self.index = index
        self._program = program
        self._reply: Optional[Tuple[Optional[float], List[CrossShardEvent]]] = None

    def begin_step(
        self,
        bound: float,
        inclusive: bool,
        records: Sequence[CrossShardEvent],
    ) -> None:
        self._program.inject(records)
        produced = self._program.advance(bound, inclusive)
        self._reply = (self._program.next_time(), produced)

    def finish_step(self) -> Tuple[Optional[float], List[CrossShardEvent]]:
        if self._reply is None:
            raise ShardError(f"shard {self.index}: finish_step before begin_step")
        reply, self._reply = self._reply, None
        return reply

    def hosts(self) -> Sequence[int]:
        return self._program.hosts()

    def finalize(self) -> Dict[str, Any]:
        return self._program.finalize()

    def close(self) -> None:  # nothing to tear down in-process
        return None


class ShardCoordinator:
    """Drives shards window by window; owns routing and the barrier math."""

    def __init__(
        self,
        handles: Sequence[ShardHandle],
        lookahead_us: float,
        record_windows: bool = False,
    ) -> None:
        if not handles:
            raise ShardError("coordinator needs at least one shard")
        if lookahead_us <= 0:
            raise ShardError(
                f"lookahead must be strictly positive, got {lookahead_us}"
            )
        self.handles = list(handles)
        self.lookahead_us = lookahead_us
        #: Which shard simulates each global host (for record routing).
        self._shard_of_host: Dict[int, int] = {}
        for slot, handle in enumerate(self.handles):
            for host in handle.hosts():
                if host in self._shard_of_host:
                    raise ShardError(
                        f"host {host} assigned to two shards "
                        f"({self._shard_of_host[host]} and {slot})"
                    )
                self._shard_of_host[host] = slot
        #: Undelivered records per shard slot, already merged.
        self._inbox: List[List[CrossShardEvent]] = [[] for _ in self.handles]
        self._nexts: List[Optional[float]] = [None for _ in self.handles]
        self._primed = False
        # --- statistics / debugging -----------------------------------
        self.windows_run = 0
        self.records_exchanged = 0
        #: When ``record_windows``: (window_end, [record sort keys routed
        #: out of that window]) per window — the property tests use this
        #: to check that no record undercuts the barrier that bounds it.
        self.window_log: List[Tuple[float, List[Tuple[float, int, int]]]] = []
        self._record_windows = record_windows

    # ------------------------------------------------------------------
    def _step_all(self, bound: float, inclusive: bool) -> None:
        """One barrier: deliver inboxes, advance every shard, route."""
        # Issue the step to every shard before collecting any reply —
        # with the process transport this is what makes shards actually
        # run concurrently.
        for slot, handle in enumerate(self.handles):
            handle.begin_step(bound, inclusive, self._inbox[slot])
            self._inbox[slot] = []
        produced: List[CrossShardEvent] = []
        for slot, handle in enumerate(self.handles):
            next_time, records = handle.finish_step()
            self._nexts[slot] = next_time
            produced.extend(records)
        routed: List[Tuple[float, int, int]] = []
        if produced:
            for record in produced:
                if not inclusive and record.time < bound:
                    raise ShardError(
                        f"causality violation: shard of host {record.src} "
                        f"produced a record at t={record.time} inside the "
                        f"window ending at t={bound} — lookahead "
                        f"{self.lookahead_us} is not a safe bound"
                    )
                slot = self._shard_of_host.get(record.dst)
                if slot is None:
                    raise ShardError(
                        f"record addressed to unknown host {record.dst}"
                    )
                self._inbox[slot].append(record)
                routed.append(record.sort_key)
            self.records_exchanged += len(routed)
            for slot in range(len(self.handles)):
                if self._inbox[slot]:
                    self._inbox[slot] = merge_records(self._inbox[slot])
        if self._record_windows:
            self.window_log.append((bound, routed))
        # A shard's effective next event includes what we just routed to
        # it but have not delivered yet (saves a poll round-trip).
        for slot in range(len(self.handles)):
            pending = self._inbox[slot]
            if pending:
                earliest = pending[0].time
                current = self._nexts[slot]
                if current is None or earliest < current:
                    self._nexts[slot] = earliest

    def _global_next(self) -> Optional[float]:
        live = [t for t in self._nexts if t is not None]
        return min(live) if live else None

    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Advance the cluster through ``until`` (µs).

        Guarantees every event with time <= ``until`` is processed.
        Window granularity means events up to one lookahead *past*
        ``until`` may also run — deterministically so: the barrier
        sequence is a pure function of the global pending-event set, so
        any partition of hosts into shards overshoots identically.
        """
        if not self._primed:
            # Zero-width priming step: delivers nothing, processes
            # nothing (bound 0.0 is exclusive), reports initial clocks.
            self._step_all(0.0, False)
            self._primed = True
        while True:
            t_min = self._global_next()
            if t_min is None or t_min > until:
                break
            self._step_all(t_min + self.lookahead_us, False)
            self.windows_run += 1
        # Final inclusive step: deliver any still-undelivered records
        # (they all lie beyond ``until``) and let every clock reach
        # ``until`` so a subsequent run() continues cleanly.
        self._step_all(until, True)

    # ------------------------------------------------------------------
    def finalize(self) -> List[Dict[str, Any]]:
        """Per-shard results, in shard order."""
        return [handle.finalize() for handle in self.handles]

    def close(self) -> None:
        for handle in self.handles:
            handle.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
