"""Property-based tests for the statistics primitives."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import LatencyRecorder, RateMeter, WelfordAccumulator

finite_floats = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_floats, min_size=1, max_size=500))
def test_percentiles_match_nearest_rank_reference(samples):
    rec = LatencyRecorder()
    for value in samples:
        rec.record(value)
    ordered = sorted(samples)
    for pct in (1, 25, 50, 90, 99, 100):
        rank = max(math.ceil(pct / 100.0 * len(ordered)), 1)
        assert rec.percentile(pct) == ordered[rank - 1]


@given(st.lists(finite_floats, min_size=1, max_size=300))
def test_percentile_monotonic_in_p(samples):
    rec = LatencyRecorder()
    for value in samples:
        rec.record(value)
    values = [rec.percentile(p) for p in (0, 10, 50, 90, 99, 100)]
    assert values == sorted(values)


@given(st.lists(finite_floats, min_size=1, max_size=300))
def test_percentile_bounded_by_extremes(samples):
    rec = LatencyRecorder()
    for value in samples:
        rec.record(value)
    assert min(samples) <= rec.percentile(50) <= max(samples)
    assert rec.mean <= max(samples) + 1e-6
    assert rec.mean >= min(samples) - 1e-6


@given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
def test_welford_matches_direct_computation(samples):
    acc = WelfordAccumulator()
    for value in samples:
        acc.add(value)
    mean = sum(samples) / len(samples)
    var = sum((v - mean) ** 2 for v in samples) / (len(samples) - 1)
    assert acc.mean == pytest_approx(mean)
    assert acc.variance == pytest_approx(var, rel=1e-6, abs=1e-6)


def pytest_approx(value, rel=1e-9, abs=1e-9):
    import pytest

    return pytest.approx(value, rel=rel, abs=abs)


@given(
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=200),
    st.floats(min_value=1.0, max_value=1e6),
)
def test_rate_meter_arithmetic(sizes, window_us):
    meter = RateMeter()
    meter.open_window(0.0)
    for size in sizes:
        meter.record(size)
    meter.close_window(window_us)
    assert meter.count == len(sizes)
    assert meter.rate_per_sec() == pytest_approx(len(sizes) / window_us * 1e6)
    assert meter.gbps() == pytest_approx(sum(sizes) * 8 / (window_us * 1e-6) / 1e9)
