"""Figure 4 — interrupt rates, native vs overlay."""

import pytest
from conftest import run_figure

from repro.experiments import fig04_interrupts


def test_fig04_interrupts(benchmark, quick):
    out = run_figure(benchmark, fig04_interrupts, quick)
    series = out.series["interrupts"]

    # The overlay executes ~3x the device softirqs per packet (the
    # paper's Figure 4 NET_RX bars measure 3.6x).
    host_dev, con_dev = series["device_softirqs"]
    assert host_dev == pytest.approx(1.0, abs=0.1)
    assert 2.5 < con_dev / host_dev < 4.0

    # Raise demand doubles (per-device raises incl. the steering hop).
    host_raises, con_raises = series["NET_RX_raises"]
    assert 1.7 < con_raises / host_raises < 4.5

    # Hardware interrupt rate stays comparable (NAPI masks under load).
    host_hw, con_hw = series["hardirq"]
    assert con_hw < 3.0 * max(host_hw, 1.0)
