"""Skb typestate analysis (FLOW401–FLOW404).

Tracks :class:`~repro.kernel.skb.Skb`-valued locals through the packet
pipeline using the derived :mod:`stage order spec
<repro.analysis.flow.stagespec>`: every call that the spec recognises
(a stage step, a backlog enqueue, socket delivery, a free/drop) moves
the variable's abstract position forward. The analysis is:

* **path-sensitive** — a worklist fixpoint over the function's CFG with
  set-union join, so branches and loops are handled;
* **interprocedural** — each analyzed function gets a *summary* (the
  exit typestate of its skb parameters), iterated to a project-wide
  fixpoint, so a helper that delivers a packet poisons its callers'
  state at the call site;
* **must-violation only** — a finding is reported only when *every*
  abstract position reaching the call is illegal for it, which keeps
  the pass quiet on the (clean) in-tree sources.

Rules:

``FLOW401``  out-of-order stage call (packet moves backwards in the
             derived stage order);
``FLOW402``  packet re-enters the pipeline after ``SocketDeliver``;
``FLOW403``  double free / use after free;
``FLOW404``  drop (``kfree_skb``-style op) with no drop-counter
             increment in the enclosing function.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.flow.cfg import Cfg, build_cfg
from repro.analysis.flow.engine import call_sites, fixpoint, walk_block
from repro.analysis.flow.stagespec import (
    KIND_ALLOC,
    KIND_DELIVER,
    KIND_DROP,
    KIND_FREE,
    StageOrderSpec,
    stage_order_spec,
)
from repro.analysis.lint.core import FileContext, Finding, Project, Rule

#: Abstract state: variable name -> set of possible pipeline ranks.
State = Dict[str, FrozenSet[int]]

#: Rounds of project-wide summary iteration (call chains deeper than
#: this many skb-handoff levels degrade to "no summary", never to a
#: false finding).
_SUMMARY_ROUNDS = 5

#: Attribute-name fragments that count as drop accounting (FLOW404).
_COUNTER_FRAGMENTS = ("drop", "count", "stat")

#: Calls that count as drop accounting (the monitor / counters APIs).
_COUNTER_CALLS = ("on_terminal", "record")


def _is_skb_name(name: str, annotation: Optional[ast.expr] = None) -> bool:
    if name == "skb" or name.endswith("_skb") or name.startswith("skb_"):
        return True
    if annotation is not None:
        tail = annotation
        if isinstance(tail, ast.Attribute):
            return tail.attr == "Skb"
        if isinstance(tail, ast.Name):
            return tail.id == "Skb"
        if isinstance(tail, ast.Constant) and isinstance(tail.value, str):
            return tail.value.split(".")[-1] == "Skb"
    return False


@dataclass(frozen=True)
class _RawFinding:
    path: str
    line: int
    col: int
    rule: str
    message: str


@dataclass
class _Summary:
    """Exit typestate of one function's skb parameters."""

    #: param name -> exit position set (absent = untouched by any op).
    exits: Dict[str, FrozenSet[int]]


class _FunctionAnalysis:
    """The per-function forward dataflow (engine client)."""

    def __init__(
        self,
        ctx: FileContext,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        spec: StageOrderSpec,
        summaries: Dict[str, List[_Summary]],
        report: Optional[List[_RawFinding]] = None,
    ) -> None:
        self.ctx = ctx
        self.func = func
        self.spec = spec
        self.summaries = summaries
        self.report = report
        self.unknown = frozenset(
            rank
            for rank in spec.stage_rank.values()
            if rank < spec.delivered_rank
        )
        self.delivered = frozenset((spec.delivered_rank,))
        self.freed = frozenset((spec.freed_rank,))
        self._has_drop_counter: Optional[bool] = None

    # -- engine contract ------------------------------------------------
    def initial(self, cfg: Cfg) -> State:
        state: State = {}
        args = cfg.func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg in ("self", "cls"):
                continue
            if _is_skb_name(arg.arg, arg.annotation):
                state[arg.arg] = self.unknown
        return state

    def join(self, a: State, b: State) -> State:
        if a == b:
            return a
        out = dict(a)
        for key, value in b.items():
            existing = out.get(key)
            out[key] = value if existing is None else existing | value
        return out

    def transfer(self, stmt: ast.stmt, state: State) -> State:
        state = dict(state)
        for call, name in sorted(
            call_sites(stmt), key=lambda pair: (pair[0].lineno, pair[0].col_offset)
        ):
            self._apply_call(call, name, state)
        if isinstance(stmt, ast.Assign):
            self._apply_assign(stmt.targets, stmt.value, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._apply_assign([stmt.target], stmt.value, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_fresh(stmt.target, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind_fresh(item.optional_vars, state)
        return state

    # -- transfer pieces ------------------------------------------------
    def _apply_assign(
        self, targets: List[ast.expr], value: ast.expr, state: State
    ) -> None:
        new: Optional[FrozenSet[int]] = None
        if isinstance(value, ast.Call):
            callee = value.func
            tail = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None
            )
            op = self.spec.ops.get(tail) if tail else None
            if op is not None and op.kind == KIND_ALLOC:
                new = frozenset(op.ranks)
        elif isinstance(value, ast.Name) and value.id in state:
            new = state[value.id]
        for target in targets:
            if isinstance(target, ast.Name):
                if new is not None:
                    state[target.id] = new
                elif _is_skb_name(target.id):
                    state[target.id] = self.unknown
                else:
                    state.pop(target.id, None)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._bind_fresh(element, state)

    def _bind_fresh(self, target: ast.expr, state: State) -> None:
        """A name (re)bound from an opaque source: skb-like names go to
        the unknown position, anything else stops being tracked."""
        if isinstance(target, ast.Name):
            if _is_skb_name(target.id):
                state[target.id] = self.unknown
            else:
                state.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_fresh(element, state)
        elif isinstance(target, ast.Starred):
            self._bind_fresh(target.value, state)

    def _tracked_args(self, call: ast.Call, state: State) -> List[str]:
        names: List[str] = []
        for arg in (*call.args, *[kw.value for kw in call.keywords]):
            if isinstance(arg, ast.Name) and arg.id in state:
                names.append(arg.id)
        return names

    def _apply_call(self, call: ast.Call, name: str, state: State) -> None:
        op = self.spec.ops.get(name)
        if op is None:
            self._apply_summary(call, name, state)
            return
        if op.kind == KIND_ALLOC:
            return  # handled at the assignment that binds the result
        for var in self._tracked_args(call, state):
            state[var] = self._step_var(call, name, op.kind, op.ranks, var, state[var])

    def _apply_summary(self, call: ast.Call, name: str, state: State) -> None:
        candidates = self.summaries.get(name)
        if not candidates:
            return
        exits: List[FrozenSet[int]] = []
        for summary in candidates:
            exits.extend(summary.exits.values())
        if not exits:
            return
        merged = frozenset().union(*exits)
        for var in self._tracked_args(call, state):
            current = state[var]
            if current == self.freed or current == self.delivered:
                # Passing a finished packet into a pipeline helper is the
                # caller's bug; report it as a use of the dead object.
                rule = "FLOW403" if current == self.freed else "FLOW402"
                verb = (
                    "used after free"
                    if rule == "FLOW403"
                    else "handed back to the pipeline after SocketDeliver"
                )
                self._emit(
                    call,
                    rule,
                    f"skb '{var}' {verb} via call to '{name}'",
                )
            state[var] = merged

    def _step_var(
        self,
        call: ast.Call,
        name: str,
        kind: str,
        ranks: FrozenSet[int],
        var: str,
        positions: FrozenSet[int],
    ) -> FrozenSet[int]:
        spec = self.spec
        if positions == self.freed:
            self._emit(
                call,
                "FLOW403",
                f"skb '{var}' {'double-freed' if kind in (KIND_FREE, KIND_DROP) else 'used after free'} "
                f"by '{name}'",
            )
            return self.freed
        if positions == self.delivered:
            if kind in (KIND_FREE, KIND_DROP):
                return self.freed  # normal end of life after delivery
            self._emit(
                call,
                "FLOW402",
                f"skb '{var}' re-enters the pipeline via '{name}' after "
                "SocketDeliver — delivery is terminal in the stage graph",
            )
            return self.delivered
        if kind == KIND_DELIVER:
            return self.delivered
        if kind == KIND_FREE:
            return self.freed
        if kind == KIND_DROP:
            if not self._drop_is_counted():
                self._emit(
                    call,
                    "FLOW404",
                    f"skb '{var}' dropped via '{name}' but "
                    f"'{self.func.name}' never increments a drop counter "
                    "(the conservation invariants need every loss accounted)",
                )
            return self.freed
        # step / enqueue / hardirq: forward-motion check.
        ceiling = max(ranks)
        if positions and all(position > ceiling for position in positions):
            came_from = ", ".join(
                sorted(spec.rank_label(position) for position in positions)
            )
            goes_to = ", ".join(sorted(spec.rank_label(rank) for rank in ranks))
            self._emit(
                call,
                "FLOW401",
                f"out-of-order stage call: skb '{var}' already past "
                f"stage(s) {came_from} is handed to '{name}' "
                f"(stage {goes_to}) — the derived stage order only moves "
                "forward",
            )
            return frozenset(ranks)
        floor = min(positions) if positions else 0
        refined = frozenset(rank for rank in ranks if rank >= floor)
        return refined or frozenset(ranks)

    def _drop_is_counted(self) -> bool:
        if self._has_drop_counter is None:
            self._has_drop_counter = _function_counts_drops(self.func)
        return self._has_drop_counter

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if self.report is None:
            return
        self.report.append(
            _RawFinding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )


def _function_counts_drops(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            target = node.target
            label = (
                target.attr
                if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else ""
            )
            if any(fragment in label.lower() for fragment in _COUNTER_FRAGMENTS):
                return True
        if isinstance(node, ast.Call):
            callee = node.func
            tail = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None
            )
            if tail in _COUNTER_CALLS:
                return True
    return False


# ----------------------------------------------------------------------
# Project-level driver (shared by the four FLOW rules)
# ----------------------------------------------------------------------
def _project_functions(
    project: Project,
) -> List[Tuple[FileContext, "ast.FunctionDef | ast.AsyncFunctionDef"]]:
    pairs = []
    for ctx in project.files:
        if ctx.tree is None:
            continue
        for func in ctx.functions():
            pairs.append((ctx, func))
    return pairs


def _compute_summaries(
    pairs: List[Tuple[FileContext, "ast.FunctionDef | ast.AsyncFunctionDef"]],
    spec: StageOrderSpec,
) -> Dict[str, List[_Summary]]:
    summaries: Dict[str, List[_Summary]] = {}
    for _round in range(_SUMMARY_ROUNDS):
        next_summaries: Dict[str, List[_Summary]] = {}
        for ctx, func in pairs:
            analysis = _FunctionAnalysis(ctx, func, spec, summaries, report=None)
            cfg = build_cfg(func)
            seeded = analysis.initial(cfg)
            if not seeded:
                continue
            states = fixpoint(cfg, analysis)
            exit_state = states.get(cfg.exit, {})
            exits = {
                name: exit_state[name]
                for name in seeded
                if name in exit_state and exit_state[name] != seeded[name]
            }
            if exits:
                next_summaries.setdefault(func.name, []).append(_Summary(exits))
        if _stable(summaries, next_summaries):
            return next_summaries
        summaries = next_summaries
    return summaries


def _stable(
    old: Dict[str, List[_Summary]], new: Dict[str, List[_Summary]]
) -> bool:
    if old.keys() != new.keys():
        return False
    for key in old:
        if [summary.exits for summary in old[key]] != [
            summary.exits for summary in new[key]
        ]:
            return False
    return True


#: Per-project memo so the four FLOW rules run the analysis once.
_FINDINGS_CACHE: Dict[int, List[_RawFinding]] = {}


def typestate_findings(project: Project) -> List[_RawFinding]:
    key = id(project)
    cached = _FINDINGS_CACHE.get(key)
    if cached is not None:
        return cached
    spec = stage_order_spec()
    pairs = _project_functions(project)
    summaries = _compute_summaries(pairs, spec)
    report: List[_RawFinding] = []
    for ctx, func in pairs:
        cfg = build_cfg(func)
        # Fixpoint runs silent; only the post-convergence walk reports,
        # so a partially-propagated state can never leave a phantom
        # finding behind (the must-violation guarantee depends on this).
        silent = _FunctionAnalysis(ctx, func, spec, summaries, report=None)
        states = fixpoint(cfg, silent)
        reporter = _FunctionAnalysis(ctx, func, spec, summaries, report=report)
        walk_block(cfg, states, reporter, lambda stmt, state: None)
    # A statement may sit in several blocks' views (loop headers); dedupe.
    unique = sorted(set(report), key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    _FINDINGS_CACHE.clear()  # bound memory: one project at a time
    _FINDINGS_CACHE[key] = unique
    return unique


class _FlowRuleBase(Rule):
    scope = None  # all linted files; the in-tree sources must stay clean

    def check_project(self, project: Project) -> Iterator[Finding]:
        by_path = {ctx.path: ctx for ctx in project.files}
        for raw in typestate_findings(project):
            if raw.rule != self.id:
                continue
            ctx = by_path.get(raw.path)
            if ctx is not None and not self.applies_to(ctx.module):
                continue
            yield Finding(
                path=raw.path,
                line=raw.line,
                col=raw.col,
                rule=raw.rule,
                message=raw.message,
            )


class StageOrderRule(_FlowRuleBase):
    id = "FLOW401"
    title = "skb stage calls must follow the derived stage order"
    rationale = (
        "The paper's correctness argument (Algorithm 1, Figs. 3-6) rests on "
        "packets traversing the softirq stage graph in a fixed order; a call "
        "that moves an skb backwards models a packet teleporting upstream. "
        "The legal order is derived from the Stage/Transition objects in "
        "kernel/stages.py, not hand-coded."
    )


class ReEnqueueAfterDeliverRule(_FlowRuleBase):
    id = "FLOW402"
    title = "no pipeline re-entry after SocketDeliver"
    rationale = (
        "SocketDeliver is the terminal transition of the stage graph; "
        "re-enqueueing a delivered skb double-counts it against the "
        "packet-conservation invariant the validation monitors enforce."
    )


class UseAfterFreeRule(_FlowRuleBase):
    id = "FLOW403"
    title = "no double free / use after free of an skb"
    rationale = (
        "A freed skb that re-enters the pipeline corrupts the conservation "
        "accounting exactly like a kernel use-after-free corrupts memory — "
        "and a double free hides a real packet loss."
    )


class UncountedDropRule(_FlowRuleBase):
    id = "FLOW404"
    title = "every skb drop must increment a counter"
    rationale = (
        "The runtime invariant monitors prove exact packet conservation; a "
        "drop with no counter increment makes that audit impossible to "
        "reconcile (injected != delivered + sum(drops))."
    )


SKB_RULES: Tuple[Rule, ...] = (
    StageOrderRule(),
    ReEnqueueAfterDeliverRule(),
    UseAfterFreeRule(),
    UncountedDropRule(),
)
