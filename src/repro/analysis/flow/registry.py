"""Static registry of simflow rule ids.

Kept free of imports so :mod:`repro.analysis.lint.runner` can learn the
flow rule ids (for pragma validation — the two passes share the
``# simlint: disable=`` suppression machinery) without importing the
dataflow engine, and vice versa.
"""

from __future__ import annotations

from typing import Tuple

#: Skb typestate rules (rules_skb.py).
SKB_RULE_IDS: Tuple[str, ...] = ("FLOW401", "FLOW402", "FLOW403", "FLOW404")

#: Time-unit taint rules (rules_time.py).
TIME_RULE_IDS: Tuple[str, ...] = ("TIME501", "TIME502")

#: Every rule id the ``repro flow`` pass can report.
FLOW_RULE_IDS: Tuple[str, ...] = SKB_RULE_IDS + TIME_RULE_IDS
