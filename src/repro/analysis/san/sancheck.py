"""Static↔dynamic cross-check of the ownership sanitizer's site tags.

Two sides describe the same lifecycle and must agree:

* the **static catalog** — every site tag literal at an instrumentation
  call (``ledger.acquire(kind, identity, "tag", ...)`` /
  ``ledger.release(kind, identity, "tag")`` / ``_san_discard(san,
  event, "tag")``) found by scanning the source tree;
* the **dynamic sites** — the tags an actual sanitized run reported
  through :meth:`~repro.validate.sanitize.SanitizeReport.sites`.

Every dynamic site must be in the static catalog: a tag the scan cannot
find means an instrumentation call built its site string at runtime (so
``repro san`` cannot reason about it) or lives outside the analyzed
tree. The reverse direction is informational — a static site a probe
run never exercised is listed as *unexercised*, not failed, because no
single scenario hits every discard path.

``repro san --trace`` runs :func:`dynamic_site_probe` (a few
milliseconds of simulated time across both schedulers, a thrashed flow
table and a two-host cluster ring) and cross-checks it; the sanitizer
test tier does the same against full golden scenarios.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

#: Callee last-segments whose third positional argument is a site tag.
_INSTRUMENTATION_CALLS = frozenset(("acquire", "release", "_san_discard"))

#: Argument index of the site tag in every instrumentation call.
_SITE_ARG_INDEX = 2


@dataclass
class SanCheckResult:
    """Verdict of one static↔dynamic cross-check."""

    static_sites: List[str]
    dynamic_sites: List[str]
    #: Dynamic sites absent from the static catalog — failures.
    unknown: List[str]
    #: Static sites the dynamic run never exercised — informational.
    unexercised: List[str]

    @property
    def ok(self) -> bool:
        return not self.unknown

    def render(self) -> List[str]:
        lines = [
            f"{len(self.static_sites)} static sites, "
            f"{len(self.dynamic_sites)} exercised dynamically"
        ]
        for site in self.unknown:
            lines.append(
                f"UNKNOWN dynamic site {site!r}: not in the static catalog "
                "(runtime-built tag or uninstrumented module?)"
            )
        if self.unexercised:
            lines.append(
                "unexercised static sites: " + ", ".join(self.unexercised)
            )
        return lines


def static_site_catalog(paths: Sequence[str] = ("src",)) -> Set[str]:
    """Every site-tag literal at an instrumentation call under ``paths``."""
    from repro.analysis.lint.runner import iter_python_files

    sites: Set[str] = set()
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if name not in _INSTRUMENTATION_CALLS:
                continue
            if len(node.args) <= _SITE_ARG_INDEX:
                continue
            site = node.args[_SITE_ARG_INDEX]
            if isinstance(site, ast.Constant) and isinstance(site.value, str):
                sites.add(site.value)
    return sites


def dynamic_site_probe() -> Set[str]:
    """A small sanitized workout that touches every object kind.

    Exercises: scheduled + posted events on both schedulers, lazy
    cancellation discards and compaction, flow-table insert / evict /
    invalidate churn, and the cross-shard record path of a tiny cluster
    ring. Returns the site tags the ledger saw.
    """
    from repro.validate.sanitize import sanitizing

    with sanitizing() as ledger:
        _probe_engine("heap")
        _probe_engine("calendar")
        _probe_flowtable()
        _probe_cluster()
        return ledger.report().sites()


def _probe_engine(scheduler: str) -> None:
    from repro.sim.engine import Simulator

    sim = Simulator(scheduler)
    hits: List[int] = []
    # Enough schedule/cancel churn to trip compaction: dead entries must
    # outnumber live ones past COMPACT_MIN_EVENTS (strictly, hence 320).
    events = [sim.schedule(10.0 + i * 0.01, hits.append, i) for i in range(600)]
    for event in events[:320]:
        sim.cancel(event)
    sim.post(1.0, hits.append, -1)
    sim.post_batch(2.0, hits.append, [(-2,), (-3,)])
    if scheduler == "calendar":
        # Far beyond the wheel horizon, then cancelled: exercises the
        # overflow refill's dead-entry discard.
        far = [sim.schedule(10_000.0 + i, hits.append, i) for i in range(4)]
        for event in far[::2]:
            sim.cancel(event)
    sim.run()


def _probe_flowtable() -> None:
    from repro.kernel.flowcache import FlowTable

    table = FlowTable(capacity=1)
    table.insert((1, 2, 17, 1000, 2000))
    table.insert((2, 3, 17, 1000, 2000))  # evicts the first (capacity 1)
    table.invalidate((2, 3, 17, 1000, 2000))
    table.insert((3, 4, 17, 1000, 2000))
    table.invalidate_ip(3)
    table.insert((5, 6, 17, 1000, 2000))
    table.invalidate_all()


def _probe_cluster() -> None:
    from repro.overlay.cluster import run_cluster, udp_ring_spec

    spec = udp_ring_spec(
        num_hosts=2,
        message_size=256,
        rate_pps=20_000.0,
        warmup_us=200.0,
        duration_us=800.0,
        flowcache=True,
        flowcache_capacity=1,
        churn=((600.0, 1),),
    )
    run_cluster(spec, shards=1)


def san_cross_check(
    paths: Optional[Sequence[str]] = None,
    dynamic_sites: Optional[Iterable[str]] = None,
) -> SanCheckResult:
    """Cross-check dynamic site tags against the static catalog.

    ``dynamic_sites`` defaults to a fresh :func:`dynamic_site_probe`
    run; pass the sites of a longer run (e.g. a sanitized golden suite)
    to check that run instead.
    """
    static = static_site_catalog(tuple(paths) if paths else ("src",))
    dynamic = (
        set(dynamic_sites) if dynamic_sites is not None else dynamic_site_probe()
    )
    return SanCheckResult(
        static_sites=sorted(static),
        dynamic_sites=sorted(dynamic),
        unknown=sorted(dynamic - static),
        unexercised=sorted(static - dynamic),
    )
