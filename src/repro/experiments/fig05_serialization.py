"""Figure 5 — softirq serialization and load imbalance.

Fixed-rate UDP, single-flow and multi-flow, reporting per-core CPU
utilization split into softirq and other time. The paper's observations
to reproduce: the overlay burns far more CPU than the host network for
the same traffic, most of it stacked as softirq time on a single core
(single flow), and multi-flow tests cannot use more cores than flows.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations
from repro.metrics.report import Table
from repro.workloads.multiflow import run_multiflow_udp
from repro.workloads.sockperf import Experiment

CORES_SHOWN = 8


def _add_rows(table, label, result):
    for cpu in range(CORES_SHOWN):
        util = result.cpu_util[cpu]
        softirq = result.cpu_softirq[cpu]
        if util < 0.005:
            continue
        table.add_row(label, cpu, util * 100, softirq * 100)


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 5", "Serialization of softirqs and load imbalance")
    dur = durations(quick, 25.0, 10.0)

    # --- single flow -----------------------------------------------------
    table_single = Table(
        ["case", "cpu", "util %", "softirq %"],
        title="single-flow UDP @ 250 kpps (16 B)",
    )
    single = {}
    for label, kwargs in (("Host", dict(mode="host")), ("Con", dict(mode="overlay"))):
        result = Experiment(**kwargs).run_udp_fixed(16, rate_pps=250_000, **dur)
        _add_rows(table_single, label, result)
        single[label] = result
    out.tables.append(table_single)

    # --- multi flow ---------------------------------------------------------
    flows = 5
    table_multi = Table(
        ["case", "cpu", "util %", "softirq %"],
        title=f"multi-flow UDP, {flows} flows @ 120 kpps each (16 B)",
    )
    multi = {}
    for label, kwargs in (("Host", dict(mode="host")), ("Con", dict(mode="overlay"))):
        result = run_multiflow_udp(
            flows,
            message_size=16,
            rate_per_flow=120_000.0,
            rps_cpus=list(range(1, 9)),
            **kwargs,
            **dur,
        )
        _add_rows(table_multi, label, result)
        multi[label] = result
    out.tables.append(table_multi)

    out.series["single"] = {
        label: (result.cpu_util[:CORES_SHOWN], result.cpu_softirq[:CORES_SHOWN])
        for label, result in single.items()
    }
    out.series["multi"] = {
        label: (result.cpu_util[:CORES_SHOWN], result.cpu_softirq[:CORES_SHOWN])
        for label, result in multi.items()
    }
    out.series["total_busy"] = {
        label: sum(result.cpu_util) for label, result in single.items()
    }
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
