#!/usr/bin/env python3
"""Scenario: both hosts fully simulated (transmit + receive paths).

The figure-reproduction harness models senders as calibrated pacing
sources because the paper instruments reception. This example instead
simulates *both* testbed machines: the sender's ``sendmsg`` walk
(container stack → bridge → VXLAN encapsulation → qdisc) runs on the
sending host's cores via :class:`repro.kernel.tx.TxStack`, and the wire
frames feed the receiving host's full softirq pipeline.

It prints where the CPU went on each side — making the paper's §2
asymmetry visible: transmit cost lands in the sender's process context
(no serialization pathology), while receive cost is softirq work that
vanilla steering piles onto one core.

Run:  python examples/two_host_duplex.py
"""

from repro.core.config import FalconConfig
from repro.hw.topology import Machine
from repro.kernel.costs import CostModel
from repro.kernel.skb import PROTO_UDP, FlowKey
from repro.kernel.stack import StackConfig
from repro.kernel.tx import TxStack
from repro.metrics.report import Table
from repro.overlay.host import Host
from repro.sim.engine import Simulator
from repro.sim.stats import LatencyRecorder

RATE_PPS = 200_000.0
MESSAGE_BYTES = 512
DURATION_US = 30_000.0


def run_case(falcon):
    sim = Simulator()
    receiver = Host(
        sim, StackConfig(mode="overlay", falcon=falcon), num_cpus=12, name="rx"
    )
    link = receiver.attach_ingress(100.0)
    sender = Machine(sim, num_cpus=4, name="tx")
    tx = TxStack(sender, link, CostModel(), overlay=True)

    container = receiver.launch_container("server")
    flow = FlowKey.make(0x0B000001, container.private_ip, PROTO_UDP)
    latency = LatencyRecorder()
    receiver.stack.open_socket(
        flow, app_cpu=2, on_message=lambda s, skb, lat: latency.record(lat)
    )

    interval = 1e6 / RATE_PPS
    count = int(DURATION_US / interval)
    for index in range(count):
        sim.schedule(
            index * interval,
            tx.send_message,
            flow,
            MESSAGE_BYTES,
            1,  # sender app core
            lambda skb: receiver.stack.inject(skb),
            index,
        )
    sim.run(until=DURATION_US + 20_000.0)
    return sender, receiver, latency, tx


def busy_row(machine, cores):
    window = machine.sim.now
    return " ".join(
        f"cpu{index}:{machine.acct.busy_us(index) / window:.0%}"
        for index in cores
        if machine.acct.busy_us(index) / window > 0.02
    )


def main() -> None:
    table = Table(
        ["case", "avg us", "p99 us", "sender cores", "receiver cores"],
        title=f"two-host overlay, {MESSAGE_BYTES} B @ {RATE_PPS/1e3:.0f} kpps",
    )
    for name, falcon in (("vanilla", None), ("Falcon", FalconConfig())):
        sender, receiver, latency, tx = run_case(falcon)
        table.add_row(
            name,
            latency.mean,
            latency.percentile(99),
            busy_row(sender, range(4)),
            busy_row(receiver.machine, range(8)),
        )
    print(table.render())
    print()
    print(
        "The sender burns one process-context core on sendmsg+encap in\n"
        "both cases; only the receiver's softirq side changes shape —\n"
        "the asymmetry that makes reception the right place for Falcon."
    )


if __name__ == "__main__":
    main()
