"""Figure 5 — softirq serialization and load imbalance."""

from conftest import run_figure

from repro.experiments import fig05_serialization


def test_fig05_serialization(benchmark, quick):
    out = run_figure(benchmark, fig05_serialization, quick)

    # The overlay burns clearly more CPU than the host for the same rate.
    busy = out.series["total_busy"]
    assert busy["Con"] > 1.4 * busy["Host"]

    # Single flow: the overlay's softirq load is stacked on one core —
    # the busiest softirq core carries the majority of all softirq time.
    util, softirq = out.series["single"]["Con"]
    total_softirq = sum(softirq)
    # Exclude the driver core (cpu 0) — we want the stage-processing cores.
    stage_softirq = softirq[1:]
    assert max(stage_softirq) > 0.6 * sum(stage_softirq)
