"""LINT000: pragmas and exemptions that silence nothing must be loud.

An unknown rule id in a pragma does not suppress anything (the SIM101
on the same line still fires), a syntactically malformed id is reported,
and a ``lint_exempt`` without a reason is reported even though its rule
list still suppresses.
"""

import time


def stamp():
    return time.time()  # simlint: disable=NOPE123 # expect: LINT000,SIM101


def tick():  # simlint: disable=not-an-id # expect: LINT000
    return 0


@lint_exempt("SIM101")  # expect: LINT000
def undocumented_stamp():
    return time.time()
