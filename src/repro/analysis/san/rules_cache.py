"""Flow-cache entry-lifecycle rules (OWN621, OWN622, OWN623).

``repro order`` (ORD521-523) guards *when* the cache may serve or
populate; these rules guard the *lifecycle of the entries themselves*:
insert → hit → invalidate must be total, and every removal must release
exactly once and be accounted exactly once.

``OWN621``  unaccounted removal: an entry leaves the entries map
            (``del`` / ``pop`` / ``popitem`` / ``clear``) in a function
            that never bumps an eviction/invalidation counter — the
            release happened but the books say it did not, so the
            counter-conservation checks in ``repro.validate`` go blind
            on that path.
``OWN622``  double release: the same table entry is removed twice on one
            straight path (two removal ops with an identical receiver
            and key in the same statement sequence) — the classic
            ``RECORD_INVAL`` churn hazard, where the local invalidation
            and the remote record each think they own the teardown.
``OWN623``  lifecycle not total: a class inserts into an entries map but
            ships no removal surface at all (no ``invalidate*`` /
            ``evict*`` / ``clear`` / ``pop`` on that map) — entries are
            immortal by construction and churned containers keep their
            stale fast-path mappings forever.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.rules_time import _RawFinding
from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Project,
    Rule,
    last_segment,
)

#: Attribute-name fragment identifying the canonical entry map.
_ENTRIES_FRAGMENT = "entries"

#: Method-name fragments that count as release accounting (OWN621).
_ACCOUNT_FRAGMENTS = ("eviction", "invalidation", "removal")

#: Call names that remove from a mapping.
_REMOVAL_CALLS = frozenset(("pop", "popitem", "clear"))

#: Call names that release a whole entry by key at the table surface.
_INVALIDATE_CALLS = frozenset(
    ("invalidate", "invalidate_ip", "invalidate_all", "invalidate_flow")
)


def _mentions_entries(node: Optional[ast.AST]) -> bool:
    name = last_segment(node) if node is not None else None
    return name is not None and _ENTRIES_FRAGMENT in name.lower()


def _accounts_removal(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    """Does this function bump an eviction/invalidation counter?"""
    for node in ast.walk(func):
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            target = node.target
            label = (
                target.attr
                if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else ""
            )
            if any(frag in label.lower() for frag in _ACCOUNT_FRAGMENTS):
                return True
    return False


def _entry_removals(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> List[ast.AST]:
    """Statements that remove from an ``*entries*`` map in ``func``."""
    removals: List[ast.AST] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and _mentions_entries(
                    target.value
                ):
                    removals.append(node)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _REMOVAL_CALLS
            and _mentions_entries(node.func.value)
        ):
            removals.append(node)
    return removals


def _removal_key(call: ast.Call) -> Tuple[str, str]:
    """(receiver, key) source identity of a by-key removal op."""
    receiver = ""
    func = call.func
    if isinstance(func, ast.Attribute):
        receiver = ast.dump(func.value)
    key = ast.dump(call.args[0]) if call.args else "()"
    return (receiver, key)


def _sequential_double_releases(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> List[ast.AST]:
    """Second-and-later removals of one (receiver, key) in one suite.

    Only statements sharing a statement list (the same branch of the
    same block) are compared, so an if/else that releases on either arm
    stays silent while ``invalidate(k); invalidate(k)`` is flagged.
    """
    simple = (
        ast.Expr,
        ast.Assign,
        ast.AnnAssign,
        ast.AugAssign,
        ast.Delete,
        ast.Return,
        ast.Raise,
        ast.Assert,
    )
    doubled: List[ast.AST] = []
    for body in _statement_suites(func):
        seen: Set[Tuple[str, str]] = set()
        for stmt in body:
            # Compound statements carry their own suites (walked
            # separately); counting their bodies here would merge
            # mutually-exclusive branches into one "path".
            if not isinstance(stmt, simple):
                continue
            for node in ast.walk(stmt):
                identity: Optional[Tuple[str, str]] = None
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _INVALIDATE_CALLS
                ):
                    identity = (
                        ast.dump(node.func.value),
                        ast.dump(node.args[0]) if node.args else "()",
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and _mentions_entries(node.func.value)
                ):
                    identity = _removal_key(node)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        if isinstance(
                            target, ast.Subscript
                        ) and _mentions_entries(target.value):
                            identity = (
                                ast.dump(target.value),
                                ast.dump(target.slice),
                            )
                if identity is None:
                    continue
                if identity in seen:
                    doubled.append(node)
                else:
                    seen.add(identity)
    return doubled


def _statement_suites(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Iterator[List[ast.stmt]]:
    """Every statement list in ``func`` (body, branch arms, loop bodies)."""
    stack: List[ast.AST] = [func]
    while stack:
        node = stack.pop()
        if node is not func and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        for field in ("body", "orelse", "finalbody"):
            body = getattr(node, field, None)
            if isinstance(body, list) and body:
                yield body
        stack.extend(ast.iter_child_nodes(node))


def _class_inserts_entries(cls: ast.ClassDef) -> Optional[ast.AST]:
    """The first ``<...entries...>[key] = value`` store in the class."""
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and _mentions_entries(
                    target.value
                ):
                    return node
    return None


def _class_removes_entries(cls: ast.ClassDef) -> bool:
    for func in (
        node
        for node in ast.walk(cls)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ):
        if _entry_removals(func):
            return True
    return False


#: Per-project memo so all three OWN62x rules walk once.
_FINDINGS_CACHE: Dict[int, List[_RawFinding]] = {}


def cache_findings(project: Project) -> List[_RawFinding]:
    key = id(project)
    cached = _FINDINGS_CACHE.get(key)
    if cached is not None:
        return cached
    report: List[_RawFinding] = []
    for ctx in project.files:
        if ctx.tree is None:
            continue
        for func in ctx.functions():
            # OWN621: removal without accounting.
            removals = _entry_removals(func)
            if removals and not _accounts_removal(func):
                for node in removals:
                    report.append(
                        _RawFinding(
                            path=ctx.path,
                            line=getattr(node, "lineno", func.lineno),
                            col=getattr(node, "col_offset", 0),
                            rule="OWN621",
                            message=(
                                f"'{func.name}' removes a cache entry "
                                "without bumping an eviction/invalidation "
                                "counter — the release is unaccounted and "
                                "the lifecycle books no longer balance"
                            ),
                        )
                    )
            # OWN622: same entry released twice on one straight path.
            for node in _sequential_double_releases(func):
                report.append(
                    _RawFinding(
                        path=ctx.path,
                        line=getattr(node, "lineno", func.lineno),
                        col=getattr(node, "col_offset", 0),
                        rule="OWN622",
                        message=(
                            f"'{func.name}' releases the same cache entry "
                            "twice on one path — the second invalidation "
                            "either double-counts or tears down an entry "
                            "a concurrent re-insert now owns (the "
                            "RECORD_INVAL churn hazard)"
                        ),
                    )
                )
        # OWN623: inserts but no removal surface at all.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            insert_site = _class_inserts_entries(node)
            if insert_site is not None and not _class_removes_entries(node):
                report.append(
                    _RawFinding(
                        path=ctx.path,
                        line=getattr(insert_site, "lineno", node.lineno),
                        col=getattr(insert_site, "col_offset", 0),
                        rule="OWN623",
                        message=(
                            f"class '{node.name}' populates an entries "
                            "map but defines no removal path (no "
                            "invalidate/evict/clear/pop on it) — the "
                            "insert→hit→invalidate lifecycle is not "
                            "total and every entry is immortal"
                        ),
                    )
                )
    unique = sorted(
        set(report), key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
    )
    _FINDINGS_CACHE.clear()
    _FINDINGS_CACHE[key] = unique
    return unique


class _CacheRuleBase(Rule):
    scope = ("repro.kernel", "repro.overlay")

    def check_project(self, project: Project) -> Iterator[Finding]:
        by_path = {ctx.path: ctx for ctx in project.files}
        for raw in cache_findings(project):
            if raw.rule != self.id:
                continue
            ctx = by_path.get(raw.path)
            if ctx is not None and not self.applies_to(ctx.module):
                continue
            yield Finding(
                path=raw.path,
                line=raw.line,
                col=raw.col,
                rule=raw.rule,
                message=raw.message,
            )


class UnaccountedRemovalRule(_CacheRuleBase):
    id = "OWN621"
    title = "every cache-entry removal is accounted"
    rationale = (
        "The differential and golden suites reconcile hit/miss/eviction/"
        "invalidation counters across regimes and shard counts; a "
        "removal that skips the counter bump makes an N-shard run "
        "unreconcilable against the 1-shard books even when the "
        "datapath is correct."
    )


class DoubleInvalidationRule(_CacheRuleBase):
    id = "OWN622"
    title = "a cache entry is released exactly once per teardown"
    rationale = (
        "Container churn invalidates locally and notifies remote "
        "senders via RECORD_INVAL; if one path does both for the same "
        "table, the second release lands after a re-insert and tears "
        "down a live entry — a self-inflicted cache miss storm that "
        "only shows up as mysterious cross-shard counter drift."
    )


class ImmortalEntriesRule(_CacheRuleBase):
    id = "OWN623"
    title = "a cache that inserts must also invalidate"
    rationale = (
        "insert→hit→invalidate must be total: ONCache's correctness "
        "story is that churn reaches every copy of a mapping. A table "
        "with no removal surface keeps steering frames to departed "
        "containers, and no runtime counter ever flags it because "
        "nothing is miscounted — the entries are simply immortal."
    )


CACHE_RULES: Tuple[Rule, ...] = (
    UnaccountedRemovalRule(),
    DoubleInvalidationRule(),
    ImmortalEntriesRule(),
)
