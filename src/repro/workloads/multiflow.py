"""Multi-flow and multi-container scenarios (Figures 2c, 13, 14, 16).

These wrap :class:`~repro.workloads.sockperf.Testbed` with the flow/core
layouts the paper's multi-flow experiments use:

* **multi-flow** — N flows into one container, RSS/RPS spreading them
  over a CPU set, optionally with dedicated idle ``FALCON_CPUS``
  (Figure 13) or a constrained RPS set giving a 4:1 flow-to-core ratio
  (Figure 2c);
* **multi-container busy system** — one flow per container, the
  receiving CPUs limited to six cores that double as ``FALCON_CPUS``, so
  Falcon must scavenge idle cycles (Figure 14);
* **hotspot adaptability** — one flow suddenly triples its rate,
  comparing the two-choice balancer against static hashing (Figure 16).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import FalconConfig, FlowCacheConfig
from repro.workloads.sockperf import RunResult, Testbed
from repro.workloads.traffic import HotspotSchedule


def run_multiflow_udp(
    flows: int,
    message_size: int = 16,
    mode: str = "overlay",
    falcon: Optional[FalconConfig] = None,
    flowcache: Optional[FlowCacheConfig] = None,
    rps_cpus: Optional[List[int]] = None,
    app_cpus: Optional[List[int]] = None,
    rate_per_flow: Optional[float] = None,
    kernel: str = "4.19",
    bandwidth_gbps: float = 100.0,
    duration_ms: float = 20.0,
    warmup_ms: float = 10.0,
    seed: int = 0,
) -> RunResult:
    """N UDP flows, one client each (the paper's multi-flow UDP setup)."""
    bed = Testbed(
        mode=mode,
        falcon=falcon,
        flowcache=flowcache,
        kernel=kernel,
        bandwidth_gbps=bandwidth_gbps,
        rps_cpus=rps_cpus if rps_cpus is not None else [1, 2],
        app_cpus=app_cpus or list(range(10, 16)),
        seed=seed,
    )
    for _ in range(flows):
        bed.add_udp_flow(message_size, clients=1, rate_pps=rate_per_flow)
    return bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)


def run_multiflow_tcp(
    flows: int,
    message_size: int = 4096,
    mode: str = "overlay",
    falcon: Optional[FalconConfig] = None,
    flowcache: Optional[FlowCacheConfig] = None,
    rps_cpus: Optional[List[int]] = None,
    app_cpus: Optional[List[int]] = None,
    window_msgs: int = 32,
    kernel: str = "4.19",
    bandwidth_gbps: float = 100.0,
    duration_ms: float = 20.0,
    warmup_ms: float = 10.0,
    seed: int = 0,
) -> RunResult:
    """N closed-loop TCP flows (Figure 13 c/d)."""
    bed = Testbed(
        mode=mode,
        falcon=falcon,
        flowcache=flowcache,
        kernel=kernel,
        bandwidth_gbps=bandwidth_gbps,
        rps_cpus=rps_cpus if rps_cpus is not None else [1, 2],
        app_cpus=app_cpus or list(range(10, 16)),
        seed=seed,
    )
    for _ in range(flows):
        bed.add_tcp_flow(message_size, window_msgs=window_msgs)
    return bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)


def run_multicontainer(
    containers: int,
    message_size: int = 1024,
    proto: str = "udp",
    falcon: Optional[FalconConfig] = None,
    receiving_cpus: Optional[List[int]] = None,
    rate_per_flow: Optional[float] = None,
    window_msgs: int = 32,
    duration_ms: float = 20.0,
    warmup_ms: float = 10.0,
    seed: int = 0,
) -> RunResult:
    """One flow per container in a busy system (Figure 14).

    The receiving CPUs are limited to six cores (the paper's setup); when
    Falcon is enabled, FALCON_CPUS is that same set, so parallelization
    must use idle cycles on unsaturated receive cores. Applications run
    on the remaining cores.
    """
    receiving = receiving_cpus or [1, 2, 3, 4, 5, 6]
    if falcon is not None:
        falcon.cpus = list(receiving)
    bed = Testbed(
        mode="overlay",
        falcon=falcon,
        # All receive processing is confined to the receiving cores: the
        # NIC exposes one RSS queue per core (hardirqs + driver polling),
        # RPS steers within the same set, and FALCON_CPUS equals it too.
        irq_cpus=list(receiving),
        rps_cpus=list(receiving),
        app_cpus=list(range(7, 20)),
        seed=seed,
    )
    for index in range(containers):
        container = bed.new_container(f"c{index}")
        if proto == "udp":
            bed.add_udp_flow(
                message_size,
                clients=1,
                rate_pps=rate_per_flow,
                container=container,
            )
        else:
            bed.add_tcp_flow(
                message_size, window_msgs=window_msgs, container=container
            )
    return bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)


def run_hotspot(
    policy: str,
    flows: int = 4,
    message_size: int = 1024,
    base_rate: float = 120_000.0,
    burst_rate: float = 950_000.0,
    burst_clients: int = 3,
    burst_flow: int = 0,
    burst_at_ms: float = 10.0,
    duration_ms: float = 25.0,
    warmup_ms: float = 8.0,
    seed: int = 0,
) -> RunResult:
    """Adaptability test: one flow suddenly intensifies (Figure 16).

    ``policy`` is ``two_choice`` (the paper's dynamic algorithm) or
    ``static`` (first choice only). The bursting flow is driven by
    several clients (like the paper's stress setup) so its per-device
    softirq stages genuinely overload the core they hash to; the dynamic
    policy steers softirqs away from the hot core, the static one cannot.
    """
    falcon = FalconConfig(cpus=[3, 4, 5, 6], policy=policy)
    bed = Testbed(
        mode="overlay",
        falcon=falcon,
        rps_cpus=[1, 2],
        app_cpus=list(range(10, 16)),
        seed=seed,
    )
    for index in range(flows):
        if index == burst_flow:
            schedule = HotspotSchedule(
                [
                    (0.0, base_rate / burst_clients),
                    (burst_at_ms * 1000.0, burst_rate / burst_clients),
                ]
            )
            bed.add_udp_flow(
                message_size, clients=burst_clients, process=schedule
            )
        else:
            bed.add_udp_flow(message_size, clients=1, rate_pps=base_rate)
    return bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)
