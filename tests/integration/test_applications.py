"""Integration tests for the application benchmarks (memcached, web)."""

import pytest

from repro.core.config import FalconConfig
from repro.hw.topology import Machine
from repro.sim.engine import Simulator
from repro.workloads.apps import ResponseChannel, WorkerPool
from repro.workloads.memcached import MemcachedScenario, run_memcached
from repro.workloads.webserving import (
    OPERATIONS,
    WebServingScenario,
    run_webserving,
)


class TestWorkerPool:
    def make_pool(self, max_workers=2, cpus=None):
        sim = Simulator()
        machine = Machine(sim, num_cpus=4)
        return sim, machine, WorkerPool(machine, cpus or [0, 1], max_workers)

    def test_all_jobs_served(self):
        sim, machine, pool = self.make_pool()
        done = []
        for index in range(10):
            pool.submit(5.0, lambda i=index: done.append(i))
        sim.run()
        assert sorted(done) == list(range(10))
        assert pool.served == 10
        assert pool.queued == 0

    def test_concurrency_bounded(self):
        sim, machine, pool = self.make_pool(max_workers=2)
        for _ in range(10):
            pool.submit(10.0, lambda: None)
        assert pool.active == 2
        assert pool.queued == 8
        assert pool.peak_queue == 8
        sim.run()
        assert pool.active == 0

    def test_parallel_speedup(self):
        sim, machine, pool = self.make_pool(max_workers=2, cpus=[0, 1])
        for _ in range(4):
            pool.submit(10.0, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(20.0)  # 4 x 10us over 2 workers

    def test_validation(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=2)
        with pytest.raises(ValueError):
            WorkerPool(machine, [0], max_workers=0)
        with pytest.raises(ValueError):
            WorkerPool(machine, [], max_workers=1)


class TestMemcached:
    def test_requests_flow_end_to_end(self):
        result = run_memcached(2, duration_ms=6, warmup_ms=4)
        assert result.requests_completed > 0
        assert result.latency["avg"] > 0
        assert result.throughput_rps == pytest.approx(
            result.requests_completed / 6e-3, rel=1e-6
        )

    def test_latency_grows_with_clients(self):
        small = run_memcached(1, duration_ms=8, warmup_ms=4)
        large = run_memcached(10, duration_ms=8, warmup_ms=4)
        assert large.throughput_rps > small.throughput_rps
        assert large.latency["p99"] > small.latency["p99"]

    def test_falcon_reduces_latency_under_load(self):
        con = run_memcached(10, duration_ms=8, warmup_ms=6)
        falcon = run_memcached(
            10, falcon=FalconConfig(), duration_ms=8, warmup_ms=6
        )
        assert falcon.latency["avg"] < con.latency["avg"]

    def test_acks_ride_the_stack(self):
        scenario = MemcachedScenario(clients=2)
        scenario.run(duration_ms=6, warmup_ms=3)
        assert scenario.channel.acks_injected > 0
        assert scenario.bed.stack.control_packets > 0

    def test_mode_label(self):
        result = run_memcached(1, falcon=FalconConfig(), duration_ms=4, warmup_ms=2)
        assert result.mode == "overlay+falcon"


class TestWebServing:
    def test_pages_complete(self):
        result = run_webserving(users=40, duration_ms=10, warmup_ms=6)
        assert result.total_ops > 0
        # Stats exist for the op mix actually drawn.
        drawn = [name for name, s in result.per_op.items() if s.completed]
        assert drawn

    def test_ops_report_response_and_delay(self):
        result = run_webserving(users=40, duration_ms=10, warmup_ms=6)
        for op in OPERATIONS:
            stats = result.per_op[op.name]
            if stats.completed:
                assert result.avg_response_ms(op.name) > 0
                assert result.avg_delay_ms(op.name) >= 0
                # Delay is response minus target, floored at zero.
                assert result.avg_delay_ms(op.name) <= result.avg_response_ms(
                    op.name
                )

    def test_asset_retransmission_state(self):
        scenario = WebServingScenario(users=40)
        result = scenario.run(duration_ms=10, warmup_ms=6)
        # Assets were fetched (far more packets than dynamic requests).
        assert scenario.channel.responses_sent > result.total_ops

    def test_falcon_increases_total_ops(self):
        con = run_webserving(users=150, duration_ms=12, warmup_ms=8)
        falcon = run_webserving(
            users=150, falcon=FalconConfig(), duration_ms=12, warmup_ms=8
        )
        assert falcon.total_ops > con.total_ops
