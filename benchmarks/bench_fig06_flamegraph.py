"""Figure 6 — flamegraph CPU shares: sockperf vs memcached."""

from conftest import run_figure

from repro.experiments import fig06_flamegraph


def test_fig06_flamegraph(benchmark, quick):
    out = run_figure(benchmark, fig06_flamegraph, quick)
    sockperf = out.series["sockperf"]
    memcached = out.series["memcached"]

    # All three poll functions appear with real weight in both workloads.
    for shares in (sockperf, memcached):
        for name in ("mlx5e_napi_poll", "gro_cell_poll", "process_backlog"):
            assert shares[name] > 0.02, name

    # sockperf (uniform packets): the overlay overhead shows up as
    # additional, comparably-weighted softirqs — no single poll function
    # dominates the other two combined.
    total = sum(sockperf.values())
    assert max(sockperf.values()) < 0.75 * total
