"""Device registry and indexes.

``ifindex`` values follow the usual Linux layout on a Docker-overlay host:
low indexes for physical devices, higher for virtual ones. The exact
values are irrelevant — what matters (and what tests pin down) is that
they are *distinct*, so ``hash_32(skb.hash + ifindex)`` separates stages.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The physical NIC.
IFINDEX_PNIC = 2
#: The VXLAN tunnel endpoint device.
IFINDEX_VXLAN = 3
#: The Linux bridge (docker0 / br0).
IFINDEX_BRIDGE = 4
#: The host-side veth peer of the container.
IFINDEX_VETH = 5
#: Synthetic index for the offloaded half of a split pNIC stage.
IFINDEX_PNIC_SPLIT = 1002
#: Synthetic index for the ONCache fast-path hit stage (a cache hit is
#: not a real net_device; the index keeps Falcon's per-device hashing
#: distinct from every real stage).
IFINDEX_FASTPATH = 1003


@dataclass(frozen=True)
class NetDevice:
    """A registered network device."""

    name: str
    ifindex: int
    #: True for NAPI devices (drive their own poll function); veth is not
    #: a NAPI device, which is why it goes through process_backlog
    #: (Section 3.1).
    napi: bool = True


PNIC = NetDevice("eth0", IFINDEX_PNIC)
VXLAN = NetDevice("vxlan0", IFINDEX_VXLAN)
BRIDGE = NetDevice("br0", IFINDEX_BRIDGE)
VETH = NetDevice("veth0", IFINDEX_VETH, napi=False)

ALL_DEVICES = (PNIC, VXLAN, BRIDGE, VETH)
