"""Unit tests: experiment runner helpers, stack config, misc plumbing."""

import pytest

from repro.core.config import FalconConfig
from repro.experiments.runner import (
    ExperimentOutput,
    durations,
    falcon_config,
    standard_modes,
)
from repro.hw.topology import Machine
from repro.kernel.stack import MODE_HOST, MODE_OVERLAY, NetworkStack, StackConfig
from repro.metrics.report import Table
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.workloads.apps import ResponseChannel
from repro.hw.link import Link
from repro.kernel.costs import CostModel
from repro.kernel.skb import PROTO_TCP, FlowKey


class TestRunner:
    def test_standard_modes_labels(self):
        labels = [label for label, _kw in standard_modes()]
        assert labels == ["Host", "Con", "Falcon"]

    def test_standard_modes_without_host(self):
        labels = [label for label, _kw in standard_modes(include_host=False)]
        assert labels == ["Con", "Falcon"]

    def test_falcon_overrides_forwarded(self):
        modes = dict(standard_modes(falcon_overrides=dict(split_gro=True)))
        assert modes["Falcon"]["falcon"].split_gro

    def test_falcon_config_defaults(self):
        config = falcon_config()
        assert config.cpus == [3, 4, 5, 6]

    def test_durations_quick_scales_down(self):
        full = durations(False, 20.0, 10.0)
        quick = durations(True, 20.0, 10.0)
        assert quick["duration_ms"] < full["duration_ms"]
        assert quick["warmup_ms"] < full["warmup_ms"]

    def test_experiment_output_render(self):
        out = ExperimentOutput("Figure X", "demo")
        table = Table(["a"], title="t")
        table.add_row(1)
        out.tables.append(table)
        text = out.render()
        assert "Figure X" in text
        assert "demo" in text
        assert "t" in text


class TestStackConfig:
    def test_unknown_mode_rejected(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=4)
        with pytest.raises(ConfigurationError):
            NetworkStack(sim, machine, StackConfig(mode="bridge"))

    def test_costs_override_wins_over_kernel(self):
        custom = CostModel.kernel_5_4()
        config = StackConfig(mode=MODE_HOST, kernel="4.19", costs=custom)
        assert config.resolve_costs() is custom

    def test_host_mode_has_no_overlay_stages(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=4)
        stack = NetworkStack(sim, machine, StackConfig(mode=MODE_HOST))
        assert "vxlan" not in stack.stages
        assert not stack.is_overlay

    def test_falcon_requires_valid_cpus(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=4)
        config = StackConfig(
            mode=MODE_OVERLAY, falcon=FalconConfig(cpus=[99])
        )
        with pytest.raises(ConfigurationError):
            NetworkStack(sim, machine, config)

    def test_rps_disabled_keeps_processing_on_irq_core(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=4)
        stack = NetworkStack(
            sim, machine, StackConfig(mode=MODE_HOST, rps_cpus=None)
        )
        assert stack.rps is None

    def test_overlay_ifindexes_in_path_order(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=4)
        stack = NetworkStack(sim, machine, StackConfig(mode=MODE_OVERLAY))
        assert stack.overlay_ifindexes == [3, 5]

    def test_gro_split_requires_falcon(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=8)
        config = StackConfig(
            mode=MODE_HOST, falcon=FalconConfig(cpus=[3], split_gro=True)
        )
        stack = NetworkStack(sim, machine, config)
        assert "pnic_gro" in stack.stages


class TestResponseChannel:
    def test_response_charges_worker_and_delivers(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=2)
        link = Link(sim, 100.0, propagation_us=1.0)
        channel = ResponseChannel(machine, link, CostModel(), overlay=False)
        delivered = []
        channel.respond(0, 550, lambda: delivered.append(sim.now))
        sim.run()
        assert len(delivered) == 1
        assert machine.acct.busy_us_label(0, "response_tx") > 0
        assert channel.responses_sent == 1

    def test_acks_injected_per_segments(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=2)
        link = Link(sim, 100.0)

        class FakeStack:
            def __init__(self):
                self.injected = []

            def inject(self, skb):
                self.injected.append(skb)
                return True

        stack = FakeStack()
        channel = ResponseChannel(
            machine, link, CostModel(), overlay=True,
            ack_stack=stack, ack_link=link,
        )
        flow = FlowKey.make(1, 2, PROTO_TCP)
        channel.respond(0, 24_000, lambda: None, flow=flow)
        sim.run()
        # 24 KB -> 17 segments -> 8 delayed ACKs.
        assert len(stack.injected) == 8
        assert all(skb.meta == "ctl" for skb in stack.injected)
        assert all(skb.encapsulated for skb in stack.injected)

    def test_no_acks_without_flow(self):
        sim = Simulator()
        machine = Machine(sim, num_cpus=1)
        link = Link(sim, 100.0)
        channel = ResponseChannel(
            machine, link, CostModel(), overlay=False, ack_stack=object()
        )
        channel.respond(0, 1000, lambda: None)
        sim.run()
        assert channel.acks_injected == 0
