"""Shared benchmark configuration.

Each benchmark regenerates one figure of the paper: it runs the figure's
experiment driver once (``rounds=1`` — these are simulation campaigns,
not micro-benchmarks), prints the same rows/series the paper reports,
and asserts the headline *direction* of the result (who wins), which is
the claim the reproduction makes.

Set ``REPRO_BENCH_QUICK=1`` to run reduced sweeps (useful in CI).
"""

import os

import pytest

#: Reduced sweeps when set (shorter windows, fewer points).
QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))


@pytest.fixture(scope="session")
def quick() -> bool:
    return QUICK


def run_figure(benchmark, module, quick_flag):
    """Run a figure experiment under pytest-benchmark, print and save it."""
    out = benchmark.pedantic(
        module.run, kwargs=dict(quick=quick_flag), rounds=1, iterations=1
    )
    print()
    print(out.render())
    # pytest captures stdout for passing tests, so also persist the
    # rendered figure where it can always be inspected.
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    name = module.__name__.rsplit(".", 1)[-1]
    with open(os.path.join(results_dir, f"{name}.txt"), "w") as handle:
        handle.write(out.render() + "\n")
    return out
