"""Integration tests: full receive-path behaviour of host and overlay stacks.

These tests drive packets through the complete assembled pipeline (NIC →
hardirq → NAPI → RPS → stages → socket → app) and assert the structural
properties the paper reports: stage counts, softirq serialization on one
core for the vanilla overlay, in-order delivery, and device traversal.
"""

import pytest

from repro.core.config import FalconConfig
from repro.kernel.devices import (
    IFINDEX_PNIC,
    IFINDEX_VETH,
    IFINDEX_VXLAN,
)
from repro.kernel.skb import PROTO_UDP, FlowKey, Skb
from repro.kernel.stack import NetworkStack, StackConfig
from repro.overlay.host import Host
from repro.sim.engine import Simulator


def build(mode="host", falcon=None, **kwargs):
    sim = Simulator()
    host = Host(
        sim,
        StackConfig(mode=mode, falcon=falcon, rps_cpus=[1], **kwargs),
        num_cpus=8,
    )
    return sim, host


def send_packets(sim, host, flow, count, size=100, interval=2.0):
    for i in range(count):
        skb = Skb(
            flow,
            size=size + (50 if host.stack.is_overlay else 0),
            wire_size=size + 88,
            msg_id=i,
            msg_size=size,
            seq=i,
            t_send=sim.now + i * interval,
            encapsulated=host.stack.is_overlay,
        )
        sim.schedule(i * interval, host.stack.inject, skb)


class TestHostPath:
    def test_end_to_end_delivery(self):
        sim, host = build("host")
        flow = FlowKey.make(1, host.host_ip, PROTO_UDP)
        got = []
        host.stack.open_socket(flow, app_cpu=2, on_message=lambda s, skb, lat: got.append(skb))
        send_packets(sim, host, flow, 20)
        sim.run(until=10000.0)
        assert len(got) == 20

    def test_messages_in_order(self):
        sim, host = build("host")
        flow = FlowKey.make(1, host.host_ip, PROTO_UDP)
        order = []
        host.stack.open_socket(
            flow, app_cpu=2, on_message=lambda s, skb, lat: order.append(skb.msg_id)
        )
        send_packets(sim, host, flow, 50, interval=0.5)
        sim.run(until=10000.0)
        assert order == sorted(order)

    def test_stage_graph_host(self):
        _sim, host = build("host")
        assert set(host.stack.stages) == {"pnic", "hoststack"}

    def test_unroutable_counted(self):
        sim, host = build("host")
        flow = FlowKey.make(1, host.host_ip, PROTO_UDP)  # no socket bound
        send_packets(sim, host, flow, 5)
        sim.run(until=10000.0)
        assert host.stack.unroutable_packets == 5

    def test_rps_moves_processing_off_irq_core(self):
        sim, host = build("host")
        flow = FlowKey.make(1, host.host_ip, PROTO_UDP)
        host.stack.open_socket(flow, app_cpu=2)
        send_packets(sim, host, flow, 50, interval=0.5)
        sim.run(until=10000.0)
        acct = host.machine.acct
        # Driver work on core 0, protocol work on core 1 (the RPS target).
        assert acct.busy_us_label(0, "skb_alloc") > 0
        assert acct.busy_us_label(1, "l4_rcv") > 0
        assert acct.busy_us_label(0, "l4_rcv") == 0


class TestOverlayPath:
    def test_stage_graph_overlay(self):
        _sim, host = build("overlay")
        assert set(host.stack.stages) == {
            "pnic",
            "hoststack_outer",
            "vxlan",
            "container",
        }

    def test_end_to_end_delivery_and_decap(self):
        sim, host = build("overlay")
        container = host.launch_container("c")
        flow = FlowKey.make(1, container.private_ip, PROTO_UDP)
        got = []
        host.stack.open_socket(flow, app_cpu=2, on_message=lambda s, skb, lat: got.append(skb))
        send_packets(sim, host, flow, 10)
        sim.run(until=10000.0)
        assert len(got) == 10
        assert all(not skb.encapsulated for skb in got)  # vxlan_rcv stripped it

    def test_vanilla_overlay_serializes_softirqs_on_rps_core(self):
        """The paper's root cause: all three overlay softirq stages of a
        flow stack on the single RPS target core."""
        sim, host = build("overlay")
        container = host.launch_container("c")
        flow = FlowKey.make(1, container.private_ip, PROTO_UDP)
        host.stack.open_socket(flow, app_cpu=2)
        send_packets(sim, host, flow, 50, interval=0.5)
        sim.run(until=10000.0)
        acct = host.machine.acct
        for label in ("vxlan_rcv", "br_handle_frame", "veth_xmit", "l4_rcv"):
            assert acct.busy_us_label(1, label) > 0, label
            for cpu in (3, 4, 5, 6, 7):
                assert acct.busy_us_label(cpu, label) == 0, (label, cpu)

    def test_overlay_traverses_all_devices(self):
        sim, host = build("overlay")
        container = host.launch_container("c")
        flow = FlowKey.make(1, container.private_ip, PROTO_UDP)
        seen = []
        host.stack.open_socket(
            flow, app_cpu=2, on_message=lambda s, skb, lat: seen.append(skb.dev_ifindex)
        )
        send_packets(sim, host, flow, 3)
        sim.run(until=10000.0)
        # The last device a packet belonged to is the veth (container side).
        assert seen and all(ifindex == IFINDEX_VETH for ifindex in seen)

    def test_overlay_raises_more_softirqs_than_host(self):
        results = {}
        for mode in ("host", "overlay"):
            sim, host = build(mode)
            if mode == "overlay":
                container = host.launch_container("c")
                flow = FlowKey.make(1, container.private_ip, PROTO_UDP)
            else:
                flow = FlowKey.make(1, host.host_ip, PROTO_UDP)
            host.stack.open_socket(flow, app_cpu=2)
            send_packets(sim, host, flow, 100, interval=0.5)
            sim.run(until=10000.0)
            results[mode] = host.stack.softnet.softirq_raises
        ratio = results["overlay"] / results["host"]
        assert 2.0 < ratio < 4.5  # the paper measures 3.6x

    def test_overlay_latency_higher_than_host(self):
        latencies = {}
        for mode in ("host", "overlay"):
            sim, host = build(mode)
            if mode == "overlay":
                container = host.launch_container("c")
                flow = FlowKey.make(1, container.private_ip, PROTO_UDP)
            else:
                flow = FlowKey.make(1, host.host_ip, PROTO_UDP)
            samples = []
            host.stack.open_socket(
                flow, app_cpu=2, on_message=lambda s, skb, lat: samples.append(lat)
            )
            send_packets(sim, host, flow, 20, interval=20.0)
            sim.run(until=10000.0)
            latencies[mode] = sum(samples) / len(samples)
        assert latencies["overlay"] > latencies["host"] * 1.3


class TestFalconPath:
    def make_falcon(self, **cfg):
        falcon = FalconConfig(cpus=[3, 4, 5, 6], **cfg)
        sim, host = build("overlay", falcon=falcon)
        container = host.launch_container("c")
        return sim, host, container

    def test_falcon_spreads_stages_across_cores(self):
        sim, host, container = self.make_falcon()
        flow = FlowKey.make(1, container.private_ip, PROTO_UDP)
        host.stack.open_socket(flow, app_cpu=2)
        send_packets(sim, host, flow, 100, interval=0.5)
        sim.run(until=10000.0)
        acct = host.machine.acct
        vxlan_cores = {
            cpu for cpu in range(8) if acct.busy_us_label(cpu, "br_handle_frame") > 0
        }
        container_cores = {
            cpu for cpu in range(8) if acct.busy_us_label(cpu, "l4_rcv") > 0
        }
        assert vxlan_cores <= {3, 4, 5, 6}
        assert container_cores <= {3, 4, 5, 6}
        # The outer host stack stays on the RPS core (Falcon coexists with RPS).
        assert acct.busy_us_label(1, "vxlan_rcv") > 0

    def test_falcon_preserves_order(self):
        sim, host, container = self.make_falcon()
        flow = FlowKey.make(1, container.private_ip, PROTO_UDP)
        order = []
        host.stack.open_socket(
            flow, app_cpu=2, on_message=lambda s, skb, lat: order.append(skb.msg_id)
        )
        send_packets(sim, host, flow, 200, interval=0.3)
        sim.run(until=20000.0)
        assert len(order) == 200
        assert order == sorted(order)

    def test_falcon_same_flow_same_stage_core_is_stable(self):
        sim, host, container = self.make_falcon(policy="static")
        flow = FlowKey.make(1, container.private_ip, PROTO_UDP)
        host.stack.open_socket(flow, app_cpu=2)
        send_packets(sim, host, flow, 60, interval=0.5)
        sim.run(until=10000.0)
        acct = host.machine.acct
        # Static policy: exactly one core carries each overlay stage.
        for label in ("br_handle_frame", "l4_rcv"):
            cores = [
                cpu for cpu in range(8) if acct.busy_us_label(cpu, label) > 0
            ]
            assert len(cores) == 1, label

    def test_gro_split_moves_gro_off_driver_core(self):
        falcon = FalconConfig(cpus=[3, 4, 5, 6], split_gro=True)
        sim, host = build("host", falcon=falcon)
        from repro.kernel.skb import PROTO_TCP

        flow = FlowKey.make(1, host.host_ip, PROTO_TCP)
        host.stack.open_socket(flow, app_cpu=2)
        for i in range(30):
            skb = Skb(
                flow, size=1460, wire_size=1548, msg_id=i, msg_size=1460,
                seq=i, t_send=0.0,
            )
            sim.schedule(i * 2.0, host.stack.inject, skb)
        sim.run(until=10000.0)
        acct = host.machine.acct
        assert acct.busy_us_label(0, "skb_alloc") > 0
        assert acct.busy_us_label(0, "napi_gro_receive") == 0
        gro_cores = {
            cpu for cpu in range(8) if acct.busy_us_label(cpu, "napi_gro_receive") > 0
        }
        assert gro_cores and gro_cores <= {3, 4, 5, 6}

    def test_split_same_core_workaround(self):
        falcon = FalconConfig(cpus=[3, 4], split_gro=True, split_same_core=True)
        sim, host = build("host", falcon=falcon)
        from repro.kernel.skb import PROTO_TCP

        flow = FlowKey.make(1, host.host_ip, PROTO_TCP)
        host.stack.open_socket(flow, app_cpu=2)
        for i in range(10):
            skb = Skb(
                flow, size=1460, wire_size=1548, msg_id=i, msg_size=1460,
                seq=i, t_send=0.0,
            )
            sim.schedule(i * 2.0, host.stack.inject, skb)
        sim.run(until=10000.0)
        # The split half never leaves core 0 (Section 6.4 workaround).
        assert host.machine.acct.busy_us_label(0, "napi_gro_receive") > 0

    def test_load_gate_falls_back_to_vanilla(self):
        sim, host, container = self.make_falcon(load_threshold=0.01)
        # Saturate the falcon CPU loads so the gate trips immediately.
        for cpu in (3, 4, 5, 6):
            host.machine.cpus[cpu].load = 1.0
        flow = FlowKey.make(1, container.private_ip, PROTO_UDP)
        host.stack.open_socket(flow, app_cpu=2)
        send_packets(sim, host, flow, 30, interval=5.0)
        sim.run(until=1000.0)  # short: before the load tracker decays
        acct = host.machine.acct
        # All overlay stages stayed on the RPS core.
        assert acct.busy_us_label(1, "br_handle_frame") > 0
        for cpu in (3, 4, 5, 6):
            assert acct.busy_us_label(cpu, "br_handle_frame") == 0
