"""Falcon — fast and balanced container networking (the paper's contribution).

Falcon parallelizes the prolonged data path of a single overlay-network
flow with three techniques (Section 4):

1. **Softirq pipelining** (:mod:`~repro.core.pipelining`) — stage
   transition functions steer each device's softirq stage of a flow to a
   distinct core, selected by hashing flow *and* device identity.
2. **Softirq splitting** (:mod:`~repro.core.splitting`) — a heavy device's
   processing is split at function granularity across cores (GRO
   splitting being the shipped instance).
3. **Dynamic load balancing** (:mod:`~repro.core.balancing`) — a
   two-random-choice CPU selection gated by a system-load threshold
   (Algorithm 1).

:class:`~repro.core.falcon.FalconSteering` ties the three together and is
what the kernel stack consults at every stage-transition point.

Two extensions implement the paper's stated future work (Section 6.4):
:mod:`~repro.core.dynamic` (runtime function-level splitting, replacing
the offline profiling + recompile workflow) and
:mod:`~repro.core.fairshare` (weighted per-tenant partitioning of
FALCON_CPUS for multi-user environments).
"""

from repro.core.balancing import (
    LeastLoadedBalancer,
    StaticHashBalancer,
    TwoChoiceBalancer,
    make_balancer,
)
from repro.core.config import FalconConfig
from repro.core.dynamic import DynamicSplitController, attach_dynamic_splitting
from repro.core.fairshare import FairShareBalancer, use_fair_share
from repro.core.falcon import FalconSteering
from repro.core.splitting import GRO_SPLIT, SplitSpec

__all__ = [
    "FalconConfig",
    "FalconSteering",
    "TwoChoiceBalancer",
    "StaticHashBalancer",
    "LeastLoadedBalancer",
    "make_balancer",
    "SplitSpec",
    "GRO_SPLIT",
    "DynamicSplitController",
    "attach_dynamic_splitting",
    "FairShareBalancer",
    "use_fair_share",
]
