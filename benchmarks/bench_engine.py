"""Event-engine microbenchmarks: raw scheduler throughput.

Unlike the figure benches (simulation campaigns run once), these are
true microbenchmarks of the event core: schedule/cancel churn against
each scheduler implementation and the ``post_batch`` NAPI-storm
pattern. They pin the performance-relevant *semantics* — both
schedulers agree on the final clock and event count for the identical
workload — while pytest-benchmark records the throughput.
"""

import pytest

from repro.bench.suite import (
    _engine_churn,
    _engine_post_batch_storm,
    derive_bench_seed,
)

#: Same seed derivation `repro bench` uses, so numbers line up.
SEED = derive_bench_seed(0, "engine-churn-heap")


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_engine_churn(benchmark, quick, scheduler):
    headline = benchmark.pedantic(
        _engine_churn,
        args=(scheduler, SEED, True if quick else False),
        rounds=1,
        iterations=1,
    )
    assert headline["scheduler"] == scheduler
    assert headline["sim_events"] > 0
    assert headline["cancelled"] > 0


def test_engine_churn_schedulers_agree(quick):
    heap = _engine_churn("heap", SEED, quick)
    calendar = _engine_churn("calendar", SEED, quick)
    assert heap["final_clock_us"] == calendar["final_clock_us"]
    assert heap["sim_events"] == calendar["sim_events"]
    assert heap["cancelled"] == calendar["cancelled"]


def test_engine_post_batch_storm(benchmark, quick):
    headline = benchmark.pedantic(
        _engine_post_batch_storm,
        args=(SEED, True if quick else False),
        rounds=1,
        iterations=1,
    )
    assert headline["packets"] == headline["rounds"] * headline["batch"]
