"""Figure 2 — motivation measurements (overlay vs native)."""

from conftest import run_figure

from repro.experiments import fig02_motivation


def test_fig02_motivation(benchmark, quick):
    out = run_figure(benchmark, fig02_motivation, quick)

    # Headline shapes from the paper:
    # (b) the overlay's packet-rate deficit is largest for small packets.
    rates = out.series["pktrate_vs_size"]
    small = min(rates)
    host_small, con_small = rates[small]
    assert con_small < 0.6 * host_small

    # (d) overlay latency is clearly above native for both protocols.
    for proto in ("udp", "tcp"):
        host_lat, con_lat = out.series["latency"][proto]
        assert con_lat > 1.2 * host_lat

    # (c) the overlay's multi-flow loss grows with the flow:core ratio.
    multiflow = out.series["multiflow"]
    if (4, 4) in multiflow and (16, 4) in multiflow:
        host_11, con_11 = multiflow[(4, 4)]
        host_41, con_41 = multiflow[(16, 4)]
        assert con_41 / host_41 < con_11 / host_11

    # (a) at 10G with 64 KB messages the penalty shrinks vs 100G (the
    # link, not the CPU, is the native bottleneck).
    throughput = out.series["throughput_64k"]
    if (10.0, "udp") in throughput:
        host10, con10 = throughput[(10.0, "udp")]
        host100, con100 = throughput[(100.0, "udp")]
        assert con100 / host100 < 0.7  # big loss at 100G
        assert con10 / host10 > con100 / host100  # smaller gap at 10G
