"""Determinism rules (SIM1xx).

Two runs of the simulator with the same seed must be bit-identical:
golden traces, the differential suite and the seed-matrix tests all rest
on it. These rules ban the ways nondeterminism classically leaks into a
DES — wall-clock reads, RNG that bypasses the seeded registry, object
identity as an ordering key, and set iteration feeding the scheduler.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Rule,
    last_segment,
)

#: Wall-clock entry points. ``time.sleep`` is *blocking*, not a clock
#: read, and is handled by DES202.
WALL_CLOCK_CALLS: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Call names whose presence marks a loop body as feeding the event
#: scheduler (the DES engine API plus the softirq raise/enqueue layer).
SCHEDULING_CALLS: Set[str] = {
    "schedule",
    "schedule_at",
    "post",
    "post_at",
    "post_batch",
    "submit",
    "submit_multi",
    "raise_net_rx",
    "enqueue_backlog",
    "enqueue_to_backlog",
}

#: Ordering helpers whose key function must be deterministic.
ORDERING_CALLS: Set[str] = {
    "sorted",
    "sort",
    "min",
    "max",
    "heappush",
    "heappushpop",
    "nsmallest",
    "nlargest",
}


class WallClockRule(Rule):
    """SIM101: wall-clock time read inside the reproduction."""

    id = "SIM101"
    title = "no wall-clock time"
    rationale = (
        "Simulated time is sim.now; reading the host clock makes results "
        "depend on machine speed and run-to-run scheduling. Harness "
        "self-timing must go through a @lint_exempt-annotated helper."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            kind, name = resolved
            if kind == "module" and name in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call {name}() — use the simulation clock "
                    "(sim.now) or an explicitly @lint_exempt harness helper",
                )


class UnseededRngRule(Rule):
    """SIM102: RNG that does not flow through the RngRegistry."""

    id = "SIM102"
    title = "all randomness via sim.rng.RngRegistry"
    rationale = (
        "Module-level random functions share hidden global state; "
        "os.urandom/uuid4/secrets are nondeterministic by design. Every "
        "draw must come from a named, seeded RngRegistry stream so that "
        "perturbing one component cannot shift another's draws."
    )

    _BANNED_PREFIXES = ("random.", "numpy.random.", "secrets.")
    _BANNED_EXACT = {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random",  # ``from random import random`` resolves to random.random
    }

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None or resolved[0] != "module":
                continue
            name = resolved[1]
            if name in self._BANNED_EXACT or any(
                name.startswith(prefix) or name == prefix[:-1]
                for prefix in self._BANNED_PREFIXES
            ):
                yield self.finding(
                    ctx, node,
                    f"direct RNG call {name}() — draw from a named "
                    "sim.rng.RngRegistry stream instead",
                )


class IdentityOrderingRule(Rule):
    """SIM103: ordering derived from id() or object hash()."""

    id = "SIM103"
    title = "no id()/hash()-derived ordering"
    rationale = (
        "id() is a heap address and object.__hash__ derives from it; "
        "ordering by either changes run to run. Ties in event ordering "
        "must break on explicit sequence numbers (engine.Event.seq)."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = last_segment(node.func)
            if name not in ORDERING_CALLS:
                continue
            yield from self._check_key_kwarg(ctx, node)
            yield from self._check_args(ctx, node)

    def _check_key_kwarg(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            if isinstance(value, ast.Name) and value.id in ("id", "hash"):
                yield self.finding(
                    ctx, value,
                    f"ordering key is builtin {value.id} — object identity "
                    "is not stable across runs",
                )
                continue
            for sub in ast.walk(value):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id in ("id", "hash")
                ):
                    yield self.finding(
                        ctx, sub,
                        f"ordering key calls builtin {sub.func.id}() — "
                        "object identity is not stable across runs",
                    )

    def _check_args(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        for arg in node.args:
            for sub in ast.walk(arg):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                ):
                    yield self.finding(
                        ctx, sub,
                        "id() feeds an ordering operation — object identity "
                        "is not stable across runs",
                    )


class SetIterationRule(Rule):
    """SIM104: set iteration feeding event scheduling."""

    id = "SIM104"
    title = "no set iteration into the scheduler"
    rationale = (
        "Set iteration order depends on insertion history and (for str "
        "keys) on PYTHONHASHSEED. Scheduling events while iterating a "
        "set makes tie-breaking nondeterministic; iterate a list or "
        "sorted() view instead."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        for func in ctx.functions():
            set_names = self._set_names(func)
            for node in ast.walk(func):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                if not self._is_set_expr(node.iter, set_names):
                    continue
                if self._body_schedules(node.body):
                    yield self.finding(
                        ctx, node,
                        "iterating a set while scheduling events — set "
                        "order is not deterministic; use a list or "
                        "sorted() with an explicit key",
                    )

    @staticmethod
    def _set_names(func: ast.AST) -> Set[str]:
        """Local names whose every assignment is a set expression."""
        assigned: Dict[str, List[bool]] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                value_is_set = SetIterationRule._is_set_literalish(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigned.setdefault(target.id, []).append(value_is_set)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assigned.setdefault(node.target.id, []).append(
                        SetIterationRule._is_set_literalish(node.value)
                    )
        return {name for name, flags in assigned.items() if flags and all(flags)}

    @staticmethod
    def _is_set_literalish(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    @classmethod
    def _is_set_expr(cls, node: ast.AST, set_names: Set[str]) -> bool:
        if cls._is_set_literalish(node):
            return True
        return isinstance(node, ast.Name) and node.id in set_names

    @staticmethod
    def _body_schedules(body: Iterable[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    if last_segment(node.func) in SCHEDULING_CALLS:
                        return True
        return False


DETERMINISM_RULES = (
    WallClockRule(),
    UnseededRngRule(),
    IdentityOrderingRule(),
    SetIterationRule(),
)
