"""Property-based tests for the per-flow fast-path cache.

The safety property the invalidation protocol must uphold: whatever the
interleaving of inserts, accesses, evictions and invalidations
(per-flow, per-IP, or full flush), the table never grants the fast path
to a *stale* entry — one invalidated (and not re-inserted) since, or
one whose flow still has slow-path packets in flight. A stale grant is
exactly the bug class container churn produces in the real system:
packets delivered to a veth whose container is gone.

The test mirrors every operation into a trivial model (a dict of live
keys plus an inflight counter) and checks the table's verdicts and
contents against it after each step; a second property pins LRU
eviction order to the model's recency list, so determinism is checked
against an independent implementation, not just against a rerun.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.flowcache import FlowTable

#: Small universes force collisions: few flows over fewer slots, few
#: distinct IPs so invalidate_ip sweeps multiple entries at once.
IPS = st.integers(0, 3)
KEYS = st.tuples(IPS, IPS, st.just(17), st.integers(0, 2), st.just(53))

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("access"), KEYS, st.integers(1, 3)),
        st.tuples(st.just("slow_done"), KEYS, st.integers(1, 3)),
        st.tuples(st.just("insert"), KEYS),
        st.tuples(st.just("invalidate"), KEYS),
        st.tuples(st.just("invalidate_ip"), IPS),
        st.tuples(st.just("invalidate_all")),
    ),
    min_size=1,
    max_size=60,
)


class ModelTable:
    """An obviously-correct mirror: recency-ordered live set + ledger."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.live = OrderedDict()  # key -> None, LRU-oldest first
        self.inflight = {}

    def touch(self, key):
        self.live[key] = None
        self.live.move_to_end(key)
        while len(self.live) > self.capacity:
            self.live.popitem(last=False)

    def would_hit(self, key):
        return key in self.live and not self.inflight.get(key, 0)


@given(st.integers(1, 4), OPS)
@settings(max_examples=200, deadline=None)
def test_no_interleaving_grants_a_stale_hit(capacity, ops):
    table = FlowTable(capacity)
    model = ModelTable(capacity)
    for op in ops:
        if op[0] == "access":
            _, key, segs = op
            expected = model.would_hit(key)
            granted = table.access(key, segs)
            # The verdict itself: a grant for an invalidated/evicted or
            # gated flow would be a stale delivery.
            assert granted == expected
            if granted:
                model.touch(key)
            else:
                model.inflight[key] = model.inflight.get(key, 0) + segs
        elif op[0] == "slow_done":
            _, key, segs = op
            table.slow_done(key, segs)
            left = model.inflight.pop(key, 0) - segs
            if left > 0:
                model.inflight[key] = left
        elif op[0] == "insert":
            table.insert(op[1])
            model.touch(op[1])
        elif op[0] == "invalidate":
            table.invalidate(op[1])
            model.live.pop(op[1], None)
        elif op[0] == "invalidate_ip":
            table.invalidate_ip(op[1])
            for key in [k for k in model.live if op[1] in (k[0], k[1])]:
                del model.live[key]
        else:
            table.invalidate_all()
            model.live.clear()
        # Contents (and LRU order) must track the model exactly — this
        # is what makes eviction deterministic and invalidation total.
        assert table.keys() == list(model.live)
        assert len(table) <= capacity
    # The gate's ledger must agree too: no phantom reservations left.
    for key in set(model.inflight) | {k for k in model.live}:
        assert table.slow_inflight(key) == model.inflight.get(key, 0)


@given(st.integers(1, 3), st.lists(KEYS, min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_counter_identities_hold(capacity, keys):
    """inserts - evictions - invalidations == live entries, and
    hits + misses == accesses, for any access/insert sequence."""
    table = FlowTable(capacity)
    accesses = 0
    for index, key in enumerate(keys):
        if not table.access(key, 1):
            table.slow_done(key, 1)
            table.insert(key)
        accesses += 1
        if index % 5 == 4:
            table.invalidate(key)
    assert table.hits + table.misses == accesses
    assert table.inserts - table.evictions - table.invalidations == len(table)
