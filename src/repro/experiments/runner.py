"""Shared machinery for the figure-reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import FalconConfig
from repro.metrics.report import Table

#: The paper's three comparison cases (Section 6): native host network,
#: vanilla Docker overlay, Falcon-enabled overlay.
MODE_HOST = "Host"
MODE_CON = "Con"
MODE_FALCON = "Falcon"


def falcon_config(**overrides) -> FalconConfig:
    """The micro-benchmark Falcon setup: dedicated FALCON_CPUS."""
    kwargs = dict(cpus=[3, 4, 5, 6])
    kwargs.update(overrides)
    return FalconConfig(**kwargs)


def standard_modes(
    falcon_overrides: Optional[dict] = None,
    include_host: bool = True,
) -> List[Tuple[str, dict]]:
    """(label, Testbed kwargs) for Host / Con / Falcon."""
    modes: List[Tuple[str, dict]] = []
    if include_host:
        modes.append((MODE_HOST, dict(mode="host")))
    modes.append((MODE_CON, dict(mode="overlay")))
    modes.append(
        (MODE_FALCON, dict(mode="overlay", falcon=falcon_config(**(falcon_overrides or {}))))
    )
    return modes


@dataclass
class ExperimentOutput:
    """Result of one figure reproduction."""

    figure: str
    title: str
    tables: List[Table] = field(default_factory=list)
    #: Raw series for programmatic checks: name -> list of (x, y) or rows.
    series: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        header = f"== {self.figure}: {self.title} =="
        return "\n\n".join([header] + [table.render() for table in self.tables])

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())


def durations(quick: bool, full_ms: float = 25.0, warm_ms: float = 10.0):
    """Scale measurement windows down for quick (smoke) runs."""
    if quick:
        return dict(duration_ms=max(full_ms / 4, 4.0), warmup_ms=max(warm_ms / 2, 3.0))
    return dict(duration_ms=full_ms, warmup_ms=warm_ms)
