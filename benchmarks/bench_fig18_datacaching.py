"""Figure 18 — CloudSuite Data Caching (memcached) latency."""

from conftest import run_figure

from repro.experiments import fig18_datacaching


def test_fig18_datacaching(benchmark, quick):
    out = run_figure(benchmark, fig18_datacaching, quick)

    # Ten clients: kernel interrupt handling dominates; Falcon cuts both
    # the average and the tail substantially (paper: 51% / 53%).
    ten = out.series[10]
    assert ten["Falcon"]["avg"] < 0.75 * ten["Con"]["avg"]
    assert ten["Falcon"]["p99"] < 0.8 * ten["Con"]["p99"]

    if 1 in out.series:
        # One client: only a slight tail improvement (paper: ~7%).
        one = out.series[1]
        assert one["Falcon"]["p99"] < 1.1 * one["Con"]["p99"]
