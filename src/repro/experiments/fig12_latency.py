"""Figure 12 — per-message latency, underloaded and overloaded.

Four panels: (a) UDP 16 B underloaded, (b) TCP 4 KB underloaded,
(c) UDP 16 B overloaded, (d) TCP 4 KB overloaded. The paper's reading:
underloaded, Falcon improves modestly on average and strongly at the
tail; overloaded, softirq pipelining removes most of the queueing delay
and approaches native latency.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentOutput,
    durations,
    falcon_config,
    standard_modes,
)
from repro.metrics.report import Table
from repro.workloads.sockperf import Experiment

PCTS = ("avg", "p90", "p99", "p99.9")


def _table(title):
    return Table(["case"] + list(PCTS), title=title)


def _row(table, label, latency):
    table.add_row(label, *[latency[p] for p in PCTS])


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 12", "Effect of Falcon on per-message latency (µs)")
    dur = durations(quick, 20.0, 8.0)
    series = {}

    # (a) underloaded UDP: Poisson at ~75% of the vanilla overlay capacity.
    table_a = _table("(a) UDP 16 B, underloaded (Poisson 300 kpps)")
    for label, kwargs in standard_modes():
        result = Experiment(**kwargs).run_udp_fixed(
            16, rate_pps=300_000, poisson=True, **dur
        )
        _row(table_a, label, result.latency)
        series[("udp_under", label)] = result.latency
    out.tables.append(table_a)

    # (b) underloaded TCP 4 KB (paced). GRO splitting is shown as an
    # extra configuration: at these rates the driver core is far from
    # saturated, so the split's extra hop is pure overhead — the
    # Section 6.4 caveat ("splitting should be applied with discretion").
    table_b = _table("(b) TCP 4 KB, underloaded (60 kmsg/s)")
    cases_b = standard_modes() + [
        (
            "Falcon+split",
            dict(mode="overlay", falcon=falcon_config(split_gro=True)),
        )
    ]
    for label, kwargs in cases_b:
        result = Experiment(**kwargs).run_tcp_fixed(
            4096, rate_pps=60_000, poisson=True, **dur
        )
        _row(table_b, label, result.latency)
        series[("tcp_under", label)] = result.latency
    out.tables.append(table_b)

    # (c) overloaded UDP: "each case is driven to its respective maximum
    # throughput before packet drop occurs" — measure each mode's
    # capacity with a short stress probe, then hold it at 92% of that
    # with Poisson arrivals. (Driving far past saturation would only
    # measure buffer depths: every queue pegs at its capacity.)
    table_c = _table("(c) UDP 16 B, overloaded (92% of each case's maximum)")
    for label, kwargs in standard_modes():
        probe = Experiment(**kwargs).run_udp_stress(
            16, duration_ms=dur["duration_ms"] / 2, warmup_ms=dur["warmup_ms"]
        )
        rate = probe.message_rate_pps * 0.92
        result = Experiment(**kwargs).run_udp_fixed(
            16, rate_pps=rate, clients=3, poisson=True, **dur
        )
        _row(table_c, label, result.latency)
        series[("udp_over", label)] = result.latency
    out.tables.append(table_c)

    # (d) overloaded TCP 4 KB: a fixed rate just under the vanilla
    # overlay's capacity, so its queueing delay dominates while Falcon
    # and the host run with headroom (the paper drives each case to its
    # maximum; at the vanilla maximum the comparison is the same).
    table_d = _table("(d) TCP 4 KB, overloaded (240 kmsg/s, window 256)")
    for label, kwargs in standard_modes():
        result = Experiment(**kwargs).run_tcp_fixed(
            4096, rate_pps=240_000, window_msgs=256, poisson=True, **dur
        )
        _row(table_d, label, result.latency)
        series[("tcp_over", label)] = result.latency
    out.tables.append(table_d)

    out.series.update(series)
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
