"""Flow-cache fast path: stage skips must still respect the derived order.

The cache-hit edge (driver -> fastpath -> container tail) is part of the
derived spec, so a legitimate hit needs no suppression — but code that
"bypasses" stages by running the fast-path step *after* the packet is
already deep in the slow chain (i.e. without a cache check at the driver
exit) moves the skb backwards and must still be flagged.
"""


class LateFastPath:
    def bypass(self, stack, skb):
        stack.br_handle_frame(skb)  # container-side bridge: rank 5
        stack.flowcache_fastpath(skb)  # expect: FLOW401


def stale_hit(stack, skb):
    # A cache hit granted after delivery would replay a finished packet.
    stack.deliver_to_socket(skb)
    stack.flowcache_fastpath(skb)  # expect: FLOW402
