"""Container overlay-network control plane.

The data-plane mechanics (VXLAN encap/decap, bridge, veth) live in
:mod:`repro.kernel`; this package provides the orchestration-level
objects around them: containers with private IPs
(:mod:`~repro.overlay.container`), hosts running a stack
(:mod:`~repro.overlay.host`), the distributed key-value store mapping
container IPs to host IPs (:mod:`~repro.overlay.kvstore`), and the
overlay network object tying them together
(:mod:`~repro.overlay.network`) the way Docker's overlay driver does.
"""

from repro.overlay.container import Container
from repro.overlay.host import Host
from repro.overlay.kvstore import KvStore
from repro.overlay.network import OverlayNetwork

__all__ = ["Container", "Host", "KvStore", "OverlayNetwork"]
