"""Unit tests for link, NIC and locality models."""

import pytest

from repro.hw.cache import LocalityModel
from repro.hw.link import Link
from repro.hw.nic import Nic
from repro.kernel.skb import FlowKey, Skb
from repro.sim.engine import Simulator


class TestLink:
    def test_serialization_delay(self):
        sim = Simulator()
        link = Link(sim, bandwidth_gbps=10.0, propagation_us=0.0)
        assert link.serialization_us(1250) == pytest.approx(1.0)

    def test_frames_queue_fifo(self):
        sim = Simulator()
        link = Link(sim, bandwidth_gbps=10.0, propagation_us=0.5)
        arrivals = []
        link.send(1250, lambda: arrivals.append(sim.now))
        link.send(1250, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [1.5, 2.5]

    def test_idle_link_restarts_from_now(self):
        sim = Simulator()
        link = Link(sim, bandwidth_gbps=10.0, propagation_us=0.0)
        link.send(1250, lambda: None)
        sim.run()
        assert sim.now == 1.0
        arrivals = []
        sim.schedule(9.0, lambda: link.send(1250, lambda: arrivals.append(sim.now)))
        sim.run()
        assert arrivals == [11.0]

    def test_bandwidth_scales(self):
        sim = Simulator()
        fast = Link(sim, bandwidth_gbps=100.0)
        slow = Link(sim, bandwidth_gbps=10.0)
        assert fast.serialization_us(10000) == pytest.approx(
            slow.serialization_us(10000) / 10.0
        )

    def test_invalid_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            Link(sim, bandwidth_gbps=1.0, propagation_us=-1.0)

    def test_counters(self):
        sim = Simulator()
        link = Link(sim, bandwidth_gbps=10.0)
        link.send(100, lambda: None)
        link.send(200, lambda: None)
        assert link.frames_sent == 2
        assert link.bytes_sent == 300


def make_skb(flow=None, size=100):
    flow = flow or FlowKey.make(1, 2)
    return Skb(flow, size=size)


class TestNic:
    def test_irq_raised_once_while_napi_scheduled(self):
        nic = Nic(num_queues=1, ring_capacity=8)
        irqs = []
        nic.irq_handler = irqs.append
        flow = FlowKey.make(1, 2)
        for _ in range(5):
            nic.receive(make_skb(flow))
        # Only the first packet raises the interrupt; NAPI masks the rest.
        assert len(irqs) == 1
        assert len(nic.queues[0].ring) == 5

    def test_irq_re_enabled_after_napi_complete(self):
        nic = Nic(num_queues=1)
        irqs = []
        nic.irq_handler = irqs.append
        flow = FlowKey.make(1, 2)
        nic.receive(make_skb(flow))
        queue = nic.queues[0]
        queue.ring.clear()
        queue.napi_scheduled = False  # driver re-enables the IRQ
        nic.receive(make_skb(flow))
        assert len(irqs) == 2

    def test_ring_overflow_drops(self):
        nic = Nic(num_queues=1, ring_capacity=2)
        nic.irq_handler = lambda queue: None
        flow = FlowKey.make(1, 2)
        results = [nic.receive(make_skb(flow)) for _ in range(4)]
        assert results == [True, True, False, False]
        assert nic.total_drops == 2

    def test_rss_spreads_flows_by_hash(self):
        nic = Nic(num_queues=4)
        queues = {
            nic.select_queue(FlowKey.make(1, 2, sport=sport).hash).index
            for sport in range(64)
        }
        assert len(queues) > 1

    def test_rss_same_flow_same_queue(self):
        nic = Nic(num_queues=4)
        flow = FlowKey.make(9, 9)
        first = nic.select_queue(flow.hash)
        assert all(nic.select_queue(flow.hash) is first for _ in range(8))

    def test_missing_irq_handler_raises(self):
        nic = Nic()
        with pytest.raises(RuntimeError):
            nic.receive(make_skb())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Nic(num_queues=0)
        with pytest.raises(ValueError):
            Nic(num_queues=2, irq_cpus=[0])


class TestLocality:
    def test_same_core_is_free(self):
        model = LocalityModel()
        assert model.multiplier(3, 3) == 1.0
        assert model.multiplier(None, 3) == 1.0

    def test_cross_core_penalty(self):
        model = LocalityModel(cross_core=1.1, cores_per_socket=10)
        assert model.multiplier(0, 1) == pytest.approx(1.1)

    def test_cross_socket_penalty(self):
        model = LocalityModel(
            cross_core=1.1, cross_socket=1.3, cores_per_socket=10
        )
        assert model.multiplier(0, 10) == pytest.approx(1.3)
        assert model.multiplier(0, 9) == pytest.approx(1.1)

    def test_uniform_model(self):
        model = LocalityModel.uniform()
        assert model.multiplier(0, 5) == 1.0

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            LocalityModel(same_core=0.0)
