"""Figure 9a — the first (pNIC) stage saturates a core under TCP 4 KB.

Closed-loop TCP: with 4 KB messages, ``skb`` allocation and
``napi_gro_receive`` each consume roughly half of the driver core, while
UDP or small-message TCP leave it unsaturated — the condition that makes
GRO splitting worthwhile.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations, falcon_config
from repro.metrics.report import Table
from repro.workloads.sockperf import Experiment

DRIVER_CPU = 0


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 9a", "First-stage saturation and GRO splitting")
    dur = durations(quick, 20.0, 10.0)

    # Reference case: closed-loop TCP 4 KB saturates the driver core.
    tcp4k = Experiment(mode="host").run_tcp_stream(4096, window_msgs=64, **dur)
    matched_rate = tcp4k.message_rate_pps
    # Comparison cases at the *same message rate*: neither GRO-light
    # workload saturates the first stage (Section 4.2: "such a case does
    # not exist under UDP or TCP with small packets").
    cases = [
        ("TCP 4KB", tcp4k),
        (
            "TCP 1KB",
            Experiment(mode="host").run_tcp_fixed(
                1024, rate_pps=matched_rate, window_msgs=256, **dur
            ),
        ),
        (
            "UDP 4KB",
            Experiment(mode="host").run_udp_fixed(
                4096, rate_pps=matched_rate, clients=3, **dur
            ),
        ),
    ]
    table = Table(
        ["workload", "driver-core util %", "skb_alloc %", "napi_gro %"],
        title=(
            f"host network, driver core occupancy at ~{matched_rate/1e3:.0f} "
            "kmsg/s"
        ),
    )
    series = {}
    for name, result in cases:
        util = result.cpu_util[DRIVER_CPU] * 100
        skb_share = result.label_shares.get("skb_alloc", 0.0)
        gro_share = result.label_shares.get("napi_gro_receive", 0.0)
        table.add_row(name, util, skb_share * 100, gro_share * 100)
        series[name] = util
    out.tables.append(table)
    out.series["driver_util"] = series

    # Effect of GRO splitting on the saturated case.
    table2 = Table(
        ["config", "rate kmsg/s", "driver-core util %"],
        title="TCP 4KB with and without GRO splitting (host network)",
    )
    for label, falcon in (
        ("vanilla", None),
        ("GRO-split", falcon_config(split_gro=True)),
    ):
        result = Experiment(mode="host", falcon=falcon).run_tcp_stream(
            4096, window_msgs=64, **dur
        )
        table2.add_row(
            label, result.message_rate_pps / 1e3, result.cpu_util[DRIVER_CPU] * 100
        )
        out.series[f"split_{label}"] = result.cpu_util[DRIVER_CPU]
    out.tables.append(table2)
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
