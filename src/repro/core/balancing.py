"""CPU-selection policies for softirq balancing (Section 4.3).

The paper's central design is hash-based two-random-choice selection
(Algorithm 1, ``get_falcon_cpu``):

* the **first choice** is ``hash_32(skb.hash + ifindex)`` modulo the
  Falcon CPU set — a uniformly random but *sticky* core per
  (flow, device), spreading stages without measuring load;
* if that core's load exceeds the threshold, the hash is re-hashed for a
  **second choice**, which is committed to regardless of its load — the
  compromise that avoids both persistent hotspots (static hashing) and
  load-fluctuation thrash (always chasing the least-loaded core).

``StaticHashBalancer`` (first choice only) and ``LeastLoadedBalancer``
(always chase the minimum) exist as the ablations the paper argues
against; Figure 16's experiment compares them.
"""

from __future__ import annotations

from typing import List, Protocol

from repro.core.config import (
    POLICY_LEAST_LOADED,
    POLICY_STATIC,
    POLICY_TWO_CHOICE,
    FalconConfig,
)
from repro.hw.topology import Machine
from repro.kernel.hashing import hash_32


class Balancer(Protocol):
    """Selects a CPU from the Falcon set for one softirq."""

    def select(
        self, machine: Machine, cpus: List[int], skb_hash: int, ifindex: int
    ) -> int: ...


def _index(hash_value: int, n: int) -> int:
    """Map a 32-bit hash to a CPU slot using its *high* bits.

    ``hash_32`` is multiplicative, so its low bits are poorly mixed: with
    a small power-of-two CPU set, ``hash_32(h) % n`` is an affine
    function of ``h % n`` and the re-hash of Algorithm 1 line 25 would
    map half the slots back onto themselves — the second choice would be
    the first. Folding the high bits in first restores independence.
    """
    return ((hash_value >> 8) ^ (hash_value >> 20)) % n


def first_choice_cpu(cpus: List[int], skb_hash: int, ifindex: int) -> int:
    """Algorithm 1 lines 19–20: the sticky per-(flow, device) CPU."""
    return cpus[_index(hash_32(skb_hash + ifindex), len(cpus))]


def second_choice_cpu(cpus: List[int], skb_hash: int, ifindex: int) -> int:
    """Algorithm 1 lines 25–26: the double-hashed alternative."""
    first_hash = hash_32(skb_hash + ifindex)
    return cpus[_index(hash_32(first_hash), len(cpus))]


class StaticHashBalancer:
    """First choice only: hash (flow, device) to a fixed core.

    Deterministic and sticky — the ``static`` baseline in Figure 16 that
    cannot adapt when a flow suddenly intensifies.
    """

    def __init__(self, load_threshold: float = 1.0) -> None:
        self.load_threshold = load_threshold

    def select(
        self, machine: Machine, cpus: List[int], skb_hash: int, ifindex: int
    ) -> int:
        return first_choice_cpu(cpus, skb_hash, ifindex)


class TwoChoiceBalancer:
    """The paper's policy: double hashing away from an overloaded core."""

    def __init__(self, load_threshold: float = 0.85) -> None:
        self.load_threshold = load_threshold
        self.second_choices = 0

    def select(
        self, machine: Machine, cpus: List[int], skb_hash: int, ifindex: int
    ) -> int:
        cpu = first_choice_cpu(cpus, skb_hash, ifindex)
        if machine.cpus[cpu].load < self.load_threshold:
            return cpu
        # Second choice: re-hash. Committed to even if it is also busy,
        # which keeps the mapping stable and avoids load fluctuations.
        self.second_choices += 1
        return second_choice_cpu(cpus, skb_hash, ifindex)


class LeastLoadedBalancer:
    """Aggressive strawman: always pick the least-loaded Falcon CPU.

    The paper rejects this: per-packet load data is stale, so chasing the
    minimum causes migrations and load fluctuation. Included for the
    ablation benchmarks.
    """

    def __init__(self, load_threshold: float = 0.85) -> None:
        self.load_threshold = load_threshold

    def select(
        self, machine: Machine, cpus: List[int], skb_hash: int, ifindex: int
    ) -> int:
        return min(cpus, key=lambda index: machine.cpus[index].load)


def make_balancer(config: FalconConfig) -> Balancer:
    """Instantiate the balancer the configuration names."""
    threshold = config.load_threshold
    if config.policy == POLICY_TWO_CHOICE:
        return TwoChoiceBalancer(threshold)
    if config.policy == POLICY_STATIC:
        return StaticHashBalancer(threshold)
    if config.policy == POLICY_LEAST_LOADED:
        return LeastLoadedBalancer(threshold)
    raise ValueError(f"unknown policy {config.policy!r}")
