"""Physical NIC driver stage (``mlx5e_napi_poll``).

The first softirq stage: allocate the ``sk_buff`` for each descriptor and
run GRO. For TCP with large messages these two functions each consume
~45% of a core (Figure 9a) — the stage Falcon's GRO splitting divides.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel.costs import CostModel
from repro.kernel.gro import GroCluster
from repro.kernel.skb import Skb
from repro.kernel.stages import Step, fixed_cost


def skb_alloc_step(costs: CostModel) -> Step:
    return Step.simple("skb_alloc", costs.skb_alloc)


def gro_step(costs: CostModel, gro: Optional[GroCluster]) -> Step:
    """``napi_gro_receive``: full merge work for TCP, a quick look for UDP.

    When GRO is disabled (``gro is None``) the function degenerates to the
    cheap examine-and-pass path for all traffic.
    """

    def cost(skb: Skb) -> float:
        if gro is not None and skb.is_tcp:
            return costs.napi_gro_receive.cost(skb.size)
        return costs.gro_check.cost(skb.size)

    effect = None
    if gro is not None:
        def effect(skb: Skb, cpu_index: int) -> Optional[Skb]:
            return gro.feed(skb, cpu_index)

    return Step("napi_gro_receive", cost, effect)


def rps_steer_step(costs: CostModel) -> Step:
    """``get_rps_cpu`` + ``enqueue_to_backlog`` on the steering core."""
    return Step.simple("rps_steer", costs.rps_steer)


def driver_steps(costs: CostModel, gro: Optional[GroCluster]) -> List[Step]:
    """The un-split driver stage."""
    return [skb_alloc_step(costs), gro_step(costs, gro), rps_steer_step(costs)]


def driver_first_half_steps(costs: CostModel) -> List[Step]:
    """GRO splitting: the first half keeps only skb allocation, then a
    ``netif_rx`` stage transition moves the packet."""
    return [skb_alloc_step(costs), Step.simple("netif_rx", costs.netif_rx)]


def driver_second_half_steps(
    costs: CostModel, gro: Optional[GroCluster]
) -> List[Step]:
    """GRO splitting: the offloaded half — GRO plus the RPS handoff."""
    return [
        Step.simple("process_backlog", costs.backlog_dequeue),
        gro_step(costs, gro),
        rps_steer_step(costs),
    ]
