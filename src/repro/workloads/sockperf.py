"""sockperf-style micro-benchmark harness and the top-level Experiment API.

This module is the reproduction's equivalent of the paper's sockperf
test rig: it builds a two-machine testbed (a fully-simulated receiving
server plus sender clients over a serializing link), runs UDP stress /
fixed-rate / TCP streaming scenarios, and returns a :class:`RunResult`
with every quantity the paper's figures report — packet rate, goodput,
latency percentiles, per-core utilization, interrupt counts, drops.

Three network modes mirror the paper's comparison cases (Section 6):

* ``host``            — native network, no containers (Host),
* ``overlay``         — vanilla Docker/VXLAN overlay (Con),
* ``overlay + falcon``— Falcon-enabled overlay (pass a FalconConfig).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import FalconConfig, FlowCacheConfig
from repro.kernel.skb import PROTO_TCP, PROTO_UDP, FlowKey
from repro.kernel.stack import MODE_HOST, MODE_OVERLAY, StackConfig
from repro.metrics.meters import MeasurementWindow
from repro.overlay.host import Host
from repro.overlay.network import OverlayNetwork
from repro.sim.clock import MS
from repro.sim.engine import Simulator
from repro.workloads.flows import FlowState, TcpSender, UdpSender
from repro.workloads.traffic import ConstantRate, PoissonRate, Saturating


@dataclass
class RunResult:
    """Everything one scenario run measured."""

    mode: str
    proto: str
    message_size: int
    duration_us: float
    messages_delivered: int
    #: Delivered application messages per second.
    message_rate_pps: float
    #: Goodput in Gbit/s of delivered message payload.
    goodput_gbps: float
    #: Offered load in messages per second over the window.
    offered_pps: float
    latency: Dict[str, float]
    #: Per-core total utilization over the window (index = cpu).
    cpu_util: List[float]
    #: Per-core softirq-context utilization.
    cpu_softirq: List[float]
    #: Flamegraph-style busy-share per kernel function.
    label_shares: Dict[str, float]
    interrupts: Dict[str, int]
    softirq_raises: int
    #: net_rx_action handler invocations over the window.
    softirq_handler_runs: int
    #: Packets processed per pipeline stage over the window.
    stage_executions: Dict[str, int]
    drops: Dict[str, int]
    reordered_messages: int
    falcon_steered: int = 0
    falcon_fallbacks: int = 0
    #: Flow-cache counters (zero when the cache is off).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    cache_egress_hits: int = 0
    cache_egress_misses: int = 0
    #: Wire segments delivered via the cached fast path.
    fastpath_deliveries: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # Convenience aliases used throughout the experiments.
    @property
    def packet_rate_pps(self) -> float:
        return self.message_rate_pps

    @property
    def avg_latency_us(self) -> float:
        return self.latency.get("avg", 0.0)

    @property
    def p99_latency_us(self) -> float:
        return self.latency.get("p99", 0.0)


class Testbed:
    """A built scenario: server host, ingress link, flows and senders."""

    # Not a pytest test class, despite the Test* name.
    __test__ = False

    def __init__(
        self,
        mode: str = MODE_OVERLAY,
        falcon: Optional[FalconConfig] = None,
        flowcache: Optional[FlowCacheConfig] = None,
        kernel: str = "4.19",
        bandwidth_gbps: float = 100.0,
        num_cpus: int = 20,
        irq_cpus: Optional[List[int]] = None,
        rps_cpus: Optional[List[int]] = None,
        steering: str = "rps",
        app_cpus: Optional[List[int]] = None,
        gro: bool = True,
        batch_max: int = 16,
        backlog_capacity: int = 1000,
        rmem_packets: int = 4096,
        seed: int = 0,
        scheduler: Optional[str] = None,
    ) -> None:
        # None defers to REPRO_SIM_SCHEDULER (default "heap"), so a whole
        # run — goldens included — can be flipped from the environment.
        self.sim = Simulator(scheduler)
        self.mode = mode
        config = StackConfig(
            mode=mode,
            kernel=kernel,
            irq_cpus=irq_cpus or [0],
            nic_queues=len(irq_cpus or [0]),
            rps_cpus=rps_cpus if rps_cpus is not None else [1],
            steering=steering,
            falcon=falcon,
            flowcache=flowcache,
            gro_enabled=gro,
            batch_max=batch_max,
            backlog_capacity=backlog_capacity,
            rmem_packets=rmem_packets,
        )
        self.host = Host(self.sim, config, num_cpus=num_cpus, name="server", seed=seed)
        self.stack = self.host.stack
        self.link = self.host.attach_ingress(bandwidth_gbps)
        self.app_cpus = app_cpus or [2]
        self._next_app = 0
        self._next_client_ip = 0x0B000001 + seed * 4096
        # Vary ports with the seed so repeated runs draw different flow
        # hashes (the paper reports consistency across runs — each run's
        # flows hash differently).
        self._next_sport = 40000 + (seed * 131) % 10000
        self.senders: List = []
        self.window = MeasurementWindow(self.host.machine, self.stack)
        self._tcp_by_flow: Dict[int, TcpSender] = {}
        self._reorders_at_open = 0
        self._sockets: List = []

        if mode == MODE_OVERLAY:
            self.network = OverlayNetwork()
            self.server_container = self.host.launch_container("server")
            self.network.join(self.server_container)
        else:
            self.network = None
            self.server_container = None
        #: Server → client return link (built lazily by request/response
        #: workloads; the paper's testbed links are full duplex).
        self._egress_link = None

    @property
    def egress_link(self):
        if self._egress_link is None:
            from repro.hw.link import Link

            self._egress_link = Link(
                self.sim, self.link.bandwidth_gbps, self.link.propagation_us
            )
        return self._egress_link

    def new_container(self, name: str):
        """Launch another container and join it to the overlay network."""
        if self.mode != MODE_OVERLAY:
            raise ValueError("containers only exist in overlay mode")
        container = self.host.launch_container(name)
        self.network.join(container)
        return container

    # ------------------------------------------------------------------
    # Flow construction
    # ------------------------------------------------------------------
    def _alloc_app_cpu(self) -> int:
        cpu = self.app_cpus[self._next_app % len(self.app_cpus)]
        self._next_app += 1
        return cpu

    def _make_flow(self, proto: int, dport: int, container=None) -> FlowKey:
        src_ip = self._next_client_ip
        self._next_client_ip += 1
        sport = self._next_sport
        self._next_sport += 1
        if self.mode == MODE_OVERLAY:
            dst_ip = (container or self.server_container).private_ip
            # Exercise the control plane the way an encapsulating sender does.
            self.network.resolve_host(dst_ip)
        else:
            dst_ip = self.host.host_ip
        return FlowKey(src_ip, dst_ip, proto, sport, dport)

    def _open_socket(
        self,
        flow: FlowKey,
        app_cpu: Optional[int],
        on_message=None,
        auto_credit: bool = True,
    ):
        cpu = app_cpu if app_cpu is not None else self._alloc_app_cpu()

        def callback(socket, skb, latency_us):
            self.window.on_message(socket, skb, latency_us)
            if auto_credit:
                sender = self._tcp_by_flow.get(skb.flow.flow_id)
                if sender is not None:
                    sender.credit()
            if on_message is not None:
                on_message(socket, skb, latency_us)

        socket = self.stack.open_socket(flow, cpu, on_message=callback)
        self._sockets.append(socket)
        return socket

    def sender_for(self, flow: FlowKey):
        """The TcpSender driving ``flow`` (for manual credit workloads)."""
        return self._tcp_by_flow.get(flow.flow_id)

    def add_udp_flow(
        self,
        message_size: int,
        clients: int = 1,
        rate_pps: Optional[float] = None,
        poisson: bool = False,
        process=None,
        app_cpu: Optional[int] = None,
        dport: int = 0,
        on_message=None,
        container=None,
    ) -> FlowKey:
        """Create one UDP flow with ``clients`` sender threads.

        ``rate_pps`` is the *aggregate* target rate (split across
        clients); None means saturating stress mode.
        """
        flow = self._make_flow(
            PROTO_UDP, dport or (5000 + len(self.senders)), container
        )
        self._open_socket(flow, app_cpu, on_message)
        shared = FlowState()
        costs = self.stack.costs
        for index in range(clients):
            if process is not None:
                client_process = process
            elif rate_pps is None:
                client_process = Saturating()
            elif poisson:
                client_process = PoissonRate(rate_pps / clients)
            else:
                client_process = ConstantRate(rate_pps / clients)
            sender = UdpSender(
                self.sim,
                self.link,
                self.stack,
                flow,
                message_size,
                costs,
                self.host.machine.rng.stream(f"sender/{flow.flow_id}/{index}"),
                client_process,
                shared_state=shared,
                name=f"udp{flow.flow_id}.{index}",
            )
            self.senders.append(sender)
        return flow

    def add_tcp_flow(
        self,
        message_size: int,
        window_msgs: int = 16,
        rate_pps: Optional[float] = None,
        poisson: bool = False,
        app_cpu: Optional[int] = None,
        dport: int = 0,
        on_message=None,
        container=None,
        retransmit_timeout_us: Optional[float] = None,
        auto_credit: bool = True,
    ) -> FlowKey:
        """Create one closed-loop (or paced) TCP flow.

        With ``auto_credit`` (default) the sender's window is released as
        soon as the request is delivered to the server application —
        right for streaming. Request/response workloads that want the
        window held until the *response* (or full page) completes pass
        ``auto_credit=False`` and call ``sender_for(flow).credit()``
        themselves.
        """
        flow = self._make_flow(
            PROTO_TCP, dport or (5000 + len(self.senders)), container
        )
        self._open_socket(flow, app_cpu, on_message, auto_credit=auto_credit)
        if rate_pps is None:
            process = None
        elif poisson:
            process = PoissonRate(rate_pps)
        else:
            process = ConstantRate(rate_pps)
        sender = TcpSender(
            self.sim,
            self.link,
            self.stack,
            flow,
            message_size,
            self.stack.costs,
            self.host.machine.rng.stream(f"sender/{flow.flow_id}"),
            window_msgs=window_msgs,
            process=process,
            retransmit_timeout_us=retransmit_timeout_us,
            name=f"tcp{flow.flow_id}",
        )
        self.senders.append(sender)
        self._tcp_by_flow[flow.flow_id] = sender
        return flow

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, warmup_ms: float = 10.0, measure_ms: float = 25.0) -> RunResult:
        warmup_us = warmup_ms * MS
        measure_us = measure_ms * MS
        end_us = warmup_us + measure_us
        for sender in self.senders:
            sender.start(until_us=end_us)
        self.sim.run(until=warmup_us)
        self.window.open()
        sent_at_open = sum(sender.messages_sent for sender in self.senders)
        self._reorders_at_open = sum(
            sock.reordered_messages for sock in self._sockets
        )
        self.sim.run(until=end_us)
        self.window.close()
        sent_in_window = (
            sum(sender.messages_sent for sender in self.senders) - sent_at_open
        )
        return self._collect(measure_us, sent_in_window)

    def _collect(self, duration_us: float, sent_in_window: int) -> RunResult:
        window = self.window
        machine = self.host.machine
        falcon = self.stack.falcon
        proto = "tcp" if self._tcp_by_flow else "udp"
        sizes = {sender.message_size for sender in self.senders}
        reorders = (
            sum(sock.reordered_messages for sock in self._sockets)
            - self._reorders_at_open
        )
        flowcache = self.stack.flowcache
        cache = flowcache.counters() if flowcache is not None else {}
        mode_label = self.mode
        if flowcache is not None:
            mode_label = f"{mode_label}+cache"
        if falcon is not None and falcon.config.enabled:
            mode_label = f"{mode_label}+falcon"
        return RunResult(
            mode=mode_label,
            proto=proto,
            message_size=max(sizes) if sizes else 0,
            duration_us=duration_us,
            messages_delivered=window.rate.count,
            message_rate_pps=window.rate.rate_per_sec(),
            goodput_gbps=window.rate.gbps(),
            offered_pps=sent_in_window / duration_us * 1e6 if duration_us else 0.0,
            latency=window.latency.summary(),
            cpu_util=[
                window.cpu.utilization(index) for index in range(machine.num_cpus)
            ],
            cpu_softirq=[
                window.cpu.utilization_context(index, 1)
                for index in range(machine.num_cpus)
            ],
            label_shares=window.cpu.label_shares(),
            interrupts=window.interrupt_deltas(),
            softirq_raises=window.softirq_raise_delta(),
            softirq_handler_runs=window.handler_run_delta(),
            stage_executions=window.stage_execution_deltas(),
            drops=window.drop_deltas(),
            reordered_messages=reorders,
            falcon_steered=falcon.steered if falcon else 0,
            falcon_fallbacks=falcon.fallbacks if falcon else 0,
            cache_hits=cache.get("ingress_hits", 0),
            cache_misses=cache.get("ingress_misses", 0),
            cache_evictions=cache.get("ingress_evictions", 0),
            cache_invalidations=cache.get("ingress_invalidations", 0),
            cache_egress_hits=cache.get("egress_hits", 0),
            cache_egress_misses=cache.get("egress_misses", 0),
            fastpath_deliveries=self.stack.fastpath_deliveries,
        )


class Experiment:
    """Convenience front door: one scenario per method call.

    >>> from repro.core.config import FalconConfig
    >>> exp = Experiment(mode="overlay", falcon=FalconConfig(cpus=[1, 3, 4, 5]))
    >>> result = exp.run_udp_stress(message_size=16, duration_ms=4, warmup_ms=2)
    >>> result.messages_delivered > 0
    True
    """

    def __init__(self, **testbed_kwargs) -> None:
        self.testbed_kwargs = testbed_kwargs

    def _build(self) -> Testbed:
        return Testbed(**self.testbed_kwargs)

    def run_udp_stress(
        self,
        message_size: int,
        clients: int = 3,
        duration_ms: float = 25.0,
        warmup_ms: float = 10.0,
    ) -> RunResult:
        """UDP single-flow stress: clients saturate one flow (Figure 10)."""
        bed = self._build()
        bed.add_udp_flow(message_size, clients=clients)
        return bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)

    def run_udp_fixed(
        self,
        message_size: int,
        rate_pps: float,
        clients: int = 1,
        poisson: bool = False,
        duration_ms: float = 25.0,
        warmup_ms: float = 10.0,
    ) -> RunResult:
        """UDP single flow at a fixed offered rate (Figures 5, 12a, 19)."""
        bed = self._build()
        bed.add_udp_flow(message_size, clients=clients, rate_pps=rate_pps, poisson=poisson)
        return bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)

    def run_tcp_stream(
        self,
        message_size: int,
        window_msgs: int = 16,
        duration_ms: float = 25.0,
        warmup_ms: float = 10.0,
    ) -> RunResult:
        """Closed-loop TCP single flow at full tilt (Figures 9a, 12d)."""
        bed = self._build()
        bed.add_tcp_flow(message_size, window_msgs=window_msgs)
        return bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)

    def run_udp_plateau(
        self,
        message_size: int,
        clients: int = 3,
        loss_target: float = 0.03,
        duration_ms: float = 10.0,
        warmup_ms: float = 5.0,
        iterations: int = 8,
    ) -> RunResult:
        """The paper's stress methodology for fragmented messages.

        "We kept increasing the sending rate until received packet rate
        plateaued and packet drop occurred." For messages that fit in one
        MTU, saturating clients measure the plateau directly (dropping a
        wire packet drops exactly one message). For fragmented messages a
        random fragment drop kills a whole message, so sustained overload
        collapses goodput; this method instead binary-searches the highest
        offered rate whose message loss stays under ``loss_target``.
        """
        stress = self.run_udp_stress(
            message_size, clients=clients, duration_ms=duration_ms, warmup_ms=warmup_ms
        )
        if stress.offered_pps <= 0:
            return stress
        if stress.message_rate_pps >= stress.offered_pps * (1.0 - loss_target):
            return stress  # sender-bound: the plateau is the sender limit
        lo, hi = 0.0, stress.offered_pps
        best: Optional[RunResult] = None
        for _ in range(iterations):
            rate = (lo + hi) / 2.0
            result = self.run_udp_fixed(
                message_size,
                rate_pps=rate,
                clients=clients,
                duration_ms=duration_ms,
                warmup_ms=warmup_ms,
            )
            delivered = result.message_rate_pps
            if delivered >= rate * (1.0 - loss_target):
                if best is None or delivered > best.message_rate_pps:
                    best = result
                lo = rate
            else:
                hi = rate
        return best if best is not None else stress

    def run_tcp_fixed(
        self,
        message_size: int,
        rate_pps: float,
        window_msgs: int = 64,
        poisson: bool = False,
        duration_ms: float = 25.0,
        warmup_ms: float = 10.0,
    ) -> RunResult:
        """Paced TCP single flow (underloaded latency, Figure 12b)."""
        bed = self._build()
        bed.add_tcp_flow(
            message_size,
            window_msgs=window_msgs,
            rate_pps=rate_pps,
            poisson=poisson,
        )
        return bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)
