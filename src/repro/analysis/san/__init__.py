"""simsan: ownership/lifetime verifier for the repo's moved objects.

The fourth analyzer on the simflow CFG/worklist engine
(lint → flow → order → **ownership**), proving that each of the three
kinds of owned objects the reproduction moves across boundaries has
exactly one owner, is never reused while live, and is never leaked:

* pooled :class:`~repro.sim.events.Event` objects through the freelist
  and lazy-cancellation discard paths (:mod:`rules_event`, OWN601-603);
* skbs across stages and shard boundaries via ``encode_skb`` /
  ``decode_skb`` wire payloads (:mod:`rules_skbown`, OWN611-613);
* flow-cache entries through insert/evict/invalidate, including the
  cross-shard ``RECORD_INVAL`` churn path (:mod:`rules_cache`,
  OWN621-623);
* static↔dynamic cross-check against the runtime sanitizer ledger
  (:mod:`sancheck`; the dynamic side lives in
  :mod:`repro.validate.sanitize`, enabled via ``REPRO_SANITIZE=1``).

Run it as ``repro san`` (or as part of ``repro check``); it shares
reporters, pragmas, and the rule-id namespace with the other passes.

Exports resolve lazily (PEP 562): :mod:`repro.analysis.lint.runner`
imports :mod:`repro.analysis.san.registry` for the shared rule-id
namespace, and an eager import of :mod:`san.runner` here would close
that loop into a circular import.
"""

from typing import TYPE_CHECKING

from repro.analysis.san.registry import SAN_RULE_IDS

if TYPE_CHECKING:  # pragma: no cover - static-analysis only
    from repro.analysis.san.runner import (
        SAN_RULES,
        san_paths,
        san_rule_by_id,
    )
    from repro.analysis.san.sancheck import SanCheckResult, san_cross_check

_LAZY = {
    "SAN_RULES": ("repro.analysis.san.runner", "SAN_RULES"),
    "san_paths": ("repro.analysis.san.runner", "san_paths"),
    "san_rule_by_id": ("repro.analysis.san.runner", "san_rule_by_id"),
    "SanCheckResult": ("repro.analysis.san.sancheck", "SanCheckResult"),
    "san_cross_check": ("repro.analysis.san.sancheck", "san_cross_check"),
}

__all__ = ["SAN_RULE_IDS", *sorted(_LAZY)]


def __getattr__(name: str) -> object:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
