"""Figure 14 — multi-container throughput in busy systems."""

from conftest import run_figure

from repro.experiments import fig14_multicontainer


def test_fig14_multicontainer(benchmark, quick):
    out = run_figure(benchmark, fig14_multicontainer, quick)

    for proto, series in out.series.items():
        counts = sorted(series)
        gains = [series[count]["gain"] for count in counts]
        # Falcon helps at moderate load...
        assert max(gains) > 3.0, proto
        # ...and never causes a material loss when the system saturates
        # (the load gate turns it off).
        assert min(gains) > -5.0, proto
        # The benefit diminishes as utilization rises: the last point's
        # gain is below the peak.
        assert gains[-1] <= max(gains), proto
