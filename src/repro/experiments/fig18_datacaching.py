"""Figure 18 — CloudSuite Data Caching (memcached) latency.

Average and 99th-percentile request latency at 1 and 10 client threads.
The paper: with one client Falcon trims the tail slightly (~7%); at ten
clients interrupt handling dominates and Falcon cuts both average and
tail latency by ~51%/53%.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations, falcon_config
from repro.metrics.report import Table
from repro.workloads.memcached import run_memcached

CLIENTS_FULL = (1, 10)
CLIENTS_QUICK = (10,)


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 18", "Data caching (memcached) latency")
    dur = durations(quick, 25.0, 12.0)
    clients_list = CLIENTS_QUICK if quick else CLIENTS_FULL
    table = Table(
        ["clients", "metric", "Con us", "Falcon us", "reduction %"],
        title="memcached request latency (550 B objects)",
    )
    series = {}
    for clients in clients_list:
        results = {}
        for label, falcon in (("Con", None), ("Falcon", falcon_config())):
            results[label] = run_memcached(
                clients,
                falcon=falcon,
                duration_ms=dur["duration_ms"],
                warmup_ms=dur["warmup_ms"],
            )
        for metric in ("avg", "p99"):
            con = results["Con"].latency[metric]
            fal = results["Falcon"].latency[metric]
            table.add_row(
                clients, metric, con, fal,
                (1.0 - fal / con) * 100 if con else 0.0,
            )
        series[clients] = {
            label: result.latency for label, result in results.items()
        }
        series[(clients, "rps")] = {
            label: result.throughput_rps for label, result in results.items()
        }
    out.tables.append(table)
    out.series.update(series)
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
