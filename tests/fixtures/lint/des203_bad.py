"""DES203: anonymous service-time constants outside kernel/costs.py."""

from repro.kernel.costs import FuncCost

#: A cost definition hiding outside the cost model.
LOCAL_SKB_ALLOC = FuncCost(0.45, 0.00002)  # expect: DES203


def deliver_later(sim, deliver, skb):
    sim.schedule(12.5, deliver, skb)  # expect: DES203
