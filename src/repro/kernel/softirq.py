"""Softirq scheduling and NAPI polling.

This module implements the machinery Section 2.1 of the paper describes:

* ``raise_net_rx`` — raising the ``NET_RX_SOFTIRQ`` on a core. If the
  target core differs from the raising core, a rescheduling IPI (``RES``)
  is sent, with its latency modelled — the paper attributes Falcon's
  residual tail latency to exactly these IPIs (Section 6.1).
* ``net_rx_action`` — the softirq handler: iterates the core's poll list,
  polling each NAPI instance up to its weight within an overall budget,
  re-raising itself when the budget runs out (ksoftirqd behaviour).
* per-CPU backlog queues (``input_pkt_queue`` + ``process_backlog``) that
  stage-transition functions (``netif_rx`` / ``enqueue_to_backlog``)
  target — the mechanism Falcon re-purposes for pipelining.

Interrupt accounting matches Figure 4's categories: one ``NET_RX`` count
per softirq raise, one ``RES`` per cross-core wakeup IPI, one ``hardirq``
per NIC interrupt.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.hw.cpu import SOFTIRQ
from repro.hw.nic import Nic, RxQueue
from repro.hw.topology import Machine
from repro.kernel.costs import CostModel
from repro.kernel.skb import Skb
from repro.kernel.stages import Stage
from repro.metrics.counters import HARDIRQ as IRQ_HARD
from repro.metrics.counters import NET_RX, RES

#: One queued unit of deferred work: a packet plus the stage that will
#: process it when its softirq runs.
WorkItem = Tuple[Skb, Stage]


class Napi:
    """Base NAPI instance: a pollable packet source."""

    __slots__ = ("label", "weight", "scheduled")

    def __init__(self, label: str, weight: int = 64) -> None:
        self.label = label
        self.weight = weight
        #: True while on some core's poll list.
        self.scheduled = False

    def take(self, max_items: int) -> List[WorkItem]:
        raise NotImplementedError

    def has_work(self) -> bool:
        raise NotImplementedError

    def on_complete(self) -> None:
        """Called when polled empty and removed from the poll list."""


class DriverNapi(Napi):
    """NAPI instance of one physical-NIC receive queue."""

    __slots__ = ("rx_queue", "stage")

    def __init__(self, rx_queue: RxQueue, stage: Stage, weight: int = 64) -> None:
        super().__init__(label="mlx5e_napi_poll", weight=weight)
        self.rx_queue = rx_queue
        self.stage = stage

    def take(self, max_items: int) -> List[WorkItem]:
        ring = self.rx_queue.ring
        items: List[WorkItem] = []
        while ring and len(items) < max_items:
            items.append((ring.popleft(), self.stage))
        return items

    def has_work(self) -> bool:
        return bool(self.rx_queue.ring)

    def on_complete(self) -> None:
        # Polled the ring dry: re-enable the hardware interrupt.
        self.rx_queue.napi_scheduled = False


class BacklogNapi(Napi):
    """The per-CPU backlog (``input_pkt_queue`` + ``process_backlog``)."""

    __slots__ = ("queue", "capacity", "drops")

    def __init__(self, capacity: int = 1000, weight: int = 64) -> None:
        super().__init__(label="process_backlog", weight=weight)
        self.queue: Deque[WorkItem] = deque()
        self.capacity = capacity
        self.drops = 0

    def enqueue(self, skb: Skb, stage: Stage) -> bool:
        if len(self.queue) >= self.capacity:
            self.drops += 1
            return False
        self.queue.append((skb, stage))
        return True

    def take(self, max_items: int) -> List[WorkItem]:
        queue = self.queue
        items: List[WorkItem] = []
        while queue and len(items) < max_items:
            items.append(queue.popleft())
        return items

    def has_work(self) -> bool:
        return bool(self.queue)


class SoftNetData:
    """Per-CPU softirq state (the kernel's ``softnet_data``).

    Each processing stage gets its own per-CPU queue, mirroring the
    kernel: the RPS/driver injections land in the backlog proper
    (``input_pkt_queue``), the VXLAN device owns a per-CPU gro_cell
    queue, veth re-injections are spliced locally, etc. ``net_rx_action``
    round-robins between them, so re-injected mid-pipeline packets are
    not starved behind the fresh-arrival firehose.
    """

    __slots__ = (
        "poll_list",
        "queues",
        "net_rx_active",
        "capacity",
        "weight",
        "last_stage",
    )

    def __init__(self, backlog_capacity: int, weight: int) -> None:
        self.poll_list: Deque[Napi] = deque()
        self.queues: Dict[str, BacklogNapi] = {}
        self.capacity = backlog_capacity
        self.weight = weight
        #: True while a net_rx_action chain is scheduled or running.
        self.net_rx_active = False
        #: Name of the stage the core last processed (context-switch cost).
        self.last_stage: str = ""

    def queue_for(self, stage: Stage) -> BacklogNapi:
        napi = self.queues.get(stage.name)
        if napi is None:
            napi = BacklogNapi(capacity=self.capacity, weight=self.weight)
            napi.label = f"process_backlog[{stage.name}]"
            self.queues[stage.name] = napi
        return napi


class SoftirqNet:
    """The machine-wide softirq subsystem for packet reception."""

    def __init__(
        self,
        machine: Machine,
        costs: CostModel,
        stack: "object",
        budget: int = 300,
        napi_weight: int = 64,
        batch_max: int = 16,
        backlog_capacity: int = 1000,
    ) -> None:
        self.machine = machine
        #: The run's :class:`~repro.sim.context.SimContext` — the softirq
        #: subsystem draws its RNG stream and tracer from here, never from
        #: process-global state.
        self.ctx = machine.ctx
        self.costs = costs
        #: The NetworkStack (routing port for stage exits).
        self.stack = stack
        self.budget = budget
        self.batch_max = batch_max
        self.data = [
            SoftNetData(backlog_capacity, napi_weight)
            for _ in range(machine.num_cpus)
        ]
        self._ipi_rng = self.ctx.stream("ipi-jitter")
        #: Optional :class:`repro.validate.InvariantMonitor` hook.
        self.monitor: Optional[Any] = None
        #: The stack's :class:`repro.kernel.flowcache.FlowCache` (or None);
        #: backlog drops must settle the cache's slow-in-flight ledger.
        self.flowcache: Optional[Any] = None
        #: Calls to raise_net_rx (per-packet granularity in the overlay).
        self.softirq_raises = 0
        #: net_rx_action invocations — how often a softirq handler actually
        #: started on some core. Falcon's pipelining wakes more handler
        #: instances (one per stage core) than the vanilla overlay's single
        #: serialized chain.
        self.handler_runs = 0
        #: Packets processed per stage name — the paper's "softirqs per
        #: packet" view (one device softirq execution per packet per stage).
        self.stage_executions: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Hardware interrupt entry
    # ------------------------------------------------------------------
    def attach_nic(self, nic: Nic, driver_stage: Stage, napi_weight: int = 64) -> None:
        """Install this subsystem as the NIC's IRQ handler."""
        napis = {
            queue.index: DriverNapi(queue, driver_stage, weight=napi_weight)
            for queue in nic.queues
        }

        def irq_handler(queue: RxQueue) -> None:
            cpu_index = queue.irq_cpu
            self.machine.interrupts.record(IRQ_HARD, cpu_index)
            cpu = self.machine.cpus[cpu_index]
            napi = napis[queue.index]
            cpu.submit(
                0,  # HARDIRQ context
                "pnic_interrupt",
                self.costs.hardirq.fixed,
                self.raise_net_rx,
                cpu_index,
                napi,
                cpu_index,
            )

        nic.irq_handler = irq_handler

    # ------------------------------------------------------------------
    # Softirq raising (the stage-transition target)
    # ------------------------------------------------------------------
    def raise_net_rx(self, cpu_index: int, napi: Napi, from_cpu: int) -> None:
        """Schedule ``napi`` for polling on ``cpu_index``.

        NET_RX accounting follows the kernel's: ``____napi_schedule``
        raises (and counts) the softirq only when the NAPI instance was
        not already on a poll list, so back-to-back packets coalesce. If
        the raiser is a different core and the target's softirq chain is
        idle, a RES IPI (with latency) wakes it.
        """
        data = self.data[cpu_index]
        # Demand-side counter: one per raise call (per packet per device).
        self.softirq_raises += 1
        if not napi.scheduled:
            napi.scheduled = True
            data.poll_list.append(napi)
            # /proc/softirqs semantics: counted only when newly scheduled.
            self.machine.interrupts.record(NET_RX, cpu_index)
        if data.net_rx_active:
            return
        data.net_rx_active = True
        if from_cpu != cpu_index:
            self.machine.interrupts.record(RES, cpu_index)
            delay = self.costs.ipi_delay_us + self._ipi_rng.random() * (
                self.costs.ipi_jitter_us
            )
            self.machine.sim.post(delay, self._kick, cpu_index)
        else:
            self.machine.sim.post(
                self.costs.softirq_entry_us, self._kick, cpu_index
            )

    def enqueue_backlog(
        self, target_cpu: int, skb: Skb, stage: Stage, from_cpu: int
    ) -> None:
        """``enqueue_to_backlog``: queue a continuation and raise NET_RX.

        Same-CPU enqueues are always admitted — ``process_backlog``
        splices ``input_pkt_queue`` before processing, so packets a core
        re-injects into itself find the queue freshly emptied. Cross-CPU
        enqueues check the backlog limit and drop on overflow.
        """
        data = self.data[target_cpu]
        skb.last_cpu = from_cpu
        napi = data.queue_for(stage)
        if from_cpu != target_cpu and len(napi.queue) >= napi.capacity:
            napi.drops += 1
            if self.flowcache is not None:
                self.flowcache.packet_terminated(skb)
            if self.monitor is not None:
                self.monitor.on_terminal(skb, "backlog_drop")
            return
        napi.queue.append((skb, stage))
        self.raise_net_rx(target_cpu, napi, from_cpu)

    # ------------------------------------------------------------------
    # net_rx_action
    # ------------------------------------------------------------------
    def _kick(self, cpu_index: int) -> None:
        self.handler_runs += 1
        cpu = self.machine.cpus[cpu_index]
        cpu.submit(
            SOFTIRQ,
            "net_rx_action",
            self.costs.softirq_dispatch.fixed,
            self._poll_round,
            cpu_index,
            self.budget,
        )

    def _poll_round(self, cpu_index: int, budget_left: int) -> None:
        data = self.data[cpu_index]
        cpu = self.machine.cpus[cpu_index]
        while True:
            if not data.poll_list:
                data.net_rx_active = False
                return
            if budget_left <= 0:
                # Budget exhausted with work pending: behave like
                # ksoftirqd — yield and re-raise ourselves.
                self.machine.interrupts.record(NET_RX, cpu_index)
                self.softirq_raises += 1
                self._kick(cpu_index)
                return
            napi = data.poll_list.popleft()
            items = napi.take(min(napi.weight, budget_left, self.batch_max))
            if not items:
                napi.scheduled = False
                napi.on_complete()
                continue
            if napi.has_work():
                # Used its slot but not drained: rotate to the tail so
                # other NAPI sources on this core get their share.
                data.poll_list.append(napi)
            else:
                napi.scheduled = False
                napi.on_complete()
            self._run_batch(cpu, cpu_index, napi, items, budget_left - len(items))
            return

    def _run_batch(
        self,
        cpu,
        cpu_index: int,
        napi: Napi,
        items: List[WorkItem],
        budget_left: int,
    ) -> None:
        locality = self.machine.locality
        data = self.data[cpu_index]
        charges: List[Tuple[str, float]] = []
        outputs: List[Tuple[Skb, Stage]] = []
        touched_stages = []
        first_stage = items[0][1]
        self.stage_executions[first_stage.name] = (
            self.stage_executions.get(first_stage.name, 0) + len(items)
        )
        if first_stage.name != data.last_stage:
            # The core moves to a different device's softirq context.
            charges.append(("softirq_switch", self.costs.softirq_switch.fixed))
            data.last_stage = first_stage.name
        tracer = self.ctx.tracer
        now = self.machine.sim.now
        for skb, stage in items:
            if tracer is not None and tracer.wants(skb):
                tracer.record(skb, now, "exec", stage.name, cpu_index)
            multiplier = locality.multiplier(skb.last_cpu, cpu_index)
            item_charges, out = stage.run_item(skb, cpu_index, multiplier)
            charges.extend(item_charges)
            if out is not None:
                outputs.append((out, stage))
            if stage.flush is not None and stage not in touched_stages:
                touched_stages.append(stage)
        # End-of-batch flush (GRO) once the source is drained.
        if not napi.has_work():
            for stage in touched_stages:
                for flushed in stage.flush(cpu_index):
                    outputs.append((flushed, stage))
        cpu.submit_multi(
            SOFTIRQ, charges, self._after_batch, cpu_index, outputs, budget_left
        )

    def _after_batch(
        self,
        cpu_index: int,
        outputs: List[Tuple[Skb, Stage]],
        budget_left: int,
    ) -> None:
        for skb, stage in outputs:
            stage.exit.route(skb, cpu_index, self.stack)
        self._poll_round(cpu_index, budget_left)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def backlog_drops(self) -> int:
        return sum(
            napi.drops for data in self.data for napi in data.queues.values()
        )

    def backlog_depth(self, cpu_index: int) -> int:
        return sum(
            len(napi.queue) for napi in self.data[cpu_index].queues.values()
        )
