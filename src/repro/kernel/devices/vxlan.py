"""VXLAN tunnel device.

Two pieces of the overlay path live here (Figure 3):

* the tail of the *host* stack — outer ``ip_rcv`` / ``udp_rcv`` leading
  into ``vxlan_rcv``, which strips the outer headers (decapsulation) and
  raises the second softirq;
* the VXLAN device's own poll function ``gro_cell_poll``, which feeds the
  inner packet back into ``netif_receive_skb``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel.costs import VXLAN_OVERHEAD, CostModel
from repro.kernel.skb import Skb
from repro.kernel.stages import Step


def outer_stack_steps(costs: CostModel) -> List[Step]:
    """Host-stack processing of the encapsulated (outer) packet."""

    def decap(skb: Skb, _cpu_index: int) -> Optional[Skb]:
        skb.decapsulate(VXLAN_OVERHEAD)
        return skb

    return [
        Step.simple("process_backlog", costs.backlog_dequeue),
        Step.simple("ip_rcv", costs.ip_rcv),
        Step.simple("udp_rcv", costs.udp_rcv_outer),
        Step("vxlan_rcv", lambda skb: costs.vxlan_rcv.cost(skb.size), decap),
        Step.simple("netif_rx", costs.netif_rx),
    ]


def gro_cell_poll_step(costs: CostModel) -> Step:
    """The VXLAN device's NAPI poll picking the inner packet back up."""
    return Step.simple("gro_cell_poll", costs.gro_cell_poll)
