"""End-to-end property tests: delivery invariants of the full stack.

Whatever the Falcon configuration, message sizes or rates (kept below
capacity so queues don't drop), the receive pipeline must deliver every
message exactly once, in order, with its bytes intact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FalconConfig
from repro.workloads.sockperf import Testbed

falcon_configs = st.one_of(
    st.none(),
    st.builds(
        FalconConfig,
        cpus=st.sampled_from([[3], [3, 4], [3, 4, 5, 6], [4, 6]]),
        policy=st.sampled_from(["two_choice", "static", "least_loaded"]),
        split_gro=st.booleans(),
        load_threshold=st.floats(min_value=0.5, max_value=1.0),
    ),
)


@settings(max_examples=15, deadline=None)
@given(
    mode=st.sampled_from(["host", "overlay"]),
    falcon=falcon_configs,
    message_size=st.sampled_from([16, 300, 1024, 4096]),
    flows=st.integers(min_value=1, max_value=3),
)
def test_udp_messages_delivered_once_in_order(mode, falcon, message_size, flows):
    bed = Testbed(mode=mode, falcon=falcon)
    sent = []
    for _ in range(flows):
        # Modest per-flow rate: stays below capacity in every mode.
        sent.append(bed.add_udp_flow(message_size, clients=1, rate_pps=40_000))
    result = bed.run(warmup_ms=2, measure_ms=8)
    assert result.reordered_messages == 0
    assert sum(result.drops.values()) == 0
    # Everything offered inside the window was delivered (allow edge
    # effects of one in-flight message per flow at each boundary).
    expected = 40_000 * flows * 8e-3
    assert abs(result.messages_delivered - expected) <= 2 * flows + 2
    # Byte conservation.
    import pytest

    delivered_bytes = result.goodput_gbps * result.duration_us * 1e-6 * 1e9 / 8
    assert delivered_bytes == pytest.approx(
        result.messages_delivered * message_size, rel=1e-9
    )


@settings(max_examples=10, deadline=None)
@given(
    falcon=falcon_configs,
    message_size=st.sampled_from([512, 4096, 16384]),
)
def test_tcp_stream_is_lossless_and_ordered(falcon, message_size):
    bed = Testbed(mode="overlay", falcon=falcon)
    bed.add_tcp_flow(message_size, window_msgs=8)
    result = bed.run(warmup_ms=2, measure_ms=8)
    steering_changed = result.falcon_fallbacks > 0 or (
        falcon is not None and falcon.policy in ("two_choice", "least_loaded")
    )
    if falcon is not None and steering_changed:
        # Known caveat of Algorithm 1 (documented in DESIGN.md §4): any
        # change of steering decision mid-flow — the load gate flipping
        # Falcon on/off, or a two-choice / least-loaded re-target —
        # migrates a stage between cores while packets are still queued
        # on the old one, so transient reordering is possible. It must
        # stay a small fraction even with an aggressively low threshold.
        assert result.reordered_messages <= max(
            result.messages_delivered * 0.05, 8
        )
    else:
        # Vanilla, or Falcon with stable decisions (static hash, gate
        # never tripped): strictly FIFO per (flow, device) — no
        # reordering, ever.
        assert result.reordered_messages == 0
    assert result.messages_delivered > 0
    assert result.drops["socket"] == 0


@settings(max_examples=8, deadline=None)
@given(
    falcon=falcon_configs,
    message_size=st.sampled_from([2000, 9000, 65507]),
)
def test_fragmented_udp_reassembles_fully(falcon, message_size):
    """Messages above the MTU ride multiple wire packets; below capacity
    every datagram must reassemble (no defrag timeouts, no partials)."""
    bed = Testbed(mode="overlay", falcon=falcon)
    bed.add_udp_flow(message_size, clients=1, rate_pps=5_000)
    result = bed.run(warmup_ms=2, measure_ms=10)
    assert result.drops["defrag_timeout"] == 0
    assert result.reordered_messages == 0
    expected = 5_000 * 10e-3
    assert abs(result.messages_delivered - expected) <= 3
