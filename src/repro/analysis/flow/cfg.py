"""Intraprocedural control-flow graphs over Python function ASTs.

The ``simflow`` analyses (:mod:`repro.analysis.flow`) are *flow*
properties — "an skb is re-enqueued after socket delivery" is a claim
about paths, not about single statements — so they run over a CFG
rather than a plain AST walk. The graph is deliberately coarse:

* nodes are **basic blocks** of consecutive simple statements;
* ``if`` / ``while`` / ``for`` / ``try`` / ``with`` introduce the usual
  branch/loop/back edges;
* every block inside a ``try`` body also has an edge to the first
  handler block (any statement may raise), which over-approximates
  exceptional flow;
* ``return`` / ``raise`` edge to the synthetic exit block, ``break`` /
  ``continue`` to the loop exit/header.

Over-approximate edges are safe here because the client analyses join
with set union and only report **must** violations (every abstract state
reaching the statement is bad), so an extra edge can only suppress a
finding, never invent one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Statement kinds that never transfer control and stay in one block.
_SIMPLE = (
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Expr,
    ast.Pass,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


@dataclass
class Block:
    """One basic block: statements executed straight through."""

    index: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)

    def add_succ(self, index: int) -> None:
        if index not in self.succs:
            self.succs.append(index)


@dataclass
class Cfg:
    """The control-flow graph of one function."""

    func: "ast.FunctionDef | ast.AsyncFunctionDef"
    blocks: List[Block]
    entry: int
    exit: int

    def preds(self) -> Dict[int, List[int]]:
        incoming: Dict[int, List[int]] = {block.index: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                incoming[succ].append(block.index)
        return incoming


class _Builder:
    def __init__(self, func: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self.func = func
        self.blocks: List[Block] = []
        self.exit_block = self._new()

    def _new(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    # ------------------------------------------------------------------
    def build(self) -> Cfg:
        entry = self._new()
        last = self._stmts(self.func.body, entry, loop=None, handlers=None)
        if last is not None:
            last.add_succ(self.exit_block.index)
        return Cfg(
            func=self.func,
            blocks=self.blocks,
            entry=entry.index,
            exit=self.exit_block.index,
        )

    # ------------------------------------------------------------------
    def _stmts(
        self,
        stmts: Sequence[ast.stmt],
        current: Block,
        loop: Optional[Tuple[int, int]],
        handlers: Optional[int],
    ) -> Optional[Block]:
        """Thread ``stmts`` through the graph starting at ``current``.

        ``loop`` is ``(header, after)`` block indexes for the innermost
        loop; ``handlers`` is the block index of the innermost enclosing
        ``except`` ladder. Returns the open block at the end, or None
        when every path diverted (return/raise/break).
        """
        block: Optional[Block] = current
        for stmt in stmts:
            if block is None:
                # Dead code after return/raise — still parse it so nested
                # defs are seen elsewhere, but it has no flow edges.
                block = self._new()
            if handlers is not None:
                block.add_succ(handlers)
            if isinstance(stmt, _SIMPLE):
                block.stmts.append(stmt)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                block.stmts.append(stmt)
                block.add_succ(self.exit_block.index)
                block = None
            elif isinstance(stmt, ast.Break):
                if loop is not None:
                    block.add_succ(loop[1])
                block = None
            elif isinstance(stmt, ast.Continue):
                if loop is not None:
                    block.add_succ(loop[0])
                block = None
            elif isinstance(stmt, ast.If):
                block.stmts.append(stmt)  # the test expression
                after = self._new()
                body_entry = self._new()
                block.add_succ(body_entry.index)
                body_end = self._stmts(stmt.body, body_entry, loop, handlers)
                if body_end is not None:
                    body_end.add_succ(after.index)
                if stmt.orelse:
                    else_entry = self._new()
                    block.add_succ(else_entry.index)
                    else_end = self._stmts(stmt.orelse, else_entry, loop, handlers)
                    if else_end is not None:
                        else_end.add_succ(after.index)
                else:
                    block.add_succ(after.index)
                block = after
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                header = self._new()
                block.add_succ(header.index)
                # The loop statement itself (test / iterator + target
                # binding) lives in the header block.
                header.stmts.append(stmt)
                after = self._new()
                body_entry = self._new()
                header.add_succ(body_entry.index)
                header.add_succ(after.index)
                body_end = self._stmts(
                    stmt.body, body_entry, (header.index, after.index), handlers
                )
                if body_end is not None:
                    body_end.add_succ(header.index)
                if stmt.orelse:
                    else_entry = self._new()
                    header.add_succ(else_entry.index)
                    else_end = self._stmts(stmt.orelse, else_entry, loop, handlers)
                    if else_end is not None:
                        else_end.add_succ(after.index)
                block = after
            elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                after = self._new()
                handler_entry: Optional[Block] = None
                if stmt.handlers:
                    handler_entry = self._new()
                body_entry = self._new()
                block.add_succ(body_entry.index)
                body_end = self._stmts(
                    stmt.body,
                    body_entry,
                    loop,
                    handler_entry.index if handler_entry else handlers,
                )
                tail = after
                if stmt.finalbody:
                    final_entry = self._new()
                    final_end = self._stmts(stmt.finalbody, final_entry, loop, handlers)
                    if final_end is not None:
                        final_end.add_succ(after.index)
                    tail = final_entry
                if body_end is not None:
                    if stmt.orelse:
                        else_entry = self._new()
                        body_end.add_succ(else_entry.index)
                        else_end = self._stmts(stmt.orelse, else_entry, loop, handlers)
                        if else_end is not None:
                            else_end.add_succ(tail.index)
                    else:
                        body_end.add_succ(tail.index)
                if handler_entry is not None:
                    current_handler = handler_entry
                    for handler in stmt.handlers:
                        handler_end = self._stmts(
                            handler.body, current_handler, loop, handlers
                        )
                        if handler_end is not None:
                            handler_end.add_succ(tail.index)
                        if handler is not stmt.handlers[-1]:
                            nxt = self._new()
                            current_handler.add_succ(nxt.index)
                            current_handler = nxt
                block = after
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                block.stmts.append(stmt)  # context-manager expressions
                body_entry = self._new()
                block.add_succ(body_entry.index)
                body_end = self._stmts(stmt.body, body_entry, loop, handlers)
                after = self._new()
                if body_end is not None:
                    body_end.add_succ(after.index)
                block = after
            else:
                # Unknown statement kind (e.g. Match): keep it opaque in
                # the current block — conservative for must-analyses.
                block.stmts.append(stmt)
        return block


def build_cfg(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> Cfg:
    """Build the CFG of one function definition."""
    return _Builder(func).build()
