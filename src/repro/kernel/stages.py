"""Packet-processing stages — the unit of softirq pipelining.

The receive path is modelled as a chain of :class:`Stage` objects. A stage
is exactly the work one softirq invocation performs for a packet at one
network device: a sequence of :class:`Step` functions executed back to
back on one core, ended by a :class:`Transition` that hands the packet to
the next stage's queue (possibly on another core) or delivers it to a
socket.

This mirrors Figure 8 of the paper: the pNIC stage
(``mlx5e_napi_poll`` → ``napi_gro_receive`` → RPS), the host-stack stage
(``process_backlog`` → ... → ``vxlan_rcv`` → ``netif_rx``), the
bridge/veth stage, and the container stage. Falcon changes *where the
transitions send packets*, never the stages themselves.

Steps may carry an *effect* — GRO merging, IP defragmentation, VXLAN
decapsulation — that can consume the packet (merge in progress) or
replace it (merged super-packet continues down the pipe).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Tuple

from repro.kernel.costs import FuncCost
from repro.kernel.skb import Skb

#: An effect runs when the step executes. It may return the same skb, a
#: replacement (e.g. a merged super-packet), or None (consumed for now).
Effect = Callable[[Skb, int], Optional[Skb]]

#: A charge is (function label, busy µs) attributed to the executing core.
Charge = Tuple[str, float]

#: A step's cost function: skb -> µs (costs may depend on size and protocol).
CostFn = Callable[[Skb], float]


def fixed_cost(cost: FuncCost) -> CostFn:
    """Adapt a :class:`FuncCost` (fixed + per-byte) into a step cost fn."""

    def _cost(skb: Skb) -> float:
        return cost.cost(skb.size)

    return _cost


class Step:
    """One kernel function in a stage: a cost plus an optional effect."""

    __slots__ = ("name", "cost", "effect")

    def __init__(
        self, name: str, cost: CostFn, effect: Optional[Effect] = None
    ) -> None:
        self.name = name
        self.cost = cost
        self.effect = effect

    @classmethod
    def simple(
        cls, name: str, cost: FuncCost, effect: Optional[Effect] = None
    ) -> "Step":
        return cls(name, fixed_cost(cost), effect)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Step {self.name}>"


class StackPort(Protocol):
    """The slice of NetworkStack the transitions need (avoids an import cycle)."""

    def enqueue_backlog(
        self, target_cpu: int, skb: Skb, stage: "Stage", from_cpu: int
    ) -> None: ...

    def deliver_to_socket(self, skb: Skb, cpu_index: int) -> None: ...


class Transition:
    """Routes a packet out of a stage. Subclasses decide the target."""

    def route(self, skb: Skb, cpu_index: int, stack: StackPort) -> None:
        raise NotImplementedError


class EnqueueTransition(Transition):
    """Enqueue to a (possibly remote) per-CPU backlog and raise a softirq.

    ``selector(skb, cpu_index) -> target cpu`` encapsulates the steering
    policy: RPS steering, Falcon's ``get_falcon_cpu``, or the vanilla
    behaviour of staying on the current core.
    """

    def __init__(
        self,
        next_stage: "Stage",
        selector: Callable[[Skb, int], int],
        name: str = "netif_rx",
    ) -> None:
        self.next_stage = next_stage
        self.selector = selector
        self.name = name

    def route(self, skb: Skb, cpu_index: int, stack: StackPort) -> None:
        target = self.selector(skb, cpu_index)
        stack.enqueue_backlog(target, skb, self.next_stage, from_cpu=cpu_index)


class SocketDeliver(Transition):
    """Terminal transition: hand the packet to its destination socket."""

    def route(self, skb: Skb, cpu_index: int, stack: StackPort) -> None:
        stack.deliver_to_socket(skb, cpu_index)


class FlowCachePort(Protocol):
    """The slice of :class:`repro.kernel.flowcache.FlowCache` a datapath
    decision needs (avoids an import cycle with the step builders)."""

    def access_rx(self, skb: Skb) -> bool: ...


class FastPathTransition(Transition):
    """Datapath selection at the driver exit: consult the flow cache.

    A hit routes via ``hit`` (the single-step fast-path stage feeding the
    container tail directly); a miss routes via ``miss`` (the unchanged
    slow device chain). The cache stamps ``skb.fastpath`` with the
    verdict so downstream exit hooks can settle the ordering-gate ledger.
    """

    def __init__(
        self,
        cache: FlowCachePort,
        hit: Transition,
        miss: Transition,
        name: str = "flowcache",
    ) -> None:
        self.cache = cache
        self.hit = hit
        self.miss = miss
        self.name = name

    def route(self, skb: Skb, cpu_index: int, stack: StackPort) -> None:
        if self.cache.access_rx(skb):
            self.hit.route(skb, cpu_index, stack)
        else:
            self.miss.route(skb, cpu_index, stack)


class Stage:
    """A softirq-granularity processing stage at one network device."""

    def __init__(
        self,
        name: str,
        ifindex: int,
        steps: List[Step],
        exit: Transition,
        flush: Optional[Callable[[int], List[Skb]]] = None,
    ) -> None:
        self.name = name
        #: The device index Falcon mixes into its hash (``dev->ifindex``).
        self.ifindex = ifindex
        self.steps = steps
        self.exit = exit
        #: Optional end-of-batch hook (GRO flush) returning held packets.
        self.flush = flush

    def run_item(
        self, skb: Skb, cpu_index: int, locality_multiplier: float
    ) -> Tuple[List[Charge], Optional[Skb]]:
        """Execute the stage's steps for one packet.

        Returns the per-function charges and the packet that should exit
        the stage (None when an effect consumed it, e.g. a GRO merge in
        progress). Charges are scaled by the locality multiplier, the cost
        of touching packet data that was last written by another core.
        """
        skb.dev_ifindex = self.ifindex
        charges: List[Charge] = []
        current: Optional[Skb] = skb
        for step in self.steps:
            cost = step.cost(current) * locality_multiplier
            if cost > 0.0:
                charges.append((step.name, cost))
            if step.effect is not None:
                current = step.effect(current, cpu_index)
                if current is None:
                    break
        return charges, current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stage {self.name} ifindex={self.ifindex}>"
