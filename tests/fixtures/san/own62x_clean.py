"""Accounted counterparts of the OWN62x shapes.

Mirrors the real `FlowTable` discipline: every removal bumps an
eviction/invalidation counter in the same routine, churn tears an
entry down exactly once per path, and the class that populates the
entries map also ships its removal surface.
"""


class AccountedTable:
    def __init__(self, capacity):
        self.capacity = capacity
        self._entries = {}
        self.evictions = 0
        self.invalidations = 0

    def insert(self, key, route):
        if len(self._entries) >= self.capacity:
            victim = next(iter(self._entries))
            self._entries.pop(victim)
            self.evictions += 1
        self._entries[key] = route

    def invalidate(self, key):
        if self._entries.pop(key, None) is not None:
            self.invalidations += 1

    def invalidate_all(self):
        self.invalidations += len(self._entries)
        self._entries.clear()


class ChurnCoordinator:
    def retire_flow(self, table, key, local):
        if local:
            table.invalidate(key)
        else:
            table.invalidate_flow(key)

    def relocate(self, table, key, notify):
        table.invalidate(key)
        notify("inval", key)
