"""Sharded parallel simulation engine with conservative lookahead sync.

Partitions a simulated cluster one shard per host group, runs each
shard's :class:`~repro.sim.engine.Simulator` independently, and
synchronizes them at window barriers bounded by the minimum inter-host
link latency. See :mod:`repro.sim.shard.coordinator` for the barrier
algebra and :mod:`repro.sim.shard.records` for the determinism story.

The process transport (:mod:`repro.sim.shard.transport`) is imported
lazily by callers that actually spawn workers; importing this package
pulls in no OS-facing code.
"""

from repro.sim.shard.coordinator import (
    InlineShardHandle,
    ShardCoordinator,
    ShardHandle,
    ShardProgram,
)
from repro.sim.shard.records import CrossShardEvent, WireRecord, merge_records

__all__ = [
    "CrossShardEvent",
    "InlineShardHandle",
    "ShardCoordinator",
    "ShardHandle",
    "ShardProgram",
    "WireRecord",
    "merge_records",
]
