"""Event-lifecycle linearity rules (OWN601, OWN602, OWN603).

The engine's fire-and-forget path pools :class:`~repro.sim.events.Event`
objects: ``post``/``post_at``/``post_batch`` acquire from a freelist,
the event loop fires the callback, and ``_recycle`` returns the object.
Lazy cancellation adds a second release route — the schedulers discard
flagged entries during ``pop``/``peek``/compaction/refill. A pooled
object with two owners (or none) breaks determinism silently: a
double-released event serves two callbacks at once after the freelist
hands it out twice, and a leaked one quietly degrades the pool.

The analysis is a forward dataflow on the simflow CFG/worklist engine
over *event-owning locals* — names bound from an acquire op
(``Event(...)``, ``_acquire(...)``, a ``pop()`` off a freelist). It uses
move semantics: handing the object to the scheduler (``push`` /
``push_many`` / ``heappush``), returning it, rebinding it, or passing it
to any other call transfers ownership out of the function. Findings
follow the house must-violation discipline — a release/use is only
flagged when *every* path reaching it has already released the object —
except the leak rule, which is inherently existential (a single path
that drops a live owned object is a leak).

``OWN601``  double release: an event released (recycled / appended back
            to a freelist / discarded) on every path is released again.
``OWN602``  use after release: a released event is queued, passed on,
            or has a field read/written.
``OWN603``  leak on path: an acquired event reaches the function exit
            still owned — neither queued, released, returned, nor
            transferred — on at least one path.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.flow.cfg import Cfg, build_cfg
from repro.analysis.flow.engine import call_sites, fixpoint, walk_block
from repro.analysis.flow.rules_time import _RawFinding
from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Project,
    Rule,
    last_segment,
)

#: Abstract state: owning local -> set of ownership tokens. Tokens are
#: ``live@<line>`` (owned here, acquired at that line), ``queued``
#: (handed to a scheduler), ``released`` (freed back to the pool) and
#: ``gone`` (ownership transferred out of this function).
State = Dict[str, FrozenSet[str]]

_QUEUED = frozenset(("queued",))
_RELEASED = frozenset(("released",))
_GONE = frozenset(("gone",))

#: Callee last-segments that acquire a pooled/owned event when their
#: result is bound to a name.
_ACQUIRE_CALLS = frozenset(("Event", "_acquire", "acquire_event"))

#: Callee last-segments that hand an event to a scheduler (ownership
#: moves to the queue; ``push_many``/``post_batch`` are the bulk forms).
_QUEUE_CALLS = frozenset(
    ("push", "push_many", "heappush", "post_batch", "schedule_event")
)

#: Callee last-segments that release an event back to its pool.
_RELEASE_CALLS = frozenset(("_recycle", "recycle", "release_event"))


def _call_tail(value: ast.expr) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    return last_segment(value.func)


def _is_freelist_name(name: Optional[str]) -> bool:
    return name is not None and "free" in name.lower()


def _is_acquire(value: ast.expr) -> bool:
    """Does this expression mint a fresh owned event?"""
    tail = _call_tail(value)
    if tail in _ACQUIRE_CALLS:
        return True
    if tail == "pop" and isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Attribute) and not value.args:
            return _is_freelist_name(last_segment(func.value))
    return False


class _EventAnalysis:
    """The per-function forward dataflow (engine client)."""

    def __init__(
        self,
        ctx: FileContext,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        report: Optional[List[_RawFinding]] = None,
    ) -> None:
        self.ctx = ctx
        self.func = func
        self.report = report

    # -- engine contract ------------------------------------------------
    def initial(self, cfg: Cfg) -> State:
        # Parameters stay untracked: the caller owns them. Only locals
        # minted by an acquire op are linear resources of this function.
        return {}

    def join(self, a: State, b: State) -> State:
        if a == b:
            return a
        out = dict(a)
        for key, value in b.items():
            existing = out.get(key)
            out[key] = value if existing is None else existing | value
        return out

    def transfer(self, stmt: ast.stmt, state: State) -> State:
        state = dict(state)
        for call, name in sorted(
            call_sites(stmt),
            key=lambda pair: (pair[0].lineno, pair[0].col_offset),
        ):
            self._apply_call(call, name, state)
        self._check_field_uses(stmt, state)
        if isinstance(stmt, ast.Assign):
            self._apply_assign(stmt.targets, stmt.value, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._apply_assign([stmt.target], stmt.value, state)
        elif isinstance(stmt, ast.Return):
            if isinstance(stmt.value, ast.Name) and stmt.value.id in state:
                state[stmt.value.id] = _GONE
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._untrack_target(stmt.target, state)
        return state

    # -- transfer pieces ------------------------------------------------
    def _apply_assign(
        self, targets: List[ast.expr], value: ast.expr, state: State
    ) -> None:
        moved: Optional[FrozenSet[str]] = None
        if _is_acquire(value):
            moved = frozenset((f"live@{value.lineno}",))
        elif isinstance(value, ast.Name) and value.id in state:
            # Move semantics: ``y = x`` transfers ownership to ``y``.
            moved = state[value.id]
            state[value.id] = _GONE
        for target in targets:
            if isinstance(target, ast.Name):
                self._orphan_live(target.id, state)
                if moved is not None:
                    state[target.id] = moved
                else:
                    state.pop(target.id, None)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._untrack_target(element, state)

    def _orphan_live(self, name: str, state: State) -> None:
        """Rebinding over a still-live event drops its only reference.

        The live token is parked under a synthetic key so it reaches the
        exit state and is reported by the leak rule.
        """
        prior = state.get(name)
        if prior is None:
            return
        live = frozenset(t for t in prior if t.startswith("live@"))
        if live:
            orphan_key = f"{name}#orphan"
            state[orphan_key] = state.get(orphan_key, frozenset()) | live

    def _untrack_target(self, target: ast.expr, state: State) -> None:
        if isinstance(target, ast.Name):
            self._orphan_live(target.id, state)
            state.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._untrack_target(element, state)
        elif isinstance(target, ast.Starred):
            self._untrack_target(target.value, state)

    def _tracked_args(self, call: ast.Call, state: State) -> List[str]:
        names: List[str] = []
        for arg in (*call.args, *[kw.value for kw in call.keywords]):
            if isinstance(arg, ast.Name) and arg.id in state:
                names.append(arg.id)
        return names

    def _apply_call(self, call: ast.Call, name: str, state: State) -> None:
        is_release = name in _RELEASE_CALLS or (
            name == "append"
            and isinstance(call.func, ast.Attribute)
            and _is_freelist_name(last_segment(call.func.value))
        )
        for var in self._tracked_args(call, state):
            tokens = state[var]
            if is_release:
                if tokens == _RELEASED:
                    self._emit(
                        call,
                        "OWN601",
                        f"event '{var}' released again via '{name}' — it "
                        "is already back in the pool on every path, so "
                        "the freelist would hand it out twice",
                    )
                state[var] = _RELEASED
            elif name in _QUEUE_CALLS:
                if tokens == _RELEASED:
                    self._emit(
                        call,
                        "OWN602",
                        f"released event '{var}' handed to the scheduler "
                        f"via '{name}' — the pool may already have "
                        "reissued it to another callback",
                    )
                state[var] = _QUEUED
            else:
                if tokens == _RELEASED:
                    self._emit(
                        call,
                        "OWN602",
                        f"released event '{var}' passed to '{name}' — "
                        "use after release",
                    )
                # Any other call takes ownership (conservative: helpers
                # own what they are handed; no summary needed).
                state[var] = _GONE

    def _check_field_uses(self, stmt: ast.stmt, state: State) -> None:
        """Field access (``e.fn``, ``e.time = ...``) on a released event.

        Mirrors :func:`call_sites`: a compound statement contributes only
        its control expressions — its body lives in other CFG blocks.
        """
        roots: List[ast.AST]
        if isinstance(stmt, (ast.If, ast.While)):
            roots = [stmt.test]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            roots = [stmt.iter]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            roots = [item.context_expr for item in stmt.items]
        elif isinstance(
            stmt,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Try),
        ):
            roots = []
        else:
            roots = [stmt]
        stack: List[ast.AST] = roots
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and state.get(node.value.id) == _RELEASED
            ):
                self._emit(
                    node,
                    "OWN602",
                    f"field '{node.attr}' of event '{node.value.id}' "
                    "touched after release — the object belongs to the "
                    "pool again",
                )

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if self.report is None:
            return
        self.report.append(
            _RawFinding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )


#: Per-project memo so all three OWN60x rules walk once.
_FINDINGS_CACHE: Dict[int, List[_RawFinding]] = {}


def event_findings(project: Project) -> List[_RawFinding]:
    key = id(project)
    cached = _FINDINGS_CACHE.get(key)
    if cached is not None:
        return cached
    report: List[_RawFinding] = []
    for ctx in project.files:
        if ctx.tree is None:
            continue
        for func in ctx.functions():
            cfg = build_cfg(func)
            # Fixpoint runs silent; only the post-convergence walk
            # reports (the must-violation guarantee depends on this).
            silent = _EventAnalysis(ctx, func, report=None)
            states = fixpoint(cfg, silent)
            reporter = _EventAnalysis(ctx, func, report=report)
            walk_block(cfg, states, reporter, lambda stmt, state: None)
            exit_state = states.get(cfg.exit)
            if exit_state:
                _report_leaks(ctx, exit_state, report)
    unique = sorted(
        set(report), key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
    )
    _FINDINGS_CACHE.clear()  # bound memory: one project at a time
    _FINDINGS_CACHE[key] = unique
    return unique


def _report_leaks(
    ctx: FileContext, exit_state: State, report: List[_RawFinding]
) -> None:
    for var in sorted(exit_state):
        for token in sorted(exit_state[var]):
            if not token.startswith("live@"):
                continue
            line = int(token.split("@", 1)[1])
            label = var.split("#", 1)[0]
            report.append(
                _RawFinding(
                    path=ctx.path,
                    line=line,
                    col=0,
                    rule="OWN603",
                    message=(
                        f"event '{label}' acquired here can reach the "
                        "function exit still owned — neither queued, "
                        "released nor transferred on that path (the "
                        "pool entry is leaked)"
                    ),
                )
            )


class _EventRuleBase(Rule):
    scope = None  # all analyzed files; the in-tree sources must stay clean

    def check_project(self, project: Project) -> Iterator[Finding]:
        by_path = {ctx.path: ctx for ctx in project.files}
        for raw in event_findings(project):
            if raw.rule != self.id:
                continue
            ctx = by_path.get(raw.path)
            if ctx is not None and not self.applies_to(ctx.module):
                continue
            yield Finding(
                path=raw.path,
                line=raw.line,
                col=raw.col,
                rule=raw.rule,
                message=raw.message,
            )


class DoubleReleaseRule(_EventRuleBase):
    id = "OWN601"
    title = "a pooled event is released exactly once"
    rationale = (
        "post/post_at/post_batch recycle their events through a "
        "freelist; releasing one twice makes _acquire hand the same "
        "object to two callers, and the second rebind silently corrupts "
        "the first caller's pending callback — a determinism bug no "
        "trace diff attributes to its cause."
    )


class UseAfterReleaseRule(_EventRuleBase):
    id = "OWN602"
    title = "no use of an event after it was released"
    rationale = (
        "After _recycle the object belongs to the pool: its fn/args "
        "slots are neutralized and the next _acquire may rebind them at "
        "any moment. Queueing or touching it races that rebind — the "
        "lazy-cancellation discard paths in the schedulers are release "
        "points too."
    )


class EventLeakRule(_EventRuleBase):
    id = "OWN603"
    title = "every acquired event is queued, released or handed off"
    rationale = (
        "An event acquired from the freelist and then dropped on an "
        "early-exit path is gone for good — the pool shrinks by one on "
        "every hit of that path, silently degrading the allocation-free "
        "hot path the engine's perf work bought (post_batch/push_many "
        "included)."
    )


EVENT_RULES: Tuple[Rule, ...] = (
    DoubleReleaseRule(),
    UseAfterReleaseRule(),
    EventLeakRule(),
)
