"""The benchmark suite: what ``repro bench`` actually runs.

Four kinds of benchmark, probing four layers:

* ``engine`` — event-core microbenches driving one
  :class:`~repro.sim.engine.Simulator` directly: schedule/cancel churn
  against each scheduler implementation, and a ``post_batch`` NAPI-storm
  pattern. These isolate raw events/sec.
* ``scenario`` — sockperf-style :class:`~repro.workloads.sockperf.Testbed`
  runs covering all four datapath regimes (vanilla, Falcon, ONCache,
  ONCache+Falcon, plus TCP stream Falcon): the whole stack, one host,
  headline packet rates. The ONCache regimes use the warm-then-stress
  ramp — a cold cache under saturation never populates because the
  ordering gate keeps flows on the slow path while it is busy.
* ``flowcache`` — the per-flow fast-path cache hit-rate sweep (flow
  count vs one cache capacity per bench), pinning LRU thrash behaviour.
* ``figure`` — full figure reproductions from
  :mod:`repro.experiments.run_all`; their headline is the figure's raw
  series, so a perf regression and a *result* regression both surface.

Every benchmark derives its own seed from the run's root seed and its
name, so runs are reproducible and benchmarks are independently
perturbable — exactly the :class:`~repro.sim.rng.RngRegistry` rule,
applied one level up.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry, _derive_seed

#: Figures included in ``--quick`` runs (one per experiment family:
#: serialization microbench, stress throughput, latency distribution).
QUICK_FIGURES = ("fig05_serialization", "fig10_udp_stress", "fig12_latency")

ALL_FIGURES = (
    "fig02_motivation",
    "fig04_interrupts",
    "fig05_serialization",
    "fig06_flamegraph",
    "fig09_splitting",
    "fig10_udp_stress",
    "fig11_cpu_util",
    "fig12_latency",
    "fig13_multiflow",
    "fig14_multicontainer",
    "fig15_threshold",
    "fig16_adaptability",
    "fig17_webserving",
    "fig18_datacaching",
    "fig19_overhead",
    "fig21_flowcache",
)


@dataclass(frozen=True)
class BenchSpec:
    """One runnable benchmark."""

    name: str
    kind: str  # "engine" | "scenario" | "figure" | "shard" | "flowcache"
    #: Included in ``--quick`` runs.
    quick: bool
    #: True for benchmarks that spawn their own worker processes (the
    #: shard sweep). The harness must run these inline in the parent —
    #: Pool workers are daemonic and may not have children.
    own_processes: bool = False


def all_specs() -> List[BenchSpec]:
    """The full suite, in deterministic order."""
    specs = [
        BenchSpec("engine-churn-heap", "engine", True),
        BenchSpec("engine-churn-calendar", "engine", True),
        BenchSpec("engine-post-batch-storm", "engine", True),
        BenchSpec("scenario-udp-stress-vanilla", "scenario", True),
        BenchSpec("scenario-udp-stress-falcon", "scenario", True),
        BenchSpec("scenario-udp-stress-oncache", "scenario", True),
        BenchSpec("scenario-udp-stress-oncache-falcon", "scenario", True),
        BenchSpec("scenario-tcp-stream-falcon", "scenario", True),
        # The flow-cache hit-rate sweep, one cache capacity per bench
        # (mirrors fig21 panel b): flow counts above the capacity thrash
        # the LRU and the hit rate collapses.
        BenchSpec("flowcache-sweep-8", "flowcache", True),
        BenchSpec("flowcache-sweep-32", "flowcache", False),
        BenchSpec("flowcache-sweep-128", "flowcache", True),
        # The shard-count sweep: the same cluster at 1 (inline reference)
        # and 2/4 worker processes. Comparing their events/sec is the
        # sharded engine's headline speedup number.
        BenchSpec("shard-cluster-1", "shard", True),
        BenchSpec("shard-cluster-2", "shard", True, own_processes=True),
        BenchSpec("shard-cluster-4", "shard", True, own_processes=True),
    ]
    for figure in ALL_FIGURES:
        specs.append(BenchSpec(f"figure-{figure}", "figure", figure in QUICK_FIGURES))
    return specs


def specs_for(
    quick: bool = False, only: Optional[List[str]] = None
) -> List[BenchSpec]:
    """The benchmarks a run selects (``--quick`` subset, ``--only`` filter)."""
    specs = all_specs()
    if only:
        wanted = set(only)
        unknown = wanted - {spec.name for spec in specs}
        if unknown:
            raise ValueError(f"unknown benchmark(s): {sorted(unknown)}")
        return [spec for spec in specs if spec.name in wanted]
    if quick:
        return [spec for spec in specs if spec.quick]
    return specs


def derive_bench_seed(root_seed: int, name: str) -> int:
    """Per-benchmark seed: stable in the root seed and the bench name."""
    # Testbed seeds shift client IP/port allocation; keep them small.
    return _derive_seed(root_seed, f"bench/{name}") % 100_000


# ----------------------------------------------------------------------
# Engine microbenches
# ----------------------------------------------------------------------
def _sink() -> None:
    """Do-nothing event payload for engine microbenches."""


def _engine_churn(scheduler: str, seed: int, quick: bool) -> Dict[str, Any]:
    """Self-sustaining schedule/cancel churn against one scheduler.

    90% of events land in the near future (the packet-run distribution
    the calendar queue is tuned for), 10% far out; a third of ticks also
    schedule a cancellable timer, half of which are cancelled — the
    lazy-cancellation-plus-compaction path.
    """
    sim = Simulator(scheduler)
    rng = RngRegistry(seed).stream("bench/churn")
    remaining = 20_000 if quick else 200_000
    cancels = 0

    def tick() -> None:
        nonlocal remaining, cancels
        if remaining <= 0:
            return
        remaining -= 1
        if rng.random() < 0.9:
            delay = rng.random() * 4.0
        else:
            delay = 400.0 + rng.random() * 600.0
        sim.post(delay, tick)
        if rng.random() < 0.3:
            handle = sim.schedule(rng.random() * 50.0, _sink)
            if rng.random() < 0.5:
                sim.cancel(handle)
                cancels += 1

    for _ in range(64):
        sim.post(rng.random(), tick)
    sim.run()
    return {
        "scheduler": scheduler,
        "final_clock_us": round(sim.now, 3),
        "cancelled": cancels,
        "sim_events": sim.events_processed,
    }


def _engine_post_batch_storm(seed: int, quick: bool) -> Dict[str, Any]:
    """NAPI poll-storm pattern: bursts of same-instant continuations.

    Each round bulk-inserts one batch of per-packet continuations via
    :meth:`~repro.sim.engine.Simulator.post_batch` — the shape a NAPI
    poll round produces — then schedules the next round.
    """
    sim = Simulator()
    rounds = 500 if quick else 5_000
    batch = 64
    done = 0

    def packet(_index: int) -> None:
        nonlocal done
        done += 1

    def poll_round(round_index: int) -> None:
        if round_index >= rounds:
            return
        sim.post_batch(1.0, packet, [(i,) for i in range(batch)])
        sim.post(1.0, poll_round, round_index + 1)

    sim.post(0.0, poll_round, 0)
    sim.run()
    return {
        "rounds": rounds,
        "batch": batch,
        "packets": done,
        "final_clock_us": round(sim.now, 3),
        "sim_events": sim.events_processed,
    }


# ----------------------------------------------------------------------
# Scenario benches
# ----------------------------------------------------------------------
def _scenario(name: str, seed: int, quick: bool) -> Dict[str, Any]:
    from repro.core.config import FalconConfig
    from repro.workloads.sockperf import Experiment

    duration_ms = 4.0 if quick else 25.0
    warmup_ms = 2.0 if quick else 10.0
    falcon = FalconConfig(cpus=[3, 4, 5, 6])
    if name == "scenario-udp-stress-vanilla":
        exp = Experiment(mode="overlay", seed=seed)
        result = exp.run_udp_stress(1024, duration_ms=duration_ms, warmup_ms=warmup_ms)
    elif name == "scenario-udp-stress-falcon":
        exp = Experiment(mode="overlay", falcon=falcon, seed=seed)
        result = exp.run_udp_stress(1024, duration_ms=duration_ms, warmup_ms=warmup_ms)
    elif name == "scenario-tcp-stream-falcon":
        exp = Experiment(mode="overlay", falcon=falcon, seed=seed)
        result = exp.run_tcp_stream(4096, duration_ms=duration_ms, warmup_ms=warmup_ms)
    elif name in (
        "scenario-udp-stress-oncache",
        "scenario-udp-stress-oncache-falcon",
    ):
        # ONCache regimes run the warm-then-stress ramp: the ordering
        # gate only grants fast-path hits to flows with an empty slow
        # path, so a saturating closed loop from a cold start would
        # measure the slow path forever.
        from repro.experiments.fig21_flowcache import run_ramp_regime

        result = run_ramp_regime(
            use_falcon=name.endswith("-falcon"),
            use_cache=True,
            warmup_ms=warmup_ms,
            duration_ms=duration_ms,
            seed=seed,
        )
    else:
        raise ValueError(f"unknown scenario benchmark {name!r}")
    headline = {
        "mode": result.mode,
        "proto": result.proto,
        "message_rate_pps": round(result.message_rate_pps, 1),
        "goodput_gbps": round(result.goodput_gbps, 4),
        "p99_latency_us": round(result.p99_latency_us, 2),
        "drops": result.drops,
    }
    if "oncache" in name:
        headline["cache_hit_rate"] = round(result.cache_hit_rate, 4)
        headline["fastpath_deliveries"] = result.fastpath_deliveries
    return headline


# ----------------------------------------------------------------------
# Flow-cache sweep benches
# ----------------------------------------------------------------------
def _flowcache_sweep(name: str, seed: int, quick: bool) -> Dict[str, Any]:
    """One capacity of the fast-path hit-rate sweep (fig21 panel b).

    Flows are paced well under slow-path capacity so the ordering gate
    opens at every flow count: the hit rate is then set purely by how
    the flow count compares to the cache capacity (LRU thrash), which is
    exactly the curve this bench pins.
    """
    from repro.experiments.fig21_flowcache import (
        QUICK_SWEEP_FLOWS,
        SWEEP_FLOWS,
        SWEEP_RATE_PPS,
        run_sweep_point,
    )

    capacity = int(name.rsplit("-", 1)[1])
    flows_list = QUICK_SWEEP_FLOWS if quick else SWEEP_FLOWS
    duration_ms, warmup_ms = (4.0, 2.0) if quick else (12.0, 6.0)
    points: Dict[str, Any] = {}
    for flows in flows_list:
        result = run_sweep_point(
            flows, capacity, warmup_ms=warmup_ms, duration_ms=duration_ms, seed=seed
        )
        points[str(flows)] = {
            "message_rate_pps": round(result.message_rate_pps, 1),
            "hit_rate": round(result.cache_hit_rate, 4),
            "evictions": result.cache_evictions,
            "fastpath_deliveries": result.fastpath_deliveries,
        }
    return {"capacity": capacity, "rate_pps": SWEEP_RATE_PPS, "points": points}


# ----------------------------------------------------------------------
# Shard sweep benches
# ----------------------------------------------------------------------
def _shard_bench(name: str, seed: int, quick: bool) -> Dict[str, Any]:
    """One point of the shard-count sweep.

    The scenario is sized for parallel efficiency: 4 hosts saturating a
    UDP ring with a generous inter-host propagation delay, so barrier
    windows are wide and each shard does real work between syncs. The
    simulated result is identical at every shard count (that is the
    equivalence suite's job to prove); only events/sec should move.
    """
    from repro.overlay.cluster import run_cluster, udp_ring_spec

    shards = int(name.rsplit("-", 1)[1])
    # One fixed scenario for every sweep point (ignore the per-bench
    # seed): the three entries must simulate the *same* workload or
    # their events/sec would not be comparable. The scenario is fully
    # deterministic regardless.
    spec = udp_ring_spec(
        num_hosts=4,
        message_size=1024,
        rate_pps=None,  # saturating — throughput-bound, not pacing-bound
        seed=0,
        propagation_us=25.0,
        warmup_us=1000.0,
        duration_us=3000.0 if quick else 10_000.0,
    )
    result = run_cluster(
        spec, shards=shards, transport="inline" if shards == 1 else "process"
    )
    return {
        "shards": shards,
        "transport": result.transport,
        "messages_delivered": result.messages_delivered,
        "message_rate_pps": round(result.message_rate_pps, 1),
        "windows_run": result.windows_run,
        "records_exchanged": result.records_exchanged,
        "sim_events": result.events_processed,
    }


# ----------------------------------------------------------------------
# Figure benches
# ----------------------------------------------------------------------
def _json_safe(value: Any) -> Any:
    """Reduce an arbitrary result structure to JSON-serializable types."""
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, float):
        return round(value, 6)
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return repr(value)


def _figure(name: str, quick: bool) -> Dict[str, Any]:
    module = importlib.import_module(f"repro.experiments.{name}")
    output = module.run(quick=quick)
    return {
        "figure": output.figure,
        "title": output.title,
        "series": _json_safe(output.series),
    }


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def execute(name: str, seed: int, quick: bool) -> Dict[str, Any]:
    """Run one benchmark by name; returns its headline metrics."""
    if name == "engine-churn-heap":
        return _engine_churn("heap", seed, quick)
    if name == "engine-churn-calendar":
        return _engine_churn("calendar", seed, quick)
    if name == "engine-post-batch-storm":
        return _engine_post_batch_storm(seed, quick)
    if name.startswith("scenario-"):
        return _scenario(name, seed, quick)
    if name.startswith("flowcache-"):
        return _flowcache_sweep(name, seed, quick)
    if name.startswith("shard-"):
        return _shard_bench(name, seed, quick)
    if name.startswith("figure-"):
        return _figure(name[len("figure-"):], quick)
    raise ValueError(f"unknown benchmark {name!r}")
