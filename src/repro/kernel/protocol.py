"""Protocol-layer steps (IP / UDP / TCP receive).

These steps terminate a stack traversal: IP receive (with fragment
reassembly for UDP messages larger than the MTU), the L4 receive
function, and the socket enqueue. They are used twice on the overlay
path — once for the outer packet (see :mod:`repro.kernel.devices.vxlan`)
and once for the inner packet inside the container's namespace.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel.costs import CostModel
from repro.kernel.defrag import DefragEngine
from repro.kernel.skb import Skb
from repro.kernel.stages import Step


def ip_rcv_step(costs: CostModel) -> Step:
    return Step.simple("ip_rcv", costs.ip_rcv)


def defrag_step(costs: CostModel, engine: DefragEngine) -> Step:
    """``ip_defrag``: reassemble UDP fragments; TCP passes straight through
    (its segments are either GRO-merged earlier or accumulate at the
    socket)."""

    def cost(skb: Skb) -> float:
        if skb.is_tcp or skb.frag_count == 1:
            return 0.0
        return costs.ip_defrag.cost(skb.size)

    def effect(skb: Skb, _cpu_index: int) -> Optional[Skb]:
        if skb.is_tcp:
            return skb
        return engine.feed(skb)

    return Step("ip_defrag", cost, effect)


def l4_rcv_step(costs: CostModel) -> Step:
    """``udp_rcv`` or ``tcp_v4_rcv`` depending on the packet's protocol.

    The TCP cost includes ACK generation (``tcp_ack_tx``), charged per
    merged skb, matching how GRO amortizes ACK traffic.
    """

    def cost(skb: Skb) -> float:
        if skb.is_tcp:
            return costs.tcp_v4_rcv.cost(skb.size) + costs.tcp_ack_tx.fixed
        return costs.udp_rcv.cost(skb.size)

    return Step("l4_rcv", cost)


def sock_enqueue_step(costs: CostModel) -> Step:
    return Step.simple("sock_enqueue", costs.sock_enqueue)


def stack_tail_steps(costs: CostModel, defrag: DefragEngine) -> List[Step]:
    """IP → defrag → L4 → socket: the end of any receive path."""
    return [
        ip_rcv_step(costs),
        defrag_step(costs, defrag),
        l4_rcv_step(costs),
        sock_enqueue_step(costs),
    ]
