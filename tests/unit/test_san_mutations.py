"""Mutation tests: simsan must catch planted defects in the real code.

The acceptance bar for the pass is not "runs clean on src" (a vacuous
analyzer does that too) — it is that seeding each canonical ownership
bug into a *copy of the real module* yields exactly the expected OWN
finding at the expected line:

* the engine's post path releasing its pooled event twice → OWN601;
* the same path dropping the event instead of queueing it → OWN603;
* GRO holding a fragment *and* forwarding it (store-AND-forward in
  place of the legal store-XOR-forward) → OWN612;
* decode_skb serving a cached object instead of constructing fresh
  from wire primitives → OWN613;
* FlowTable.invalidate stripped of its counter bump → OWN621;
* the RECORD_INVAL handler invalidating the same flow twice → OWN622.

Copies are analyzed out-of-tree (module=None), where every rule applies
unconditionally — strict by default.
"""

from pathlib import Path

from repro.analysis.lint.report import render_text
from repro.analysis.san import san_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
ENGINE = REPO_ROOT / "src" / "repro" / "sim" / "engine.py"
GRO = REPO_ROOT / "src" / "repro" / "kernel" / "gro.py"
CLUSTER = REPO_ROOT / "src" / "repro" / "overlay" / "cluster.py"
FLOWCACHE = REPO_ROOT / "src" / "repro" / "kernel" / "flowcache.py"


def findings_for(path):
    result = san_paths([str(path)])
    return [(f.line, f.rule) for f in result.findings]


def mutate(tmp_path, source: Path, old: str, new: str) -> Path:
    text = source.read_text()
    assert text.count(old) == 1, f"mutation anchor not unique: {old!r}"
    copy = tmp_path / source.name
    copy.write_text(text.replace(old, new))
    return copy


def line_of(path: Path, needle: str) -> int:
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        if needle in text:
            return lineno
    raise AssertionError(f"{needle!r} not found in {path}")


class TestCleanCopies:
    """The unmutated modules are clean even out-of-tree (module=None)."""

    def test_copies_are_clean(self, tmp_path):
        for source in (ENGINE, GRO, CLUSTER, FLOWCACHE):
            copy = tmp_path / source.name
            copy.write_text(source.read_text())
            result = san_paths([str(copy)])
            assert result.ok, f"{source.name}:\n{render_text(result)}"


class TestPlantedDefects:
    def test_double_recycle_in_post_yields_own601(self, tmp_path):
        copy = mutate(
            tmp_path,
            ENGINE,
            "        self._scheduler.push("
            "self._acquire(self.now + delay, fn, args))",
            "        event = self._acquire(self.now + delay, fn, args)\n"
            "        self._recycle(event)\n"
            "        self._recycle(event)",
        )
        expected_line = line_of(copy, "self._recycle(event)") + 1
        assert findings_for(copy) == [(expected_line, "OWN601")]

    def test_dropped_event_in_post_yields_own603(self, tmp_path):
        copy = mutate(
            tmp_path,
            ENGINE,
            "        self._scheduler.push("
            "self._acquire(self.now + delay, fn, args))",
            "        event = self._acquire(self.now + delay, fn, args)",
        )
        expected_line = line_of(
            copy, "event = self._acquire(self.now + delay, fn, args)"
        )
        assert findings_for(copy) == [(expected_line, "OWN603")]

    def test_gro_store_and_forward_yields_own612(self, tmp_path):
        # feed's legal shape holds the fragment XOR returns it; keep the
        # held reference and forward the skb anyway and the container
        # will replay a packet the pipeline already moved on.
        copy = mutate(
            tmp_path,
            GRO,
            "            self._held[key] = skb\n"
            "            skb.segs = 1\n"
            "            return None",
            "            self._held[key] = skb\n"
            "            skb.segs = 1\n"
            "            return skb",
        )
        expected_line = line_of(copy, "skb.segs = 1") + 1
        assert findings_for(copy) == [(expected_line, "OWN612")]

    def test_decode_skb_from_cache_yields_own613(self, tmp_path):
        copy = mutate(
            tmp_path,
            CLUSTER,
            "    if len(payload) != 10:",
            "    if payload in _DECODE_CACHE:\n"
            "        skb_cached = _DECODE_CACHE[payload]\n"
            "        return skb_cached\n"
            "    if len(payload) != 10:",
        )
        expected_line = line_of(copy, "return skb_cached")
        assert findings_for(copy) == [(expected_line, "OWN613")]

    def test_unaccounted_invalidate_yields_own621(self, tmp_path):
        copy = mutate(
            tmp_path,
            FLOWCACHE,
            "            self.invalidations += 1\n",
            "",
        )
        expected_line = line_of(copy, "self._entries.pop(key, None)")
        assert findings_for(copy) == [(expected_line, "OWN621")]

    def test_double_record_inval_yields_own622(self, tmp_path):
        # _sender_inval is the receiving end of RECORD_INVAL; tearing
        # the flow down twice is the churn hazard OWN622 exists for.
        copy = mutate(
            tmp_path,
            CLUSTER,
            "            flowcache.invalidate_flow(flow)",
            "            flowcache.invalidate_flow(flow)\n"
            "            flowcache.invalidate_flow(flow)",
        )
        expected_line = line_of(copy, "flowcache.invalidate_flow(flow)") + 1
        assert findings_for(copy) == [(expected_line, "OWN622")]
