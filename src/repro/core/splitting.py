"""Softirq splitting (Section 4.2) — function-level stage division.

When one device's softirq saturates a core, Falcon splits its processing
*at function granularity*: a stage-transition function is inserted right
before the function(s) to offload, so they execute as a separate softirq
on another core. The shipped instance is **GRO splitting**: for TCP with
large messages, ``skb`` allocation and ``napi_gro_receive`` each consume
~45% of the first core (Figure 9a), so Falcon inserts ``netif_rx``
between them.

A :class:`SplitSpec` names the device stage and the step before which the
transition is inserted; the stack builder applies it. Splits are decided
by offline profiling in the paper (Section 6.4 discusses the missing
dynamic mechanism), which is why they are static configuration here too.

The two split halves must be *stateless with respect to each other* —
``skb_alloc`` does not depend on ``napi_gro_receive`` — which is what
makes the cut legal; :func:`validate_split` enforces the known-legal cuts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sim.errors import ConfigurationError


@dataclass(frozen=True)
class SplitSpec:
    """Split a device stage before a named step."""

    #: Stage (device) whose softirq is being split.
    stage_name: str
    #: The step before which ``netif_rx`` is inserted; everything from
    #: this step on runs as a separate softirq.
    before_step: str
    #: A synthetic device index for the second half, so the Falcon hash
    #: assigns it its own core (distinct from the first half's).
    ifindex_offset: int = 1000


#: The paper's shipped split: offload GRO from the physical NIC's stage.
GRO_SPLIT = SplitSpec(stage_name="pnic", before_step="napi_gro_receive")

#: Cuts known to be legal (the halves share no per-packet state).
_LEGAL_CUTS: Tuple[Tuple[str, str], ...] = (
    ("pnic", "napi_gro_receive"),
)


def validate_split(spec: SplitSpec) -> None:
    """Reject splits between functions that share state."""
    if (spec.stage_name, spec.before_step) not in _LEGAL_CUTS:
        raise ConfigurationError(
            f"split of {spec.stage_name!r} before {spec.before_step!r} is not "
            "a known-stateless cut; offline profiling must vet new cuts"
        )
