"""Unit tests for the validation subsystem (src/repro/validate/).

Covers the golden-trace serializer round-trip, the trace diff engine's
failure messages, the differential checker's failure messages (driven by
fabricated SideRecords, no simulation), and the invariant monitor's
individual checks.
"""

import json
from types import SimpleNamespace

import pytest

from repro.validate import (
    InvariantMonitor,
    InvariantViolation,
    SideRecord,
    SuiteOutcome,
    attach_monitor,
    compare_sides,
    corrupt_conservation_ledger,
    diff_trace_docs,
    load_golden,
    serialize_traces,
    trace_doc_to_json,
    write_golden,
)


# ----------------------------------------------------------------------
# Fabricated tracer (mirrors PacketTracer's read API)
# ----------------------------------------------------------------------
def _event(time_us, kind, stage, cpu):
    return SimpleNamespace(time_us=time_us, kind=kind, stage=stage, cpu=cpu)


def _trace(flow_id, msg_id, events):
    return SimpleNamespace(flow_id=flow_id, msg_id=msg_id, events=events)


class _Tracer:
    def __init__(self, traces):
        self._traces = traces

    def traces(self, complete_only=False):
        return list(self._traces)


def _sample_tracer():
    return _Tracer(
        [
            _trace(40, 2, [_event(10.0, "rx", "irq", 0)]),
            _trace(17, 5, [_event(1.25, "rx", "irq", 0), _event(3.5, "app", "socket", 2)]),
            _trace(40, 1, [_event(8.123456789, "rx", "irq", 1)]),
        ]
    )


class TestSerializeTraces:
    def test_flow_ids_remapped_dense_and_sorted(self):
        doc = serialize_traces(_sample_tracer())
        keys = [(t["flow"], t["msg"]) for t in doc["traces"]]
        # flow 17 -> index 0, flow 40 -> index 1; msgs ascend within a flow.
        assert keys == [(0, 5), (1, 1), (1, 2)]

    def test_times_rounded_to_fixed_precision(self):
        doc = serialize_traces(_sample_tracer())
        by_key = {(t["flow"], t["msg"]): t for t in doc["traces"]}
        assert by_key[(1, 1)]["events"][0][0] == round(8.123456789, 6)

    def test_meta_and_schema_carried(self):
        doc = serialize_traces(_sample_tracer(), meta={"scenario": "x"})
        assert doc["schema"] == 1
        assert doc["meta"] == {"scenario": "x"}

    def test_raw_flow_ids_do_not_leak(self):
        """Two tracers with shifted raw flow ids serialize identically."""
        shifted = _Tracer(
            [
                _trace(140, 2, [_event(10.0, "rx", "irq", 0)]),
                _trace(117, 5, [_event(1.25, "rx", "irq", 0), _event(3.5, "app", "socket", 2)]),
                _trace(140, 1, [_event(8.123456789, "rx", "irq", 1)]),
            ]
        )
        assert serialize_traces(_sample_tracer()) == serialize_traces(shifted)


class TestGoldenRoundTrip:
    def test_write_then_load_is_identity(self, tmp_path):
        doc = serialize_traces(_sample_tracer(), meta={"k": 1})
        path = tmp_path / "sub" / "golden.json"
        write_golden(path, doc)
        assert load_golden(path) == doc
        assert diff_trace_docs(doc, load_golden(path)) == []

    def test_json_text_is_canonical(self, tmp_path):
        doc = serialize_traces(_sample_tracer())
        text = trace_doc_to_json(doc)
        assert text.endswith("\n")
        # Stable key order: serializing the parsed text reproduces it.
        assert trace_doc_to_json(json.loads(text)) == text


def _mutated(doc):
    return json.loads(json.dumps(doc))


class TestDiffMessages:
    def setup_method(self):
        self.doc = serialize_traces(_sample_tracer(), meta={"scenario": "x"})

    def test_identical_docs_no_diffs(self):
        assert diff_trace_docs(self.doc, _mutated(self.doc)) == []

    def test_schema_mismatch_short_circuits(self):
        actual = _mutated(self.doc)
        actual["schema"] = 2
        diffs = diff_trace_docs(self.doc, actual)
        assert diffs == ["schema version mismatch: golden 1 vs run 2"]

    def test_meta_mismatch_reported(self):
        actual = _mutated(self.doc)
        actual["meta"]["scenario"] = "y"
        (diff,) = diff_trace_docs(self.doc, actual)
        assert "meta['scenario']" in diff and "'x'" in diff and "'y'" in diff

    def test_missing_trace_reported(self):
        actual = _mutated(self.doc)
        del actual["traces"][0]
        (diff,) = diff_trace_docs(self.doc, actual)
        assert diff == "trace flow=0 msg=5: in golden but missing from run"

    def test_extra_trace_reported(self):
        actual = _mutated(self.doc)
        actual["traces"].append({"flow": 3, "msg": 9, "events": []})
        (diff,) = diff_trace_docs(self.doc, actual)
        assert diff == "trace flow=3 msg=9: in run but not in golden"

    def test_event_divergence_names_first_differing_event(self):
        actual = _mutated(self.doc)
        actual["traces"][0]["events"][1][3] = 11  # cpu 2 -> 11
        (diff,) = diff_trace_docs(self.doc, actual)
        assert "trace flow=0 msg=5 event 1" in diff
        assert "cpu2" in diff and "cpu11" in diff

    def test_event_count_mismatch_reported(self):
        actual = _mutated(self.doc)
        actual["traces"][0]["events"].append([9.0, "rx", "irq", 0])
        diffs = diff_trace_docs(self.doc, actual)
        assert any("2 events in golden vs 3 in run" in d for d in diffs)

    def test_diff_cap_respected(self):
        actual = _mutated(self.doc)
        for trace in actual["traces"]:
            trace["events"] = [[0.0, "zz", "zz", 99]] * len(trace["events"])
        diffs = diff_trace_docs(self.doc, actual, max_messages=2)
        assert len(diffs) <= 3  # cap + optional truncation marker
        assert diffs[-1] == "... diff truncated"


# ----------------------------------------------------------------------
# Differential checker (fabricated SideRecords)
# ----------------------------------------------------------------------
def _clean_side(label):
    return SideRecord(
        label=label,
        deliveries={0: [(0, 512), (1, 512)], 1: [(0, 512)]},
        sent={0: 2, 1: 1},
    )


class TestCompareSides:
    def test_identical_sides_pass(self):
        assert compare_sides(_clean_side("vanilla"), _clean_side("falcon")) == []

    def test_drops_reported_per_side(self):
        falcon = _clean_side("falcon")
        falcon.drops = {"backlog": 3}
        (failure,) = compare_sides(_clean_side("vanilla"), falcon)
        assert failure == (
            "falcon: dropped packets in an underloaded run: {'backlog': 3}"
        )

    def test_reordering_reported(self):
        vanilla = _clean_side("vanilla")
        vanilla.reordered = 2
        failures = compare_sides(vanilla, _clean_side("falcon"))
        assert "vanilla: 2 messages delivered out of order" in failures

    def test_message_conservation_failure_names_flow(self):
        falcon = _clean_side("falcon")
        falcon.sent[0] = 5  # sender pushed 5, only 2 arrived
        failures = compare_sides(_clean_side("vanilla"), falcon)
        assert any(
            "falcon: message conservation broken on flow 0: sent 5 messages "
            "but delivered 2" in f
            for f in failures
        )

    def test_per_flow_order_failure_names_position(self):
        falcon = _clean_side("falcon")
        falcon.deliveries[0] = [(1, 512), (0, 512)]
        failures = compare_sides(_clean_side("vanilla"), falcon)
        assert any(
            "falcon: flow 0 delivery order broken at position 1" in f
            for f in failures
        )

    def test_cross_side_count_and_first_divergence(self):
        falcon = _clean_side("falcon")
        falcon.deliveries[1] = [(0, 256)]
        falcon.sent = dict(falcon.sent)
        failures = compare_sides(_clean_side("vanilla"), falcon)
        assert any(
            "flow 1 position 0: vanilla delivered msg 0 (512 B), falcon "
            "msg 0 (256 B)" in f
            for f in failures
        )
        assert any("application byte counts differ" in f for f in failures)

    def test_flow_set_mismatch_reported(self):
        falcon = _clean_side("falcon")
        del falcon.deliveries[1]
        del falcon.sent[1]
        failures = compare_sides(_clean_side("vanilla"), falcon)
        assert any("flow sets differ" in f for f in failures)

    def test_byte_totals_compared_exactly(self):
        falcon = _clean_side("falcon")
        falcon.deliveries[1] = [(0, 513)]
        failures = compare_sides(_clean_side("vanilla"), falcon)
        assert any(
            "application byte counts differ: vanilla 1536 vs falcon 1537" in f
            for f in failures
        )


# ----------------------------------------------------------------------
# Invariant monitor unit checks (no simulation)
# ----------------------------------------------------------------------
def _skb(segs=1, flow_id=7, msg_id=3):
    return SimpleNamespace(segs=segs, flow=SimpleNamespace(flow_id=flow_id), msg_id=msg_id)


class TestMonitorChecks:
    def test_audit_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            InvariantMonitor(audit_interval_us=0)

    def test_clock_monotonicity(self):
        monitor = InvariantMonitor()
        monitor.on_event(1.0, 2.0)  # forward in time: fine
        monitor.on_event(2.0, 2.0)  # same instant: fine
        with pytest.raises(InvariantViolation) as err:
            monitor.on_event(5.0, 4.0)
        assert err.value.kind == "clock-monotonicity"
        assert monitor.violations  # also recorded for reports

    def test_core_serialization_rejects_overlap(self):
        monitor = InvariantMonitor()
        monitor.on_cpu_start(3, 0.0, 5.0)
        with pytest.raises(InvariantViolation) as err:
            monitor.on_cpu_start(3, 1.0, 2.0)
        assert err.value.kind == "core-serialization"

    def test_core_serialization_rejects_early_completion(self):
        monitor = InvariantMonitor()
        monitor.on_cpu_start(3, 0.0, 5.0)
        with pytest.raises(InvariantViolation) as err:
            monitor.on_cpu_complete(3, 2.0)
        assert err.value.kind == "core-serialization"

    def test_start_complete_cycle_clean(self):
        monitor = InvariantMonitor()
        monitor.on_cpu_start(3, 0.0, 5.0)
        monitor.on_cpu_complete(3, 5.0)
        monitor.on_cpu_start(3, 6.0, 1.0)  # core free again
        monitor.on_cpu_complete(3, 7.0)

    def test_completion_without_start_tolerated(self):
        # Attaching mid-flight means the first completion has no record.
        InvariantMonitor().on_cpu_complete(0, 1.0)

    def test_negative_counter_amount_rejected(self):
        monitor = InvariantMonitor()
        monitor.on_counter_record("NET_RX", 0, 1)
        with pytest.raises(InvariantViolation) as err:
            monitor.on_counter_record("NET_RX", 0, -1)
        assert err.value.kind == "counter-monotonicity"

    def test_injected_frame_must_be_a_single_segment(self):
        monitor = InvariantMonitor()
        monitor.on_inject(_skb(segs=1), accepted=True)
        assert monitor.generated == 1
        with pytest.raises(InvariantViolation) as err:
            monitor.on_inject(_skb(segs=4), accepted=True)
        assert err.value.kind == "conservation"

    def test_ring_drop_accounted_not_generated(self):
        monitor = InvariantMonitor()
        monitor.on_inject(_skb(), accepted=False)
        assert monitor.generated == 0
        assert monitor.terminals["ring_drop"] == 1
        assert monitor.live_packets() == 0

    def test_terminal_beyond_generated_rejected(self):
        monitor = InvariantMonitor()
        monitor.on_inject(_skb(), accepted=True)
        monitor.on_terminal(_skb(), "delivered")
        assert monitor.live_packets() == 0
        with pytest.raises(InvariantViolation) as err:
            monitor.on_terminal(_skb(), "delivered")
        assert err.value.kind == "conservation"

    def test_gro_merge_accounting_uses_segs(self):
        monitor = InvariantMonitor()
        for _ in range(3):
            monitor.on_inject(_skb(), accepted=True)
        monitor.on_terminal(_skb(segs=3), "delivered")  # GRO-merged super-skb
        assert monitor.live_packets() == 0

    def test_corrupt_ledger_fixture_erases_packets(self):
        monitor = InvariantMonitor()
        for _ in range(5):
            monitor.on_inject(_skb(), accepted=True)
        corrupt_conservation_ledger(monitor, amount=2)
        assert monitor.generated == 3


class TestMonitorAttachment:
    def _bed(self):
        from repro.workloads.sockperf import Testbed

        return Testbed(mode="overlay", seed=0)

    def test_attach_wires_every_hook_and_detach_unwires(self):
        bed = self._bed()
        monitor = attach_monitor(bed.stack)
        assert bed.stack.monitor is monitor
        assert bed.sim.monitor is monitor
        assert bed.stack.softnet.monitor is monitor
        assert bed.stack.defrag.monitor is monitor
        assert bed.host.machine.interrupts.monitor is monitor
        assert all(cpu.monitor is monitor for cpu in bed.host.machine.cpus)
        monitor.detach()
        assert bed.stack.monitor is None
        assert bed.sim.monitor is None
        assert bed.stack.softnet.monitor is None
        assert bed.stack.defrag.monitor is None
        assert bed.host.machine.interrupts.monitor is None
        assert all(cpu.monitor is None for cpu in bed.host.machine.cpus)

    def test_double_attach_rejected(self):
        bed = self._bed()
        monitor = attach_monitor(bed.stack)
        with pytest.raises(ValueError):
            monitor.attach(bed.stack)
        monitor.detach()
        monitor.detach()  # idempotent

    def test_idle_stack_is_quiescent_and_conserving(self):
        bed = self._bed()
        monitor = attach_monitor(bed.stack)
        assert monitor.pipeline_idle()
        monitor.check_conservation(strict=True)
        monitor.detach()


class TestSuiteOutcome:
    def test_render_ok(self):
        outcome = SuiteOutcome("golden", "x", True)
        assert outcome.render() == "[golden] x: ok"

    def test_render_failure_indents_details(self):
        outcome = SuiteOutcome("invariants", "x", False, ["a", "b"])
        assert outcome.render() == "[invariants] x: FAIL\n    a\n    b"
