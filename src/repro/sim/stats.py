"""Measurement primitives used by the metrics layer.

These are deliberately dependency-free (no numpy) so that the hot paths of
the simulator can record samples cheaply; the analysis layer may convert
to numpy arrays afterwards.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named bag of monotonically increasing integer counters.

    Mirrors ``/proc/interrupts``-style accounting: callers bump named
    counters and later snapshot/diff them over a measurement window.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._counts)

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas since ``earlier`` (a previous :meth:`snapshot`)."""
        result: Dict[str, int] = {}
        for name, value in self._counts.items():
            delta = value - earlier.get(name, 0)
            if delta:
                result[name] = delta
        return result

    def items(self) -> Iterable[Tuple[str, int]]:
        return self._counts.items()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._counts!r})"


class WelfordAccumulator:
    """Streaming mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


class LatencyRecorder:
    """Stores raw latency samples and answers percentile queries.

    Samples are kept in full (they are floats; even a million samples is
    only ~8 MB) so percentiles are exact, matching how sockperf reports
    its latency spectrum.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._welford = WelfordAccumulator()

    def record(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = None
        self._welford.add(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return self._welford.mean

    @property
    def stdev(self) -> float:
        return self._welford.stdev

    def percentile(self, pct: float) -> float:
        """Exact percentile using the nearest-rank method.

        ``pct`` is in [0, 100]. Returns 0.0 when no samples were recorded.
        """
        if not self._samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        if pct == 0.0:
            return self._sorted[0]
        rank = math.ceil(pct / 100.0 * len(self._sorted))
        return self._sorted[rank - 1]

    def summary(self) -> Dict[str, float]:
        """The percentile set the paper reports (avg, p50, p90, p99, p99.9)."""
        return {
            "count": float(self.count),
            "avg": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p99.9": self.percentile(99.9),
            "max": self.percentile(100),
        }


class RateMeter:
    """Counts discrete events inside an explicit measurement window.

    The experiment harness opens the window after warm-up and closes it
    before drain, so transient start-up behaviour never pollutes the
    reported packet rates.
    """

    def __init__(self) -> None:
        self.count = 0
        self.bytes = 0
        self._window_start: Optional[float] = None
        self._window_end: Optional[float] = None
        self._open = False

    def open_window(self, now: float) -> None:
        self._window_start = now
        self._open = True
        self.count = 0
        self.bytes = 0

    def close_window(self, now: float) -> None:
        self._window_end = now
        self._open = False

    def record(self, nbytes: int = 0) -> None:
        if self._open:
            self.count += 1
            self.bytes += nbytes

    @property
    def window_us(self) -> float:
        if self._window_start is None or self._window_end is None:
            return 0.0
        return self._window_end - self._window_start

    def rate_per_sec(self) -> float:
        """Events per second over the closed window."""
        window = self.window_us
        if window <= 0:
            return 0.0
        return self.count / window * 1e6

    def gbps(self) -> float:
        """Goodput in gigabits per second over the closed window."""
        window = self.window_us
        if window <= 0:
            return 0.0
        return self.bytes * 8 / (window * 1e-6) / 1e9


class TimeWeightedValue:
    """Integral of a piecewise-constant signal (e.g. queue depth, busy flag).

    ``update`` must be called with non-decreasing timestamps; the average
    over a window is the integral divided by elapsed time.
    """

    def __init__(self, now: float = 0.0, value: float = 0.0) -> None:
        self._last_time = now
        self._value = value
        self._integral = 0.0

    @property
    def value(self) -> float:
        return self._value

    def update(self, now: float, value: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards in TimeWeightedValue.update")
        self._integral += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value

    def integral_at(self, now: float) -> float:
        """Integral up to ``now`` without mutating state."""
        return self._integral + self._value * (now - self._last_time)

    def mean(self, start: float, end: float, start_integral: float = 0.0) -> float:
        """Average value between ``start`` and ``end``.

        ``start_integral`` should be ``integral_at(start)`` captured when
        the window opened.
        """
        if end <= start:
            return 0.0
        return (self.integral_at(end) - start_integral) / (end - start)


class Histogram:
    """Log-scale latency histogram with fixed bucket boundaries.

    Used for cheap high-volume recording where exact percentiles are not
    needed (e.g. per-device queueing delays).
    """

    def __init__(self, bounds: Optional[List[float]] = None) -> None:
        if bounds is None:
            # 1µs .. ~1s in half-decade steps.
            bounds = [10 ** (exp / 2.0) for exp in range(0, 13)]
        if sorted(bounds) != list(bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.total = 0

    def record(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        self.buckets[index] += 1
        self.total += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile (upper bound of the containing bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        target = q * self.total
        running = 0
        for index, count in enumerate(self.buckets):
            running += count
            if running >= target:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                return self.bounds[index]
        return self.bounds[-1]
