"""Analytical models of the receive pipeline.

A closed-form companion to the simulator: from the same
:class:`~repro.kernel.costs.CostModel`, :mod:`~repro.analysis.pipeline`
derives each mode's per-stage service times, predicts the bottleneck
stage and the saturation packet rate, and estimates queueing latency.
The cross-validation tests assert simulator and analysis agree, which
protects both against silent calibration drift.
"""

from repro.analysis.pipeline import (
    PipelineModel,
    StageCost,
    mm1_waiting_time_us,
    predict_capacity_pps,
)

__all__ = [
    "PipelineModel",
    "StageCost",
    "predict_capacity_pps",
    "mm1_waiting_time_us",
]
