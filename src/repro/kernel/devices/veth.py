"""veth pair (``veth_xmit``).

The veth device gates the container's private network stack. It is *not*
a NAPI device: its transmit function enqueues the packet onto a per-CPU
backlog (``input_pkt_queue``) via ``netif_rx`` and raises the third
softirq of the overlay path (Section 3.1) — the transition point Falcon
re-purposes to move the container-stack stage onto its own core.
"""

from __future__ import annotations

from typing import List

from repro.kernel.costs import CostModel
from repro.kernel.stages import Step


def veth_steps(costs: CostModel) -> List[Step]:
    return [
        Step.simple("veth_xmit", costs.veth_xmit),
        Step.simple("netif_rx", costs.netif_rx),
    ]
